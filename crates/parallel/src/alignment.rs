//! Net/gate alignments and the shift bookkeeping shared by both
//! shift-elimination algorithms (§4).
//!
//! An *alignment* assigns to every net (and gate) the time represented
//! by bit 0 of its bit-field. Shifts are eliminated wherever the paper's
//! conditions (1)–(4) hold locally; where they cannot hold, a shift is
//! *retained*. With shifts moved to gate inputs (Fig. 18), the shift a
//! gate needs for an input is fully determined by the alignments:
//!
//! ```text
//! input shift  s = align(input net) − (align(gate) − 1)
//! output shift s = align(gate) − align(output net)
//! ```
//!
//! `s = 0` means no shift; `s > 0` a left shift by `s` (requires
//! previous-vector bits, hence the strict `align < minlevel` condition);
//! `s < 0` a right shift by `−s` (top-bit replication only).

use uds_netlist::{GateId, Levels, NetId, Netlist};

use crate::bitfield::WORD_BITS;

/// A shift retained in the generated code.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShiftKind {
    /// No shift needed.
    None,
    /// Left shift by the given amount (cycle breaking only).
    Left(u32),
    /// Right shift by the given amount.
    Right(u32),
}

impl ShiftKind {
    /// Classifies a signed shift amount.
    pub fn from_amount(s: i32) -> ShiftKind {
        match s.cmp(&0) {
            std::cmp::Ordering::Equal => ShiftKind::None,
            std::cmp::Ordering::Greater => ShiftKind::Left(s as u32),
            std::cmp::Ordering::Less => ShiftKind::Right((-s) as u32),
        }
    }
}

/// An alignment assignment for every net and gate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Alignment {
    /// Per-net alignment (time of bit 0), possibly negative.
    pub net_align: Vec<i32>,
    /// Per-gate alignment.
    pub gate_align: Vec<i32>,
}

/// Aggregate statistics for the paper's Figs. 21–22.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AlignmentStats {
    /// Shifts retained in the generated code (Fig. 21).
    pub retained_shifts: usize,
    /// Widest bit-field in bits (Fig. 22).
    pub max_width_bits: u32,
    /// Widest bit-field in 32-bit words.
    pub max_width_words: u32,
    /// Total words across all net fields (memory footprint).
    pub total_field_words: usize,
}

impl Alignment {
    /// The signed shift needed to present `input` to `gate`
    /// (`align(input) − (align(gate) − 1)`).
    pub fn input_shift(&self, gate: GateId, input: NetId) -> i32 {
        self.net_align[input] - (self.gate_align[gate.index()] - 1)
    }

    /// The signed shift needed to store `gate`'s result into its output
    /// field (`align(gate) − align(output)`); nonzero only under cycle
    /// breaking, where a removed gate–output edge can leave them apart.
    pub fn output_shift(&self, netlist: &Netlist, gate: GateId) -> i32 {
        self.gate_align[gate.index()] - self.net_align[netlist.gate(gate).output]
    }

    /// Field width in bits of `net` under this alignment
    /// (`level − align + 1`).
    pub fn width(&self, levels: &Levels, net: NetId) -> u32 {
        let width = i64::from(levels.net_level[net]) - i64::from(self.net_align[net]) + 1;
        u32::try_from(width).expect("alignment never exceeds a net's level")
    }

    /// Counts the shifts the code generator will retain: one per
    /// (gate, distinct input net) with a nonzero input shift, plus one
    /// per gate with a nonzero output shift.
    pub fn retained_shifts(&self, netlist: &Netlist) -> usize {
        let mut count = 0;
        for gid in netlist.gate_ids() {
            let gate = netlist.gate(gid);
            let mut seen: Vec<NetId> = Vec::with_capacity(gate.inputs.len());
            for &input in &gate.inputs {
                if seen.contains(&input) {
                    continue;
                }
                seen.push(input);
                if self.input_shift(gid, input) != 0 {
                    count += 1;
                }
            }
            if self.output_shift(netlist, gid) != 0 {
                count += 1;
            }
        }
        count
    }

    /// Statistics for the paper's Figs. 21–22.
    pub fn stats(&self, netlist: &Netlist, levels: &Levels) -> AlignmentStats {
        let mut max_width_bits = 0;
        let mut total_field_words = 0usize;
        for net in netlist.net_ids() {
            let width = self.width(levels, net);
            max_width_bits = max_width_bits.max(width);
            total_field_words += width.div_ceil(WORD_BITS) as usize;
        }
        AlignmentStats {
            retained_shifts: self.retained_shifts(netlist),
            max_width_bits,
            max_width_words: max_width_bits.div_ceil(WORD_BITS),
            total_field_words,
        }
    }

    /// Verifies the correctness conditions the code generator relies on.
    ///
    /// * every net: `align ≤ minlevel` (condition 1 — otherwise changes
    ///   would be lost);
    /// * every net presented through a **left** shift: `align < minlevel`
    ///   (the shifted-in low bits must be previous-vector values);
    /// * every gate with a **left** output shift: `align(gate) <
    ///   minlevel(gate)`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated condition.
    pub fn validate(&self, netlist: &Netlist, levels: &Levels) -> Result<(), String> {
        for net in netlist.net_ids() {
            if self.net_align[net] > levels.net_minlevel[net] as i32 {
                return Err(format!(
                    "net {net} aligned at {} above its minlevel {}",
                    self.net_align[net], levels.net_minlevel[net]
                ));
            }
        }
        for gid in netlist.gate_ids() {
            for &input in &netlist.gate(gid).inputs {
                let s = self.input_shift(gid, input);
                if s > 0 && self.net_align[input] >= levels.net_minlevel[input] as i32 {
                    return Err(format!(
                        "left-shifted net {input} needs align < minlevel {} (has {})",
                        levels.net_minlevel[input], self.net_align[input]
                    ));
                }
            }
            let s = self.output_shift(netlist, gid);
            if s != 0 && self.gate_align[gid.index()] >= levels.gate_minlevel[gid.index()] as i32 {
                return Err(format!(
                    "output-shifted gate {gid} needs align < minlevel {} (has {})",
                    levels.gate_minlevel[gid.index()],
                    self.gate_align[gid.index()]
                ));
            }
        }
        Ok(())
    }

    /// Subtracts `delta` from every alignment (the paper's second pass:
    /// "reduce all alignments by a constant amount"). Shift amounts are
    /// differences of alignments and therefore unchanged; widths grow.
    pub fn lower_all(&mut self, delta: i32) {
        for a in &mut self.net_align {
            *a -= delta;
        }
        for a in &mut self.gate_align {
            *a -= delta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uds_netlist::{levelize, GateKind, NetlistBuilder};

    /// A → NOT → B; AND(A, B) → C (the paper's Fig. 11).
    fn fig11() -> (Netlist, NetId, NetId, NetId, GateId, GateId) {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let bn = b.gate(GateKind::Not, &[a], "B").unwrap();
        let c = b.gate(GateKind::And, &[a, bn], "C").unwrap();
        b.output(c);
        let nl = b.finish().unwrap();
        let not_gate = nl.driver(bn).unwrap();
        let and_gate = nl.driver(c).unwrap();
        (nl, a, bn, c, not_gate, and_gate)
    }

    #[test]
    fn shifts_follow_the_alignment_formula() {
        let (nl, a, bn, c, not_gate, and_gate) = fig11();
        // The alignment the path-tracing algorithm would produce:
        // C=1, AND=1, B=0, NOT=0, A=-1.
        let mut net_align = vec![0i32; nl.net_count()];
        net_align[a] = -1;
        net_align[bn] = 0;
        net_align[c] = 1;
        let mut gate_align = vec![0i32; nl.gate_count()];
        gate_align[not_gate.index()] = 0;
        gate_align[and_gate.index()] = 1;
        let alignment = Alignment {
            net_align,
            gate_align,
        };

        assert_eq!(alignment.input_shift(and_gate, a), -1, "right shift by 1");
        assert_eq!(alignment.input_shift(and_gate, bn), 0);
        assert_eq!(alignment.input_shift(not_gate, a), 0);
        assert_eq!(alignment.output_shift(&nl, and_gate), 0);
        assert_eq!(alignment.retained_shifts(&nl), 1);

        let levels = levelize(&nl).unwrap();
        alignment.validate(&nl, &levels).unwrap();
        assert_eq!(alignment.width(&levels, a), 2); // level 0, align -1
        assert_eq!(alignment.width(&levels, c), 2); // level 2, align 1
    }

    #[test]
    fn validate_rejects_alignment_above_minlevel() {
        let (nl, a, ..) = fig11();
        let mut alignment = Alignment {
            net_align: vec![0; nl.net_count()],
            gate_align: vec![1; nl.gate_count()],
        };
        alignment.net_align[a] = 1; // A's minlevel is 0
        let levels = levelize(&nl).unwrap();
        assert!(alignment.validate(&nl, &levels).is_err());
    }

    #[test]
    fn validate_requires_strictness_for_left_shifts() {
        let (nl, a, bn, c, not_gate, and_gate) = fig11();
        // Force a left shift at the AND's B input: align(B) = 1 with
        // align(AND) = 1 gives s = 1 - 0 = +1; B's minlevel is 1, so
        // align == minlevel must be rejected.
        let mut net_align = vec![0i32; nl.net_count()];
        net_align[a] = 0;
        net_align[bn] = 1;
        net_align[c] = 1;
        let mut gate_align = vec![0i32; nl.gate_count()];
        gate_align[not_gate.index()] = 1;
        gate_align[and_gate.index()] = 1;
        let alignment = Alignment {
            net_align,
            gate_align,
        };
        let levels = levelize(&nl).unwrap();
        assert!(alignment.validate(&nl, &levels).is_err());
    }

    #[test]
    fn lower_all_preserves_shifts_and_grows_widths() {
        let (nl, a, _, c, _, and_gate) = fig11();
        let levels = levelize(&nl).unwrap();
        let mut alignment = Alignment {
            net_align: vec![0, 0, 1],
            gate_align: vec![0, 1],
        };
        let before = alignment.input_shift(and_gate, a);
        let width_before = alignment.width(&levels, c);
        alignment.lower_all(2);
        assert_eq!(alignment.input_shift(and_gate, a), before);
        assert_eq!(alignment.width(&levels, c), width_before + 2);
    }

    #[test]
    fn shift_kind_classification() {
        assert_eq!(ShiftKind::from_amount(0), ShiftKind::None);
        assert_eq!(ShiftKind::from_amount(3), ShiftKind::Left(3));
        assert_eq!(ShiftKind::from_amount(-2), ShiftKind::Right(2));
    }

    #[test]
    fn repeated_pins_count_one_shift() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let x = b.gate(GateKind::Not, &[a], "x").unwrap();
        let y = b.gate(GateKind::Xor, &[x, x], "y").unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        let xg = nl.driver(x).unwrap();
        let yg = nl.driver(y).unwrap();
        // Shift-free baseline is align = level (a=0, x=1, y=2; gates 1, 2);
        // push y's gate one step later so x needs one right shift there.
        let mut net_align = vec![0i32; nl.net_count()];
        net_align[x] = 1;
        net_align[y] = 3;
        let mut gate_align = vec![0i32; nl.gate_count()];
        gate_align[xg.index()] = 1;
        gate_align[yg.index()] = 3;
        let alignment = Alignment {
            net_align,
            gate_align,
        };
        // x appears on both XOR pins but contributes a single shift.
        assert_eq!(alignment.input_shift(yg, x), -1);
        assert_eq!(alignment.retained_shifts(&nl), 1);
    }
}
