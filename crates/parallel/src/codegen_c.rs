//! C code emission for the parallel technique — the output format of the
//! paper's Figs. 6, 8, and 18.
//!
//! The emitted translation unit declares one `unsigned` word per field
//! word plus the scratch words, and a `simulate_one_vector` function
//! whose statements correspond one-to-one to the compiled word ops, so
//! its line count tracks the generated-code-size comparison between the
//! techniques.

use std::collections::HashMap;
use std::fmt::Write as _;

use uds_netlist::{GateKind, Netlist};

use crate::program::WOp;
use crate::word::Word;
use crate::ParallelSim;

/// Emits the compiled program as a C translation unit. The `word`
/// typedef and shift-merge carry counts follow the simulator's word
/// width (`uint32_t` / `uint64_t`).
///
/// `simulator` must have been compiled from `netlist` (they are matched
/// by net count only; compiling from a different netlist of equal size
/// produces misleading names).
///
/// # Panics
///
/// Panics if the arena implied by `simulator` is smaller than the
/// netlist requires.
pub fn emit<W: Word>(netlist: &Netlist, simulator: &ParallelSim<W>) -> String {
    let program = simulator.program();
    // Name every arena word: field words get net-derived names,
    // scratch words get t<k>. Sanitized stems are deduplicated (and the
    // aliases themselves reserved), so no two nets share a C variable.
    let mut names: Vec<String> = (0..program.arena_words).map(|w| format!("t{w}")).collect();
    let mut used: HashMap<String, usize> = HashMap::new();
    // Reserve the generic scratch names so a net literally named `t5`
    // dedups instead of aliasing scratch word 5.
    for name in &names {
        used.insert(name.clone(), 0);
    }
    for net in netlist.net_ids() {
        let layout = simulator.field_layout(net);
        let mut stem = sanitize(netlist.net_name(net));
        match used.entry(stem.clone()) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                *entry.get_mut() += 1;
                stem = format!("{stem}_d{}", entry.get());
                used.insert(stem.clone(), 0);
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(0);
            }
        }
        for w in 0..layout.words {
            names[(layout.base + w) as usize] = if layout.words == 1 {
                stem.clone()
            } else {
                format!("{stem}_w{w}")
            };
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* parallel-technique unit-delay simulation of `{}` ({}) */",
        netlist.name(),
        simulator.optimization()
    );
    let _ = writeln!(out, "#include <stdint.h>");
    let _ = writeln!(out, "typedef {} word;", W::C_TYPE);
    // Initializers reproduce the simulator's consistent power-up state
    // (every field filled with the value the circuit settles to under
    // all-zero inputs), so the first vector's retained bits are right.
    let initial = simulator.initial_arena();
    for (slot, name) in names.iter().enumerate() {
        let value = if initial[slot] != W::ZERO {
            "~(word)0"
        } else {
            "0"
        };
        let _ = writeln!(out, "static word {name} = {value};");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "void simulate_one_vector(const word *pi)\n{{");

    for op in &program.ops {
        match *op {
            WOp::Eval {
                kind,
                dst,
                first_operand,
                operand_count,
            } => {
                let operands: Vec<&str> = (first_operand..first_operand + u32::from(operand_count))
                    .map(|i| names[program.operands[i as usize] as usize].as_str())
                    .collect();
                let _ = writeln!(
                    out,
                    "    {} = {};",
                    names[dst as usize],
                    gate_expression(kind, &operands)
                );
            }
            WOp::MergeShl1Low { dst, src } => {
                let _ = writeln!(
                    out,
                    "    {} |= {} << 1;",
                    names[dst as usize], names[src as usize]
                );
            }
            WOp::MergeShl1 { dst, src, carry } => {
                let _ = writeln!(
                    out,
                    "    {} |= ({} << 1) | ({} >> {});",
                    names[dst as usize],
                    names[src as usize],
                    names[carry as usize],
                    W::BITS - 1
                );
            }
            WOp::BroadcastBit { dst, src, bit } => {
                let _ = writeln!(
                    out,
                    "    {} = (word)0 - ({} >> {bit} & 1);",
                    names[dst as usize], names[src as usize]
                );
            }
            WOp::ExtractBit { dst, src, bit } => {
                let _ = writeln!(
                    out,
                    "    {} = {} >> {bit} & 1;",
                    names[dst as usize], names[src as usize]
                );
            }
            WOp::Zero { dst } => {
                let _ = writeln!(out, "    {} = 0;", names[dst as usize]);
            }
            WOp::InputBroadcast { dst, words, index } => {
                for w in 0..u32::from(words) {
                    let _ = writeln!(
                        out,
                        "    {} = (word)0 - pi[{index}];",
                        names[(dst + w) as usize]
                    );
                }
            }
            WOp::InputAligned {
                dst,
                words,
                neg_bits,
                index,
            } => {
                let _ = writeln!(
                    out,
                    "    /* input {index}: {neg_bits} previous-value bit(s) */"
                );
                let _ = writeln!(
                    out,
                    "    load_aligned_input(&{}, {words}, {neg_bits}, pi[{index}]);",
                    names[dst as usize]
                );
            }
            WOp::ShiftField {
                dst,
                dst_words,
                src,
                src_width,
                shift,
            } => {
                let _ = writeln!(
                    out,
                    "    shift_field(&{}, {dst_words}, &{}, {src_width}, {shift});",
                    names[dst as usize], names[src as usize]
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Number of lines [`emit`] produces.
pub fn line_count<W: Word>(netlist: &Netlist, simulator: &ParallelSim<W>) -> usize {
    emit(netlist, simulator).lines().count()
}

fn gate_expression(kind: GateKind, operands: &[&str]) -> String {
    let join = |sep: &str| operands.join(sep);
    match kind {
        GateKind::And => join(" & "),
        GateKind::Nand => format!("~({})", join(" & ")),
        GateKind::Or => join(" | "),
        GateKind::Nor => format!("~({})", join(" | ")),
        GateKind::Xor => join(" ^ "),
        GateKind::Xnor => format!("~({})", join(" ^ ")),
        GateKind::Not => format!("~{}", operands[0]),
        GateKind::Buf => operands[0].to_owned(),
        GateKind::Const0 => "(word)0".to_owned(),
        GateKind::Const1 => "~(word)0".to_owned(),
        GateKind::Dff => unreachable!("sequential gates are rejected at compile time"),
    }
}

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    if name.starts_with(|c: char| c.is_ascii_digit()) {
        out.push('s');
    }
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    if out.is_empty() {
        out.push('s');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Optimization, ParallelSimulator, ParallelSimulator64};
    use uds_netlist::{GateKind, NetlistBuilder};

    fn fig6() -> Netlist {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let bn = b.input("B");
        let c = b.input("C");
        let d = b.gate(GateKind::And, &[a, bn], "D").unwrap();
        let e = b.gate(GateKind::And, &[d, c], "E").unwrap();
        b.output(e);
        b.finish().unwrap()
    }

    #[test]
    fn unoptimized_code_has_fig6_shape() {
        let nl = fig6();
        let sim = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        let code = emit(&nl, &sim);
        // Fig. 6: initialization moves the final value into bit 0; each
        // gate is an AND followed by a shift-merge.
        assert!(
            code.contains("D = D >> 2 & 1;"),
            "expected extract-bit init:\n{code}"
        );
        assert!(code.contains("|="), "expected shift-merge:\n{code}");
        assert!(code.contains("A & B"), "{code}");
    }

    #[test]
    fn shift_eliminated_code_has_fig10_shape() {
        let nl = fig6();
        let sim = ParallelSimulator::compile(&nl, Optimization::PathTracing).unwrap();
        let code = emit(&nl, &sim);
        // Fig. 10: no shifts at all, plain assignments.
        assert!(!code.contains("<< 1"), "{code}");
        assert!(!code.contains("shift_field"), "{code}");
        assert!(code.contains("D = A & B;"), "{code}");
        assert!(code.contains("E = D & C;"), "{code}");
    }

    #[test]
    fn dedup_chain_cannot_alias_nets() {
        // n.1 and n_1 sanitize identically; a third net literally named
        // n_1_d1 must not collide with the generated alias either.
        let mut b = NetlistBuilder::new();
        let a = b.input("n.1");
        let c = b.input("n_1");
        let d = b.input("n_1_d1");
        let y = b.gate(GateKind::And, &[a, c, d], "t0").unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        let sim = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        let code = emit(&nl, &sim);
        let decls: Vec<&str> = code
            .lines()
            .filter(|l| l.starts_with("static word "))
            .collect();
        let mut seen = std::collections::HashSet::new();
        for decl in &decls {
            assert!(seen.insert(*decl), "duplicate declaration {decl}:\n{code}");
        }
        // The net named like a scratch word got deduplicated too.
        assert!(code.contains("t0_d1"), "{code}");
    }

    #[test]
    fn declarations_carry_settled_initializers() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let y = b.gate(GateKind::Not, &[a], "y").unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        let sim = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        let code = emit(&nl, &sim);
        // y settles to 1 under all-zero inputs: its field initializes to
        // all-ones so the first vector's retained bit 0 is correct.
        assert!(code.contains("static word y = ~(word)0;"), "{code}");
        assert!(code.contains("static word a = 0;"), "{code}");
    }

    #[test]
    fn emitted_word_type_follows_the_width() {
        let nl = fig6();
        let sim32 = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        let sim64 = ParallelSimulator64::compile(&nl, Optimization::None).unwrap();
        assert!(emit(&nl, &sim32).contains("typedef uint32_t word;"));
        let code64 = emit(&nl, &sim64);
        assert!(code64.contains("typedef uint64_t word;"), "{code64}");
        assert!(
            !code64.contains(">> 31"),
            "carry must use bit 63:\n{code64}"
        );
    }

    #[test]
    fn shift_statements_track_retained_shifts() {
        let nl = fig6();
        let unopt = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        let aligned = ParallelSimulator::compile(&nl, Optimization::PathTracing).unwrap();
        let shifts = |sim: &ParallelSimulator| emit(&nl, sim).matches("<< 1").count();
        assert_eq!(shifts(&unopt), nl.gate_count());
        assert_eq!(shifts(&aligned), 0);
        assert!(line_count(&nl, &unopt) > 0);
    }
}
