//! C code emission for the parallel technique — the output format of the
//! paper's Figs. 6, 8, and 18.
//!
//! The emitted translation unit declares one `word` static per arena
//! word plus the scratch words, and a `simulate_one_vector` function
//! whose statements correspond one-to-one to the compiled word ops, so
//! its line count tracks the generated-code-size comparison between the
//! techniques. The output is self-contained — every referenced
//! identifier is defined in the same translation unit — so `cc` can
//! compile it directly (the native engine does exactly that).

use std::collections::HashMap;
use std::fmt::{self, Write as _};

use uds_netlist::{GateKind, Netlist};

use crate::program::WOp;
use crate::word::Word;
use crate::ParallelSim;

/// Error returned by [`emit`]: the simulator was compiled from a
/// different netlist than the one it is being emitted against, so the
/// generated names would be misleading (or out of range).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EmitError {
    /// The netlist's net count disagrees with the compiled program's.
    NetlistMismatch {
        netlist_nets: usize,
        program_nets: usize,
    },
    /// The netlist's primary-input count disagrees with the program's.
    InputMismatch {
        netlist_inputs: usize,
        program_inputs: usize,
    },
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EmitError::NetlistMismatch {
                netlist_nets,
                program_nets,
            } => write!(
                f,
                "simulator was compiled from a different netlist: \
                 {program_nets} nets in the program, {netlist_nets} in the netlist"
            ),
            EmitError::InputMismatch {
                netlist_inputs,
                program_inputs,
            } => write!(
                f,
                "simulator was compiled from a different netlist: \
                 {program_inputs} primary inputs in the program, {netlist_inputs} in the netlist"
            ),
        }
    }
}

impl std::error::Error for EmitError {}

/// Emits the compiled program as a C translation unit. The `word`
/// typedef and shift-merge carry counts follow the simulator's word
/// width (`uint32_t` / `uint64_t`).
///
/// # Errors
///
/// Returns [`EmitError`] when `simulator` was not compiled from
/// `netlist` (net or primary-input counts disagree).
pub fn emit<W: Word>(netlist: &Netlist, simulator: &ParallelSim<W>) -> Result<String, EmitError> {
    emit_impl(netlist, simulator, false)
}

/// Like [`emit`], but additionally exporting `uds_state_set` /
/// `uds_state_get` functions that copy the whole arena (in arena-index
/// order) in and out of the shared object — the handshake the native
/// engine uses to keep the interpreted twin's arena authoritative.
pub fn emit_native<W: Word>(
    netlist: &Netlist,
    simulator: &ParallelSim<W>,
) -> Result<String, EmitError> {
    emit_impl(netlist, simulator, true)
}

/// Number of lines [`emit`] produces.
///
/// # Errors
///
/// Returns [`EmitError`] when `simulator` was not compiled from
/// `netlist`.
pub fn line_count<W: Word>(
    netlist: &Netlist,
    simulator: &ParallelSim<W>,
) -> Result<usize, EmitError> {
    Ok(emit(netlist, simulator)?.lines().count())
}

fn emit_impl<W: Word>(
    netlist: &Netlist,
    simulator: &ParallelSim<W>,
    native: bool,
) -> Result<String, EmitError> {
    let program = simulator.program();
    if simulator.layout_count() != netlist.net_count() {
        return Err(EmitError::NetlistMismatch {
            netlist_nets: netlist.net_count(),
            program_nets: simulator.layout_count(),
        });
    }
    if program.input_count != netlist.primary_inputs().len() {
        return Err(EmitError::InputMismatch {
            netlist_inputs: netlist.primary_inputs().len(),
            program_inputs: program.input_count,
        });
    }
    // Name every arena word: field words get net-derived names,
    // scratch words get t<k>. Sanitized stems are deduplicated (and the
    // aliases themselves reserved), so no two nets share a C variable.
    let mut names: Vec<String> = (0..program.arena_words).map(|w| format!("t{w}")).collect();
    let mut used: HashMap<String, usize> = HashMap::new();
    // Reserve the generic scratch names so a net literally named `t5`
    // dedups instead of aliasing scratch word 5.
    for name in &names {
        used.insert(name.clone(), 0);
    }
    for net in netlist.net_ids() {
        let layout = simulator.field_layout(net);
        let mut stem = sanitize(netlist.net_name(net));
        match used.entry(stem.clone()) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                *entry.get_mut() += 1;
                stem = format!("{stem}_d{}", entry.get());
                used.insert(stem.clone(), 0);
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(0);
            }
        }
        for w in 0..layout.words {
            names[(layout.base + w) as usize] = if layout.words == 1 {
                stem.clone()
            } else {
                format!("{stem}_w{w}")
            };
        }
    }

    let b = W::BITS;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* parallel-technique unit-delay simulation of `{}` ({}) */",
        netlist.name(),
        simulator.optimization()
    );
    let _ = writeln!(out, "#include <stdint.h>");
    let _ = writeln!(out, "typedef {} word;", W::C_TYPE);
    // Initializers reproduce the simulator's consistent power-up state
    // (every field filled with the value the circuit settles to under
    // all-zero inputs), so the first vector's retained bits are right.
    let initial = simulator.initial_arena();
    for (slot, name) in names.iter().enumerate() {
        let value = if initial[slot] != W::ZERO {
            "~(word)0"
        } else {
            "0"
        };
        let _ = writeln!(out, "static word {name} = {value};");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "void simulate_one_vector(const word *pi)\n{{");

    for op in &program.ops {
        match *op {
            WOp::Eval {
                kind,
                dst,
                first_operand,
                operand_count,
            } => {
                let operands: Vec<&str> = (first_operand..first_operand + u32::from(operand_count))
                    .map(|i| names[program.operands[i as usize] as usize].as_str())
                    .collect();
                let _ = writeln!(
                    out,
                    "    {} = {};",
                    names[dst as usize],
                    gate_expression(kind, &operands)
                );
            }
            WOp::MergeShl1Low { dst, src } => {
                let _ = writeln!(
                    out,
                    "    {} |= {} << 1;",
                    names[dst as usize], names[src as usize]
                );
            }
            WOp::MergeShl1 { dst, src, carry } => {
                let _ = writeln!(
                    out,
                    "    {} |= ({} << 1) | ({} >> {});",
                    names[dst as usize],
                    names[src as usize],
                    names[carry as usize],
                    b - 1
                );
            }
            WOp::BroadcastBit { dst, src, bit } => {
                let _ = writeln!(
                    out,
                    "    {} = (word)0 - ({} >> {bit} & 1);",
                    names[dst as usize], names[src as usize]
                );
            }
            WOp::ExtractBit { dst, src, bit } => {
                let _ = writeln!(
                    out,
                    "    {} = {} >> {bit} & 1;",
                    names[dst as usize], names[src as usize]
                );
            }
            WOp::Zero { dst } => {
                let _ = writeln!(out, "    {} = 0;", names[dst as usize]);
            }
            WOp::InputBroadcast { dst, words, index } => {
                for w in 0..u32::from(words) {
                    let _ = writeln!(
                        out,
                        "    {} = (word)0 - pi[{index}];",
                        names[(dst + w) as usize]
                    );
                }
            }
            WOp::InputAligned {
                dst,
                words,
                neg_bits,
                index,
            } => {
                // The low `neg_bits` bits keep the previous input value
                // (read before any word is overwritten); all other bits
                // get the new one. Word counts and split masks are
                // compile-time constants, so the load unrolls into
                // straight-line statements.
                let neg = u32::from(neg_bits);
                if neg == 0 {
                    // No negative times: degenerates to a broadcast.
                    for w in 0..u32::from(words) {
                        let _ = writeln!(
                            out,
                            "    {} = (word)0 - pi[{index}];",
                            names[(dst + w) as usize]
                        );
                    }
                    continue;
                }
                let prev_word = names[(dst + neg / b) as usize].clone();
                let _ = writeln!(
                    out,
                    "    {{ /* input {index}: {neg_bits} previous-value bit(s) */"
                );
                let _ = writeln!(
                    out,
                    "        const word uds_p = (word)0 - ({prev_word} >> {} & (word)1);",
                    neg % b
                );
                let _ = writeln!(out, "        const word uds_n = (word)0 - pi[{index}];");
                for w in 0..u32::from(words) {
                    let name = &names[(dst + w) as usize];
                    let low = w * b;
                    if neg >= low + b {
                        let _ = writeln!(out, "        {name} = uds_p;");
                    } else if neg <= low {
                        let _ = writeln!(out, "        {name} = uds_n;");
                    } else {
                        let mask = mask_literal(neg - low);
                        let _ = writeln!(
                            out,
                            "        {name} = (uds_p & {mask}) | (uds_n & ~{mask});"
                        );
                    }
                }
                let _ = writeln!(out, "    }}");
            }
            WOp::ShiftField {
                dst,
                dst_words,
                src,
                src_width,
                shift,
            } => {
                // Materialize a shifted presentation of a field
                // (Fig. 18). Bottom/top fills and the funnel offsets are
                // compile-time constants; source and destination never
                // overlap, so the per-word funnel unrolls directly.
                let top_bit = src_width - 1;
                let top_word = top_bit / b;
                let src_at = |i: i64| -> String {
                    if i < 0 {
                        "uds_bf".to_owned()
                    } else if i as u32 > top_word {
                        "uds_tf".to_owned()
                    } else if i as u32 == top_word {
                        "uds_st".to_owned()
                    } else {
                        names[(src + i as u32) as usize].clone()
                    }
                };
                let raw_top = names[(src + top_word) as usize].clone();
                let _ = writeln!(out, "    {{ /* shifted field presentation ({shift:+}) */");
                let _ = writeln!(
                    out,
                    "        const word uds_bf = (word)0 - ({} & (word)1);",
                    names[src as usize]
                );
                let _ = writeln!(
                    out,
                    "        const word uds_tf = (word)0 - ({raw_top} >> {} & (word)1);",
                    top_bit % b
                );
                if top_bit % b + 1 == b {
                    // Full top word: the sanitization mask is all ones.
                    let _ = writeln!(out, "        const word uds_st = {raw_top};");
                } else {
                    let mask = mask_literal(top_bit % b + 1);
                    let _ = writeln!(
                        out,
                        "        const word uds_st = ({raw_top} & {mask}) | (uds_tf & ~{mask});"
                    );
                }
                let s = -i64::from(shift);
                let offset = s.rem_euclid(i64::from(b));
                let base = (s - offset) / i64::from(b);
                for w in 0..i64::from(dst_words) {
                    let dname = names[(dst + w as u32) as usize].clone();
                    if offset == 0 {
                        let _ = writeln!(out, "        {dname} = {};", src_at(base + w));
                    } else {
                        let _ = writeln!(
                            out,
                            "        {dname} = ({} >> {offset}) | ({} << {});",
                            src_at(base + w),
                            src_at(base + w + 1),
                            i64::from(b) - offset
                        );
                    }
                }
                let _ = writeln!(out, "    }}");
            }
        }
    }
    let _ = writeln!(out, "}}");

    if native {
        let _ = writeln!(out);
        let count = program.arena_words;
        if count > 0 {
            let pointers: Vec<String> = names.iter().map(|n| format!("&{n}")).collect();
            let _ = writeln!(
                out,
                "static word *const uds_arena[{count}] = {{ {} }};",
                pointers.join(", ")
            );
            let _ = writeln!(out, "\nvoid uds_state_set(const word *state)\n{{");
            let _ = writeln!(out, "    uint32_t i;");
            let _ = writeln!(
                out,
                "    for (i = 0; i < {count}u; i++) *uds_arena[i] = state[i];"
            );
            let _ = writeln!(out, "}}");
            let _ = writeln!(out, "\nvoid uds_state_get(word *state)\n{{");
            let _ = writeln!(out, "    uint32_t i;");
            let _ = writeln!(
                out,
                "    for (i = 0; i < {count}u; i++) state[i] = *uds_arena[i];"
            );
            let _ = writeln!(out, "}}");
        } else {
            let _ = writeln!(
                out,
                "void uds_state_set(const word *state) {{ (void)state; }}"
            );
            let _ = writeln!(out, "void uds_state_get(word *state) {{ (void)state; }}");
        }
    }
    Ok(out)
}

/// Low-mask constant with the bottom `k` bits set, as a C literal.
/// Emitted as a hex literal (never a shift expression) so mask
/// plumbing is not mistaken for a retained `<< 1` merge by code-size
/// accounting. `k` is always strictly between 0 and the word width.
fn mask_literal(k: u32) -> String {
    debug_assert!(k > 0 && k < 128);
    format!("(word)0x{:x}", (1u128 << k) - 1)
}

fn gate_expression(kind: GateKind, operands: &[&str]) -> String {
    let join = |sep: &str| operands.join(sep);
    match kind {
        GateKind::And => join(" & "),
        GateKind::Nand => format!("~({})", join(" & ")),
        GateKind::Or => join(" | "),
        GateKind::Nor => format!("~({})", join(" | ")),
        GateKind::Xor => join(" ^ "),
        GateKind::Xnor => format!("~({})", join(" ^ ")),
        GateKind::Not => format!("~{}", operands[0]),
        GateKind::Buf => operands[0].to_owned(),
        GateKind::Const0 => "(word)0".to_owned(),
        GateKind::Const1 => "~(word)0".to_owned(),
        GateKind::Dff => unreachable!("sequential gates are rejected at compile time"),
    }
}

/// Identifiers the emitted translation unit already claims: C keywords
/// (a net named `if` or `int` must not produce `static word if`), the
/// `word` typedef, the `<stdint.h>` type names behind it, the entry
/// points and their parameters, and the block-local temporaries the
/// unrolled aligned-load / shifted-presentation statements declare.
fn is_reserved(name: &str) -> bool {
    matches!(
        name,
        "auto"
            | "break"
            | "case"
            | "char"
            | "const"
            | "continue"
            | "default"
            | "do"
            | "double"
            | "else"
            | "enum"
            | "extern"
            | "float"
            | "for"
            | "goto"
            | "if"
            | "inline"
            | "int"
            | "long"
            | "register"
            | "restrict"
            | "return"
            | "short"
            | "signed"
            | "sizeof"
            | "static"
            | "struct"
            | "switch"
            | "typedef"
            | "union"
            | "unsigned"
            | "void"
            | "volatile"
            | "while"
            | "word"
            | "pi"
            | "po"
            | "simulate_one_vector"
            | "uint32_t"
            | "uint64_t"
            | "uds_p"
            | "uds_n"
            | "uds_bf"
            | "uds_tf"
            | "uds_st"
            | "uds_arena"
            | "uds_state_get"
            | "uds_state_set"
    )
}

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    if name.starts_with(|c: char| c.is_ascii_digit()) {
        out.push('s');
    }
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    if out.is_empty() {
        out.push('s');
    }
    if is_reserved(&out) {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Optimization, ParallelSimulator, ParallelSimulator64};
    use uds_netlist::{GateKind, NetlistBuilder};

    fn fig6() -> Netlist {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let bn = b.input("B");
        let c = b.input("C");
        let d = b.gate(GateKind::And, &[a, bn], "D").unwrap();
        let e = b.gate(GateKind::And, &[d, c], "E").unwrap();
        b.output(e);
        b.finish().unwrap()
    }

    #[test]
    fn unoptimized_code_has_fig6_shape() {
        let nl = fig6();
        let sim = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        let code = emit(&nl, &sim).unwrap();
        // Fig. 6: initialization moves the final value into bit 0; each
        // gate is an AND followed by a shift-merge.
        assert!(
            code.contains("D = D >> 2 & 1;"),
            "expected extract-bit init:\n{code}"
        );
        assert!(code.contains("|="), "expected shift-merge:\n{code}");
        assert!(code.contains("A & B"), "{code}");
    }

    #[test]
    fn shift_eliminated_code_has_fig10_shape() {
        let nl = fig6();
        let sim = ParallelSimulator::compile(&nl, Optimization::PathTracing).unwrap();
        let code = emit(&nl, &sim).unwrap();
        // Fig. 10: no shifts at all, plain assignments.
        assert!(!code.contains("<< 1"), "{code}");
        assert!(!code.contains("shift_field"), "{code}");
        assert!(code.contains("D = A & B;"), "{code}");
        assert!(code.contains("E = D & C;"), "{code}");
    }

    #[test]
    fn dedup_chain_cannot_alias_nets() {
        // n.1 and n_1 sanitize identically; a third net literally named
        // n_1_d1 must not collide with the generated alias either.
        let mut b = NetlistBuilder::new();
        let a = b.input("n.1");
        let c = b.input("n_1");
        let d = b.input("n_1_d1");
        let y = b.gate(GateKind::And, &[a, c, d], "t0").unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        let sim = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        let code = emit(&nl, &sim).unwrap();
        let decls: Vec<&str> = code
            .lines()
            .filter(|l| l.starts_with("static word "))
            .collect();
        let mut seen = std::collections::HashSet::new();
        for decl in &decls {
            assert!(seen.insert(*decl), "duplicate declaration {decl}:\n{code}");
        }
        // The net named like a scratch word got deduplicated too.
        assert!(code.contains("t0_d1"), "{code}");
    }

    #[test]
    fn reserved_names_cannot_shadow_emitted_identifiers() {
        // Nets named after C keywords or the emitter's own identifiers
        // must not produce uncompilable or shadowing declarations.
        let mut b = NetlistBuilder::new();
        let a = b.input("if");
        let c = b.input("word");
        let d = b.input("pi");
        let y = b.gate(GateKind::And, &[a, c, d], "int").unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        let sim = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        let code = emit(&nl, &sim).unwrap();
        for renamed in ["if_", "word_", "pi_", "int_"] {
            assert!(
                code.contains(&format!("static word {renamed} = ")),
                "expected {renamed}:\n{code}"
            );
        }
        for shadowed in [
            "static word if =",
            "static word word =",
            "static word pi =",
            "static word int =",
        ] {
            assert!(!code.contains(shadowed), "emitted `{shadowed}`:\n{code}");
        }
    }

    #[test]
    fn emit_rejects_a_mismatched_netlist() {
        let nl = fig6();
        let sim = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let y = b.gate(GateKind::Not, &[a], "Y").unwrap();
        b.output(y);
        let other = b.finish().unwrap();
        assert!(matches!(
            emit(&other, &sim),
            Err(EmitError::NetlistMismatch { .. })
        ));
        assert!(line_count(&other, &sim).is_err());
    }

    #[test]
    fn native_emit_exports_state_accessors() {
        let nl = fig6();
        let sim = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        let code = emit_native(&nl, &sim).unwrap();
        assert!(
            code.contains("void uds_state_set(const word *state)"),
            "{code}"
        );
        assert!(code.contains("void uds_state_get(word *state)"), "{code}");
        assert!(code.contains("uds_arena"), "{code}");
        // The plain emit stays accessor-free: its line count is the
        // paper's generated-code-size statistic.
        assert!(!emit(&nl, &sim).unwrap().contains("uds_state_set"));
    }

    #[test]
    fn aligned_ops_unroll_without_undefined_references() {
        // The shift-eliminated compiler's aligned loads and shifted
        // presentations must emit self-contained statements, not calls
        // to helper functions that exist nowhere.
        use uds_netlist::generators::iscas::Iscas85;
        let nl = Iscas85::C432.build();
        for optimization in [Optimization::PathTracing, Optimization::CycleBreaking] {
            let sim = ParallelSimulator::compile(&nl, optimization).unwrap();
            let code = emit(&nl, &sim).unwrap();
            assert!(
                !code.contains("load_aligned_input") && !code.contains("shift_field"),
                "undefined helper referenced ({optimization}):\n{}",
                &code[..code.len().min(2000)]
            );
        }
        // Non-vacuous: c432's retained shifts emit the funnel blocks.
        let sim = ParallelSimulator::compile(&nl, Optimization::PathTracing).unwrap();
        let code = emit(&nl, &sim).unwrap();
        assert!(code.contains("uds_"), "expected unrolled blocks:\n{code}");
    }

    #[test]
    fn declarations_carry_settled_initializers() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let y = b.gate(GateKind::Not, &[a], "y").unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        let sim = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        let code = emit(&nl, &sim).unwrap();
        // y settles to 1 under all-zero inputs: its field initializes to
        // all-ones so the first vector's retained bit 0 is correct.
        assert!(code.contains("static word y = ~(word)0;"), "{code}");
        assert!(code.contains("static word a = 0;"), "{code}");
    }

    #[test]
    fn emitted_word_type_follows_the_width() {
        let nl = fig6();
        let sim32 = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        let sim64 = ParallelSimulator64::compile(&nl, Optimization::None).unwrap();
        assert!(emit(&nl, &sim32)
            .unwrap()
            .contains("typedef uint32_t word;"));
        let code64 = emit(&nl, &sim64).unwrap();
        assert!(code64.contains("typedef uint64_t word;"), "{code64}");
        assert!(
            !code64.contains(">> 31"),
            "carry must use bit 63:\n{code64}"
        );
    }

    #[test]
    fn shift_statements_track_retained_shifts() {
        let nl = fig6();
        let unopt = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        let aligned = ParallelSimulator::compile(&nl, Optimization::PathTracing).unwrap();
        let shifts = |sim: &ParallelSimulator| emit(&nl, sim).unwrap().matches("<< 1").count();
        assert_eq!(shifts(&unopt), nl.gate_count());
        assert_eq!(shifts(&aligned), 0);
        assert!(line_count(&nl, &unopt).unwrap() > 0);
    }
}
