//! The undirected network graph of §4 (Fig. 13).
//!
//! One vertex per gate and per net; an undirected edge joins a gate to a
//! net iff the gate uses the net as an input or an output. Cycles of
//! nonzero weight in this graph are exactly what forces shifts to be
//! retained; the cycle-breaking algorithm removes back edges found by a
//! depth-first search until the graph is a forest.

use uds_netlist::{GateId, NetId, Netlist};

/// A vertex of the undirected network graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Vertex {
    /// A net vertex.
    Net(NetId),
    /// A gate vertex.
    Gate(GateId),
}

/// How a gate uses the net on one edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PinRole {
    /// The net is an input of the gate.
    Input,
    /// The net is the gate's output.
    Output,
}

/// One undirected edge (gate–net).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Edge {
    /// The gate endpoint.
    pub gate: GateId,
    /// The net endpoint.
    pub net: NetId,
    /// Whether the net is an input or the output of the gate.
    pub role: PinRole,
}

/// The undirected network graph.
#[derive(Clone, Debug)]
pub struct UndirectedGraph {
    /// All edges, deduplicated (a net on several pins of one gate is a
    /// single edge, per the paper's set definition).
    pub edges: Vec<Edge>,
    /// Adjacency: per net, incident edge indices.
    net_adjacency: Vec<Vec<usize>>,
    /// Adjacency: per gate, incident edge indices.
    gate_adjacency: Vec<Vec<usize>>,
    nets: usize,
    gates: usize,
}

impl UndirectedGraph {
    /// Builds the graph for a netlist.
    pub fn new(netlist: &Netlist) -> Self {
        let mut edges = Vec::new();
        let mut net_adjacency = vec![Vec::new(); netlist.net_count()];
        let mut gate_adjacency = vec![Vec::new(); netlist.gate_count()];
        for gid in netlist.gate_ids() {
            let gate = netlist.gate(gid);
            let push = |edges: &mut Vec<Edge>,
                        net_adjacency: &mut Vec<Vec<usize>>,
                        gate_adjacency: &mut Vec<Vec<usize>>,
                        net: NetId,
                        role: PinRole| {
                let index = edges.len();
                edges.push(Edge {
                    gate: gid,
                    net,
                    role,
                });
                net_adjacency[net].push(index);
                gate_adjacency[gid.index()].push(index);
            };
            let mut seen: Vec<NetId> = Vec::with_capacity(gate.inputs.len());
            for &input in &gate.inputs {
                if !seen.contains(&input) {
                    seen.push(input);
                    push(
                        &mut edges,
                        &mut net_adjacency,
                        &mut gate_adjacency,
                        input,
                        PinRole::Input,
                    );
                }
            }
            push(
                &mut edges,
                &mut net_adjacency,
                &mut gate_adjacency,
                gate.output,
                PinRole::Output,
            );
        }
        UndirectedGraph {
            edges,
            net_adjacency,
            gate_adjacency,
            nets: netlist.net_count(),
            gates: netlist.gate_count(),
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.nets + self.gates
    }

    /// Edge indices incident to a vertex.
    pub fn incident(&self, vertex: Vertex) -> &[usize] {
        match vertex {
            Vertex::Net(n) => &self.net_adjacency[n],
            Vertex::Gate(g) => &self.gate_adjacency[g.index()],
        }
    }

    /// The endpoint of `edge` opposite to `vertex`.
    pub fn other_end(&self, edge: usize, vertex: Vertex) -> Vertex {
        let e = &self.edges[edge];
        match vertex {
            Vertex::Net(_) => Vertex::Gate(e.gate),
            Vertex::Gate(_) => Vertex::Net(e.net),
        }
    }

    /// Depth-first search that removes every back edge, leaving a
    /// spanning forest. Returns the removed edge indices — the paper's
    /// `F = E − V + C` back-arc count, where `C` is the number of
    /// connected components.
    pub fn break_cycles(&self) -> Vec<usize> {
        let mut removed = Vec::new();
        let mut visited = vec![false; self.vertex_count()];
        let mut via_edge: Vec<Option<usize>> = vec![None; self.vertex_count()];

        let all_vertices = (0..self.nets)
            .map(|n| Vertex::Net(NetId::from_index(n)))
            .chain((0..self.gates).map(|g| Vertex::Gate(GateId::from_index(g))));

        for start in all_vertices {
            if visited[self.vertex_index(start)] {
                continue;
            }
            // Iterative DFS.
            visited[self.vertex_index(start)] = true;
            let mut stack = vec![start];
            while let Some(vertex) = stack.pop() {
                for &edge in self.incident(vertex) {
                    if via_edge[self.vertex_index(vertex)] == Some(edge) {
                        continue; // the tree edge we arrived by
                    }
                    let neighbor = self.other_end(edge, vertex);
                    let ni = self.vertex_index(neighbor);
                    if visited[ni] {
                        // Back edge: "the most recently traversed edge is
                        // removed" — unless it is already gone.
                        if !removed.contains(&edge) {
                            removed.push(edge);
                        }
                    } else {
                        visited[ni] = true;
                        via_edge[ni] = Some(edge);
                        stack.push(neighbor);
                    }
                }
            }
        }
        removed
    }

    /// Dense index of a vertex (nets first, then gates).
    pub fn vertex_index(&self, vertex: Vertex) -> usize {
        match vertex {
            Vertex::Net(n) => n.index(),
            Vertex::Gate(g) => self.nets + g.index(),
        }
    }

    /// The weight of a simple cycle given as a vertex sequence
    /// (`cycle[0]` must be a net vertex; the sequence wraps around).
    /// A nonzero weight is necessary and sufficient for the cycle to
    /// force a retained shift (§4).
    ///
    /// Gate vertices weigh +1 when traversed input→output, −1 when
    /// output→input, 0 when both neighbors are on the same side; net
    /// vertices weigh 0.
    ///
    /// # Panics
    ///
    /// Panics if the sequence does not alternate net/gate vertices or an
    /// edge is missing.
    pub fn cycle_weight(&self, netlist: &Netlist, cycle: &[Vertex]) -> i32 {
        assert!(!cycle.is_empty(), "cycle must be nonempty");
        let mut weight = 0;
        for (pos, &vertex) in cycle.iter().enumerate() {
            let Vertex::Gate(g) = vertex else { continue };
            let before = cycle[(pos + cycle.len() - 1) % cycle.len()];
            let after = cycle[(pos + 1) % cycle.len()];
            let (Vertex::Net(n_before), Vertex::Net(n_after)) = (before, after) else {
                panic!("cycle must alternate nets and gates");
            };
            let gate = netlist.gate(g);
            let is_output = |n: NetId| gate.output == n;
            let role_before = is_output(n_before);
            let role_after = is_output(n_after);
            weight += match (role_before, role_after) {
                (false, true) => 1,  // entered by an input, left by the output
                (true, false) => -1, // entered by the output, left by an input
                _ => 0,
            };
        }
        weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uds_netlist::{GateKind, NetlistBuilder};

    /// Fig. 11: A → NOT → B; AND(A, B) → C. The graph has one cycle
    /// A–NOT–B–AND–A of weight ±1.
    fn fig11() -> (Netlist, NetId, NetId, GateId, GateId) {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let bn = b.gate(GateKind::Not, &[a], "B").unwrap();
        let c = b.gate(GateKind::And, &[a, bn], "C").unwrap();
        b.output(c);
        let nl = b.finish().unwrap();
        let ng = nl.driver(bn).unwrap();
        let ag = nl.driver(c).unwrap();
        (nl, a, bn, ng, ag)
    }

    use uds_netlist::Netlist;

    #[test]
    fn fig13_graph_shape() {
        let (nl, a, bn, ng, ag) = fig11();
        let graph = UndirectedGraph::new(&nl);
        // Edges: NOT-A, NOT-B, AND-A, AND-B, AND-C = 5.
        assert_eq!(graph.edges.len(), 5);
        assert_eq!(graph.incident(Vertex::Net(a)).len(), 2);
        assert_eq!(graph.incident(Vertex::Net(bn)).len(), 2);
        assert_eq!(graph.incident(Vertex::Gate(ag)).len(), 3);
        assert_eq!(graph.incident(Vertex::Gate(ng)).len(), 2);
    }

    #[test]
    fn fig13_cycle_has_weight_one() {
        let (nl, a, bn, ng, ag) = fig11();
        let graph = UndirectedGraph::new(&nl);
        // Traverse A → NOT → B → AND → (back to A).
        let cycle = [
            Vertex::Net(a),
            Vertex::Gate(ng),
            Vertex::Net(bn),
            Vertex::Gate(ag),
        ];
        let w = graph.cycle_weight(&nl, &cycle);
        assert_eq!(w.abs(), 1, "Fig. 13's cycle weighs ±1 (got {w})");
    }

    #[test]
    fn break_cycles_removes_e_minus_v_plus_c() {
        let (nl, ..) = fig11();
        let graph = UndirectedGraph::new(&nl);
        let removed = graph.break_cycles();
        // One component containing all 5 vertices and 5 edges: F = 1.
        assert_eq!(removed.len(), 1);
    }

    #[test]
    fn tree_networks_need_no_removal() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let c = b.input("b");
        let x = b.gate(GateKind::And, &[a, c], "x").unwrap();
        let y = b.gate(GateKind::Not, &[x], "y").unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        let graph = UndirectedGraph::new(&nl);
        assert!(graph.break_cycles().is_empty());
    }

    #[test]
    fn zero_weight_cycle() {
        // Two gates sharing both inputs: cycle a-G1-b-G2-a has weight 0
        // (each gate entered and left by inputs).
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let c = b.input("b");
        let x = b.gate(GateKind::And, &[a, c], "x").unwrap();
        let y = b.gate(GateKind::Or, &[a, c], "y").unwrap();
        b.output(x);
        b.output(y);
        let nl = b.finish().unwrap();
        let graph = UndirectedGraph::new(&nl);
        let g1 = nl.driver(x).unwrap();
        let g2 = nl.driver(y).unwrap();
        let cycle = [
            Vertex::Net(a),
            Vertex::Gate(g1),
            Vertex::Net(c),
            Vertex::Gate(g2),
        ];
        assert_eq!(graph.cycle_weight(&nl, &cycle), 0);
        // The DFS still has to remove one edge to get a forest…
        assert_eq!(graph.break_cycles().len(), 1);
    }

    #[test]
    fn repeated_pins_create_one_edge() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let y = b.gate(GateKind::Xor, &[a, a], "y").unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        let graph = UndirectedGraph::new(&nl);
        assert_eq!(graph.edges.len(), 2); // XOR-a, XOR-y
        assert!(graph.break_cycles().is_empty());
    }
}
