//! The shift-eliminated compiler (§4, Figs. 10–18): code generation for
//! netlists whose nets carry differing alignments.
//!
//! Differences from the unoptimized compiler:
//!
//! * per-net field shapes: width = `level − align + 1`;
//! * **no per-vector initialization** for internal nets — previous-vector
//!   values are recomputed wherever needed, because every bit of a field
//!   is overwritten each vector (the paper's observation for Fig. 10);
//! * primary inputs use the negative-alignment load: bits at negative
//!   times keep the previous input value;
//! * retained shifts are generated **at gate inputs** (Fig. 18), as
//!   multi-bit [`WOp::ShiftField`] materializations into scratch;
//!   cycle breaking may additionally retain an output re-alignment.
//!
//! With trimming, low-constant words are re-initialized by broadcast
//! (the paper: initialization "must be reintroduced for the low-order
//! words ... that do not contain PC-set representatives") and gap words
//! become broadcasts, exactly as in the unoptimized compiler.

use uds_netlist::limits::{checked_add_u64, checked_mul_u64, narrow_u16, narrow_u32};
use uds_netlist::{levelize, LevelSegment, NetId, Netlist, ResourceLimits, SegmentBuilder};
use uds_pcset::PcSets;

use crate::bitfield::FieldLayout;
use crate::program::{Program, WOp};
use crate::simulator::CompileError;
use crate::trimming::{classify_words, WordClass};
use crate::word::Word;
use crate::Alignment;

/// Output of the aligned compiler.
pub(crate) struct CompiledAligned {
    pub program: Program,
    pub layouts: Vec<FieldLayout>,
    pub depth: u32,
    pub retained_shifts: usize,
    pub trimmed_words: usize,
    /// Run-length level segments of the op stream in emission order
    /// (the init block is level 0); drives the leveled profiling
    /// executor and the static per-level cost model.
    pub level_segments: Vec<LevelSegment>,
}

pub(crate) fn compile<W: Word>(
    netlist: &Netlist,
    alignment: &Alignment,
    trim: bool,
    limits: &ResourceLimits,
) -> Result<CompiledAligned, CompileError> {
    let levels = levelize(netlist)?;
    debug_assert!(alignment.validate(netlist, &levels).is_ok());

    // Per-net field layouts.
    let mut layouts = Vec::with_capacity(netlist.net_count());
    let mut next_word = 0u32;
    for net in netlist.net_ids() {
        let width = alignment.width(&levels, net);
        let layout =
            FieldLayout::with_word_bits(next_word, width, alignment.net_align[net], W::BITS);
        limits.check_field_words(layout.words)?;
        next_word = narrow_u32(checked_add_u64(
            u64::from(next_word),
            u64::from(layout.words),
        )?)?;
        layouts.push(layout);
    }

    // A gate whose output must be re-aligned computes into a staging
    // field covering times `align(gate) ..= level(output)`; everything
    // else computes the output field's own shape.
    let compute_width_of = |gid: uds_netlist::GateId| -> u32 {
        let out = netlist.gate(gid).output;
        if alignment.output_shift(netlist, gid) == 0 {
            layouts[out].width
        } else {
            let width =
                i64::from(levels.net_level[out]) - i64::from(alignment.gate_align[gid.index()]) + 1;
            u32::try_from(width).expect("gate alignment never exceeds its output's level")
        }
    };

    // Scratch: one staging field per distinct gate input that needs
    // materialization, plus one for output re-alignment. Sized by the
    // largest gate.
    let max_gate_words = netlist
        .gate_ids()
        .map(|g| compute_width_of(g).div_ceil(W::BITS))
        .max()
        .unwrap_or(1);
    let max_operands = netlist
        .gates()
        .iter()
        .map(|g| {
            let mut distinct: Vec<NetId> = Vec::new();
            for &i in &g.inputs {
                if !distinct.contains(&i) {
                    distinct.push(i);
                }
            }
            distinct.len()
        })
        .max()
        .unwrap_or(1);
    // Extension words: a consumer computing more words than a (shift-free)
    // input's field owns reads the input's *extension word* — one word
    // holding the input's final value in every bit, refreshed right after
    // the input is computed. This models the one-statement top-bit
    // replication real generated code uses, instead of materializing a
    // whole widened copy per gate.
    let mut needs_ext = vec![false; netlist.net_count()];
    for gid in netlist.gate_ids() {
        let gate_words = compute_width_of(gid).div_ceil(W::BITS);
        for &input in &netlist.gate(gid).inputs {
            if alignment.input_shift(gid, input) == 0 && layouts[input].words < gate_words {
                needs_ext[input] = true;
            }
        }
    }
    let mut ext_word = vec![u32::MAX; netlist.net_count()];
    for net in netlist.net_ids() {
        if needs_ext[net] {
            ext_word[net] = next_word;
            next_word = narrow_u32(checked_add_u64(u64::from(next_word), 1)?)?;
        }
    }
    let ext_broadcast = |net: NetId| -> WOp {
        let layout = &layouts[net];
        let final_bit = layout.final_bit();
        WOp::BroadcastBit {
            dst: ext_word[net],
            src: layout.base + final_bit / W::BITS,
            bit: (final_bit % W::BITS) as u8,
        }
    };

    let scratch_base = next_word;
    let scratch_stride = max_gate_words;
    let stage_base = narrow_u32(checked_add_u64(
        u64::from(scratch_base),
        checked_mul_u64(max_operands as u64, u64::from(scratch_stride))?,
    )?)?;
    let arena_words = narrow_u32(checked_add_u64(
        u64::from(stage_base),
        u64::from(max_gate_words),
    )?)? as usize;
    limits.check_memory(checked_mul_u64(arena_words as u64, u64::from(W::BITS / 8))?)?;
    limits.check_deadline()?;

    let pcsets = if trim {
        Some(PcSets::compute(netlist)?)
    } else {
        None
    };
    let word_classes: Vec<Vec<WordClass>> = match &pcsets {
        Some(sets) => netlist
            .net_ids()
            .map(|net| {
                let times = sets.net[net].times();
                classify_words::<W>(&layouts[net], times, times[0])
            })
            .collect(),
        None => Vec::new(),
    };
    let class_of = |net: NetId, w: u32| -> WordClass {
        match &pcsets {
            Some(_) => word_classes[net][w as usize],
            None => WordClass::Active,
        }
    };

    let mut ops = Vec::new();
    let mut operands = Vec::new();
    let mut retained_shifts = 0usize;
    let mut trimmed_words = 0usize;

    // --- Per-vector initialization -------------------------------------
    for (index, &pi) in netlist.primary_inputs().iter().enumerate() {
        let layout = &layouts[pi];
        let neg_bits = narrow_u16((-layout.align).max(0) as usize)?;
        ops.push(WOp::InputAligned {
            dst: layout.base,
            words: narrow_u16(layout.words as usize)?,
            neg_bits,
            index: narrow_u16(index)?,
        });
        if needs_ext[pi] {
            ops.push(ext_broadcast(pi));
        }
    }
    if trim {
        for net in netlist.net_ids() {
            if netlist.driver(net).is_none() {
                continue;
            }
            let layout = &layouts[net];
            let final_bit = layout.final_bit();
            for w in 0..layout.words {
                if class_of(net, w) == WordClass::LowConstant {
                    ops.push(WOp::BroadcastBit {
                        dst: layout.base + w,
                        src: layout.base + final_bit / W::BITS,
                        bit: (final_bit % W::BITS) as u8,
                    });
                }
            }
        }
    }

    // The whole init block is level-0 work; weights come from each
    // op's word span.
    let mut segments = SegmentBuilder::new();
    let word_bytes = u64::from(W::BITS / 8);
    let init_word_ops: u64 = ops.iter().map(WOp::weight).sum();
    segments.emit(
        0,
        ops.len(),
        init_word_ops,
        0,
        init_word_ops * 2 * word_bytes,
    );

    // --- Gate simulations, levelized order ------------------------------
    for &gid in &levels.topo_gates {
        let gate = netlist.gate(gid);
        let out = gate.output;
        let out_layout = layouts[out];
        let gate_ops_start = ops.len();
        let compute_width = compute_width_of(gid);
        let gate_words = compute_width.div_ceil(W::BITS);
        let output_shift = alignment.output_shift(netlist, gid);
        if output_shift != 0 {
            retained_shifts += 1;
        }
        // Where evaluation results land before any output re-alignment.
        let compute_base = if output_shift == 0 {
            out_layout.base
        } else {
            stage_base
        };

        // Present each distinct input. Three cases: already aligned and
        // wide enough (read the field directly); aligned but narrower
        // (read the field, extension word beyond it); misaligned — a
        // retained shift — materialize one shifted copy into scratch.
        #[derive(Clone, Copy)]
        enum Presentation {
            Field { base: u32, words: u32, ext: u32 },
            Scratch(u32),
        }
        let mut presented: Vec<(NetId, Presentation)> = Vec::new();
        let mut scratch_used = 0u32;
        for &input in &gate.inputs {
            if presented.iter().any(|&(n, _)| n == input) {
                continue;
            }
            let in_layout = layouts[input];
            let shift = alignment.input_shift(gid, input);
            let presentation = if shift == 0 {
                Presentation::Field {
                    base: in_layout.base,
                    words: in_layout.words,
                    ext: ext_word[input],
                }
            } else {
                retained_shifts += 1;
                let dst = scratch_base + scratch_used * scratch_stride;
                scratch_used += 1;
                ops.push(WOp::ShiftField {
                    dst,
                    dst_words: narrow_u16(gate_words as usize)?,
                    src: in_layout.base,
                    src_width: in_layout.width,
                    shift,
                });
                Presentation::Scratch(dst)
            };
            presented.push((input, presentation));
        }
        let operand_at = |net: NetId, w: u32| -> u32 {
            let presentation = presented
                .iter()
                .find(|&&(n, _)| n == net)
                .expect("every input was presented")
                .1;
            match presentation {
                Presentation::Field { base, words, ext } => {
                    if w < words {
                        base + w
                    } else {
                        debug_assert_ne!(ext, u32::MAX, "extension word allocated");
                        ext
                    }
                }
                Presentation::Scratch(base) => base + w,
            }
        };

        // Trimming skips apply only when the evaluation writes the output
        // field directly; an output re-alignment needs every word.
        let can_trim = output_shift == 0;
        for w in 0..gate_words {
            let class = if can_trim {
                class_of(out, w)
            } else {
                WordClass::Active
            };
            match class {
                WordClass::Active => {
                    let first_operand = narrow_u32(operands.len() as u64)?;
                    for &input in &gate.inputs {
                        operands.push(operand_at(input, w));
                    }
                    ops.push(WOp::Eval {
                        kind: gate.kind,
                        dst: compute_base + w,
                        first_operand,
                        operand_count: narrow_u16(gate.inputs.len())?,
                    });
                }
                WordClass::Gap => {
                    trimmed_words += 1;
                    ops.push(WOp::BroadcastBit {
                        dst: out_layout.base + w,
                        src: out_layout.base + w - 1,
                        bit: (W::BITS - 1) as u8,
                    });
                }
                WordClass::LowConstant => {
                    trimmed_words += 1; // initialization broadcast covered it
                }
            }
        }
        if output_shift != 0 {
            ops.push(WOp::ShiftField {
                dst: out_layout.base,
                dst_words: narrow_u16(out_layout.words as usize)?,
                src: stage_base,
                src_width: compute_width,
                shift: output_shift,
            });
        }
        if needs_ext[out] {
            ops.push(ext_broadcast(out));
        }
        let gate_word_ops: u64 = ops[gate_ops_start..].iter().map(WOp::weight).sum();
        segments.emit(
            levels.gate_level[gid.index()] as usize,
            ops.len() - gate_ops_start,
            gate_word_ops,
            1,
            gate_word_ops * 3 * word_bytes,
        );
    }

    Ok(CompiledAligned {
        program: Program {
            ops,
            operands,
            arena_words,
            input_count: netlist.primary_inputs().len(),
        },
        layouts,
        depth: levels.depth,
        retained_shifts,
        trimmed_words,
        level_segments: segments.finish(),
    })
}
