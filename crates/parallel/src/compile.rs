//! The unoptimized parallel-technique compiler (§3), with optional
//! bit-field trimming (§4, Fig. 9).
//!
//! Every net gets an identically shaped field: `n = depth + 1` bits at
//! alignment 0, rounded up to whole 32-bit words. Per input vector the
//! generated code
//!
//! 1. re-initializes each field: primary inputs broadcast their new bit
//!    through every word; other nets move their final value into bit 0
//!    and clear the rest;
//! 2. simulates each gate in levelized order: one bit-parallel
//!    evaluation per word into a scratch field, then the one-bit
//!    shift-merge of Fig. 6/8 into the output field.
//!
//! With trimming enabled, low-constant and gap words are replaced by
//! single broadcasts and their evaluations/shift parts disappear.

use uds_netlist::limits::{checked_add_u64, checked_mul_u64, narrow_u16, narrow_u32};
use uds_netlist::{levelize, LevelSegment, Netlist, ResourceLimits, SegmentBuilder};
use uds_pcset::PcSets;

use crate::bitfield::FieldLayout;
use crate::program::{Program, WOp};
use crate::simulator::CompileError;
use crate::trimming::{classify_words, WordClass};
use crate::word::Word;

/// Output of the unoptimized compiler.
pub(crate) struct Compiled {
    pub program: Program,
    pub layouts: Vec<FieldLayout>,
    pub depth: u32,
    /// Words of gate simulation skipped by trimming (0 when disabled).
    pub trimmed_words: usize,
    /// Run-length level segments of the op stream in emission order
    /// (the init block is level 0); drives the leveled profiling
    /// executor and the static per-level cost model.
    pub level_segments: Vec<LevelSegment>,
}

pub(crate) fn compile<W: Word>(
    netlist: &Netlist,
    trim: bool,
    limits: &ResourceLimits,
) -> Result<Compiled, CompileError> {
    let levels = levelize(netlist)?;
    let n = narrow_u32(u64::from(levels.depth) + 1)?;
    let words = n.div_ceil(W::BITS);
    limits.check_field_words(words)?;

    // Field layout: one uniform field per net, then one scratch field.
    // `scratch` fitting u32 (checked below) bounds every per-net base.
    let scratch = narrow_u32(checked_mul_u64(
        netlist.net_count() as u64,
        u64::from(words),
    )?)?;
    let layouts: Vec<FieldLayout> = netlist
        .net_ids()
        .map(|net| FieldLayout::with_word_bits(net.index() as u32 * words, n, 0, W::BITS))
        .collect();
    let arena_words = narrow_u32(checked_add_u64(u64::from(scratch), u64::from(words))?)? as usize;
    limits.check_memory(checked_mul_u64(arena_words as u64, u64::from(W::BITS / 8))?)?;
    limits.check_deadline()?;

    let pcsets = if trim {
        Some(PcSets::compute(netlist)?)
    } else {
        None
    };
    let word_classes: Vec<Vec<WordClass>> = match &pcsets {
        Some(sets) => netlist
            .net_ids()
            .map(|net| {
                let times = sets.net[net].times();
                classify_words::<W>(&layouts[net], times, times[0])
            })
            .collect(),
        None => Vec::new(),
    };
    let class_of = |net: uds_netlist::NetId, w: u32| -> WordClass {
        match &pcsets {
            Some(_) => word_classes[net][w as usize],
            None => WordClass::Active,
        }
    };

    let mut ops = Vec::new();
    let mut operands = Vec::new();
    let mut trimmed_words = 0usize;
    let mut segments = SegmentBuilder::new();
    let word_bytes = u64::from(W::BITS / 8);

    // --- Per-vector initialization -------------------------------------
    let final_bit = n - 1;
    let final_word_offset = final_bit / W::BITS;
    let final_bit_in_word = (final_bit % W::BITS) as u8;

    for (index, &pi) in netlist.primary_inputs().iter().enumerate() {
        ops.push(WOp::InputBroadcast {
            dst: layouts[pi].base,
            words: narrow_u16(words as usize)?,
            index: narrow_u16(index)?,
        });
    }
    for net in netlist.net_ids() {
        if netlist.driver(net).is_none() {
            continue; // primary inputs handled above; dangling sources stay 0
        }
        let base = layouts[net].base;
        let final_src = base + final_word_offset;
        // Reads of the final bit (extract + low-constant broadcasts)
        // must precede the zeroing of upper words.
        match class_of(net, 0) {
            WordClass::LowConstant => {
                // Broadcast the previous final value through every
                // low-constant word (the minlevel is >= the word size).
                for w in 0..words {
                    if class_of(net, w) == WordClass::LowConstant {
                        ops.push(WOp::BroadcastBit {
                            dst: base + w,
                            src: final_src,
                            bit: final_bit_in_word,
                        });
                    }
                }
            }
            WordClass::Active => {
                ops.push(WOp::ExtractBit {
                    dst: base,
                    src: final_src,
                    bit: final_bit_in_word,
                });
            }
            WordClass::Gap => unreachable!("word 0 is low-constant or contains the minlevel"),
        }
        for w in 1..words {
            if class_of(net, w) == WordClass::Active {
                ops.push(WOp::Zero { dst: base + w });
            }
        }
    }

    // The whole init block is level-0 work. Input broadcasts write
    // `words` words each; every other init op touches one word.
    let init_ops = ops.len();
    let init_word_ops = checked_add_u64(
        checked_mul_u64(netlist.primary_inputs().len() as u64, u64::from(words))?,
        (init_ops - netlist.primary_inputs().len()) as u64,
    )?;
    segments.emit(
        0,
        init_ops,
        init_word_ops,
        0,
        init_word_ops * 2 * word_bytes,
    );

    // --- Gate simulations, levelized order ------------------------------
    for &gid in &levels.topo_gates {
        let gate = netlist.gate(gid);
        let out = gate.output;
        let out_base = layouts[out].base;
        let gate_ops_start = ops.len();

        // Which scratch (intermediate) words are needed: an active word
        // consumes scratch[w] and scratch[w-1] (shift carry).
        let mut scratch_needed = vec![false; words as usize];
        let mut any_active = false;
        for w in 0..words {
            if class_of(out, w) == WordClass::Active {
                any_active = true;
                scratch_needed[w as usize] = true;
                if w > 0 {
                    scratch_needed[w as usize - 1] = true;
                }
            } else {
                trimmed_words += 1;
            }
        }
        debug_assert!(any_active, "every net's level word is active");

        for w in 0..words {
            if !scratch_needed[w as usize] {
                continue;
            }
            let first_operand = narrow_u32(operands.len() as u64)?;
            for &input in &gate.inputs {
                operands.push(layouts[input].base + w);
            }
            ops.push(WOp::Eval {
                kind: gate.kind,
                dst: scratch + w,
                first_operand,
                operand_count: narrow_u16(gate.inputs.len())?,
            });
        }
        for w in 0..words {
            match class_of(out, w) {
                WordClass::Active => {
                    if w == 0 {
                        ops.push(WOp::MergeShl1Low {
                            dst: out_base,
                            src: scratch,
                        });
                    } else {
                        ops.push(WOp::MergeShl1 {
                            dst: out_base + w,
                            src: scratch + w,
                            carry: scratch + w - 1,
                        });
                    }
                }
                WordClass::Gap => {
                    ops.push(WOp::BroadcastBit {
                        dst: out_base + w,
                        src: out_base + w - 1,
                        bit: (W::BITS - 1) as u8,
                    });
                }
                WordClass::LowConstant => {} // initialization covered it
            }
        }
        let gate_ops = ops.len() - gate_ops_start;
        segments.emit(
            levels.gate_level[gid.index()] as usize,
            gate_ops,
            gate_ops as u64,
            1,
            gate_ops as u64 * 3 * word_bytes,
        );
    }

    Ok(Compiled {
        program: Program {
            ops,
            operands,
            arena_words,
            input_count: netlist.primary_inputs().len(),
        },
        layouts,
        depth: levels.depth,
        trimmed_words,
        level_segments: segments.finish(),
    })
}
