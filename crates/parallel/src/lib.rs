//! The **parallel technique** of unit-delay compiled simulation.
//!
//! Sections 3 and 4 of Maurer's *"Two New Techniques for Unit-Delay
//! Compiled Simulation"* (DAC 1990). Every net gets an *n*-bit field
//! (*n* = depth + 1), one bit per time unit, packed into 32-bit words.
//! A gate is simulated with one bit-parallel logic operation per word;
//! its unit delay is a one-bit left shift of the intermediate result
//! (Fig. 5). Executing the straight-line program once per input vector
//! computes the complete unit-delay time history of every net at once.
//!
//! Two optimizations from §4:
//!
//! * **bit-field trimming** ([`trimming`]) — skip the words of multi-word
//!   fields that carry no PC-set representatives (low-order constant
//!   words, gaps) and the corresponding parts of shift operations;
//! * **shift elimination** ([`path_tracing`], [`cycle_breaking`]) — give
//!   nets differing *alignments* so the per-gate shift disappears
//!   wherever the alignment conditions (1)–(4) of §4 can be enforced;
//!   retained shifts move to the gate inputs (Fig. 18).
//!
//! Entry point: [`ParallelSimulator::compile`] with an
//! [`Optimization`] level.
//!
//! # Example
//!
//! ```
//! use uds_netlist::{NetlistBuilder, GateKind};
//! use uds_parallel::{Optimization, ParallelSimulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Fig. 6's network: D = A & B; E = D & C.
//! let mut b = NetlistBuilder::new();
//! let a = b.input("A");
//! let bn = b.input("B");
//! let c = b.input("C");
//! let d = b.gate(GateKind::And, &[a, bn], "D")?;
//! let e = b.gate(GateKind::And, &[d, c], "E")?;
//! b.output(e);
//! let nl = b.finish()?;
//!
//! let mut sim = ParallelSimulator::compile(&nl, Optimization::None)?;
//! sim.simulate_vector(&[true, true, true]);
//! assert!(sim.final_value(e));
//! // The whole history arrived in one pass:
//! assert_eq!(sim.history(e), Some(vec![false, false, true]));
//! # Ok(())
//! # }
//! ```

mod alignment;
mod bitfield;
pub mod codegen_c;
mod compile;
mod compile_aligned;
pub mod cycle_breaking;
pub mod path_tracing;
mod program;
mod simulator;
pub mod trimming;
pub mod undirected;
mod word;

pub use alignment::{Alignment, AlignmentStats, ShiftKind};
pub use bitfield::{FieldLayout, WORD_BITS};
pub use simulator::{
    CompileError, Optimization, ParallelSim, ParallelSimulator, ParallelSimulator64, ProgramStats,
};
pub use word::Word;
