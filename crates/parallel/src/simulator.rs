//! The public compiled-simulator API for the parallel technique.

use std::fmt;

use uds_netlist::{
    levelize, static_profile, LevelProfile, LevelSegment, LevelTimer, LevelizeError, LimitExceeded,
    NetId, Netlist, NoopProbe, Probe, ProbeSpan, ResourceLimits,
};

use crate::bitfield::FieldLayout;
use crate::program::Program;
use crate::word::Word;
use crate::{cycle_breaking, path_tracing, Alignment};

/// Which §4 optimizations to apply at compile time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Optimization {
    /// The unoptimized technique of §3 (Fig. 19's "Parallel Technique").
    #[default]
    None,
    /// Bit-field trimming only (Fig. 20).
    Trimming,
    /// Path-tracing shift elimination (Fig. 23).
    PathTracing,
    /// Path tracing combined with trimming (Fig. 24, "With Trimming").
    PathTracingTrimming,
    /// Cycle-breaking shift elimination (Fig. 23).
    CycleBreaking,
    /// Cycle breaking combined with trimming.
    CycleBreakingTrimming,
}

impl Optimization {
    /// All variants, in the order the paper's evaluation discusses them.
    pub const ALL: [Optimization; 6] = [
        Optimization::None,
        Optimization::Trimming,
        Optimization::PathTracing,
        Optimization::PathTracingTrimming,
        Optimization::CycleBreaking,
        Optimization::CycleBreakingTrimming,
    ];

    fn trims(self) -> bool {
        matches!(
            self,
            Optimization::Trimming
                | Optimization::PathTracingTrimming
                | Optimization::CycleBreakingTrimming
        )
    }

    /// Short stable key used in telemetry gauge names (matches the CLI
    /// `--opt` tokens): `none`, `trim`, `pt`, `pt-trim`, `cb`, `cb-trim`.
    pub fn key(self) -> &'static str {
        match self {
            Optimization::None => "none",
            Optimization::Trimming => "trim",
            Optimization::PathTracing => "pt",
            Optimization::PathTracingTrimming => "pt-trim",
            Optimization::CycleBreaking => "cb",
            Optimization::CycleBreakingTrimming => "cb-trim",
        }
    }
}

impl fmt::Display for Optimization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Optimization::None => "unoptimized",
            Optimization::Trimming => "trimming",
            Optimization::PathTracing => "path-tracing",
            Optimization::PathTracingTrimming => "path-tracing+trimming",
            Optimization::CycleBreaking => "cycle-breaking",
            Optimization::CycleBreakingTrimming => "cycle-breaking+trimming",
        })
    }
}

/// Error returned by [`ParallelSim::compile`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// The netlist cannot be levelized (cycle or flip-flop).
    Levelize(LevelizeError),
    /// A resource budget was exceeded (depth, gates, field words,
    /// estimated memory, deadline, or addressable-size arithmetic).
    Limit(LimitExceeded),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Levelize(err) => write!(f, "{err}"),
            CompileError::Limit(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Levelize(err) => Some(err),
            CompileError::Limit(err) => Some(err),
        }
    }
}

impl From<LevelizeError> for CompileError {
    fn from(err: LevelizeError) -> Self {
        CompileError::Levelize(err)
    }
}

impl From<LimitExceeded> for CompileError {
    fn from(err: LimitExceeded) -> Self {
        CompileError::Limit(err)
    }
}

/// Size metrics of a compiled parallel-technique program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProgramStats {
    /// Straight-line word operations executed per vector.
    pub word_ops: usize,
    /// Arena words (fields + scratch).
    pub arena_words: usize,
    /// Shifts retained in the generated code: equals the gate count for
    /// the unoptimized/trimmed compilers (one per gate simulation), and
    /// the alignment-derived count for the shift-eliminated ones.
    pub retained_shifts: usize,
    /// Words of gate simulation removed by trimming.
    pub trimmed_words: usize,
}

/// A compiled unit-delay simulator using the parallel technique (§3–§4).
///
/// One call to [`ParallelSim::simulate_vector`] computes the whole
/// unit-delay time history of every net for that vector; read it back
/// with [`ParallelSim::history`] or [`ParallelSim::value_at`].
///
/// The word type `W` fixes the arena width: [`u32`] reproduces the
/// paper's tables, [`u64`] halves the word count of multi-word fields
/// on 64-bit hosts. [`ParallelSimulator`] / [`ParallelSimulator64`]
/// name the two instantiations.
#[derive(Clone, Debug)]
pub struct ParallelSim<W: Word = u32> {
    program: Program,
    arena: Vec<W>,
    initial_arena: Vec<W>,
    layouts: Vec<FieldLayout>,
    /// Settled value, before the current vector, of the nets whose
    /// history below their alignment cannot be read back from the field
    /// (exactly those with `align == minlevel > 0`; everywhere else bit 0
    /// recomputes the previous value). Indexed by [`NetId`]; only entries
    /// listed in `tracked` are refreshed per vector.
    prev_final: Vec<bool>,
    tracked: Vec<NetId>,
    /// Per net: `false` iff history below the alignment is unavailable
    /// (needs tracking but is not monitored).
    trackable: Vec<bool>,
    settled_zero: Vec<bool>,
    depth: u32,
    optimization: Optimization,
    alignment: Option<Alignment>,
    stats: ProgramStats,
    /// Run-length level segments of the op stream in emission order
    /// (segment 0 is the level-0 init block). Drives the leveled
    /// profiling executor; the plain path never reads it.
    level_segments: Vec<LevelSegment>,
}

/// The paper's 32-bit-word instantiation of [`ParallelSim`] — the
/// default everywhere a width is not explicitly requested.
pub type ParallelSimulator = ParallelSim<u32>;

/// The 64-bit-word instantiation of [`ParallelSim`].
pub type ParallelSimulator64 = ParallelSim<u64>;

impl<W: Word> ParallelSim<W> {
    /// Compiles a combinational netlist with the given optimization.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] for cyclic or sequential netlists.
    pub fn compile(netlist: &Netlist, optimization: Optimization) -> Result<Self, CompileError> {
        Self::compile_inner(
            netlist,
            optimization,
            false,
            &ResourceLimits::unlimited(),
            &NoopProbe,
        )
    }

    /// Like [`ParallelSim::compile_with_limits`], but reporting
    /// compile phases (levelize, alignment, codegen) and the paper's
    /// static metrics (word ops, words trimmed, shifts retained and
    /// eliminated, field widths) through `probe`. Gauge names are
    /// namespaced by [`Optimization::key`]; see DESIGN.md §11.
    pub fn compile_probed(
        netlist: &Netlist,
        optimization: Optimization,
        limits: &ResourceLimits,
        probe: &dyn Probe,
    ) -> Result<Self, CompileError> {
        Self::compile_inner(netlist, optimization, false, limits, probe)
    }

    /// Like [`ParallelSim::compile`], but enforcing a resource
    /// budget: depth, gate, input, words-per-field, and estimated-memory
    /// ceilings are checked *before* the corresponding allocations, and
    /// the sizing arithmetic itself is overflow-checked. Violations
    /// surface as [`CompileError::Limit`].
    pub fn compile_with_limits(
        netlist: &Netlist,
        optimization: Optimization,
        limits: &ResourceLimits,
    ) -> Result<Self, CompileError> {
        Self::compile_inner(netlist, optimization, false, limits, &NoopProbe)
    }

    /// Like [`ParallelSim::compile`], but keeps every net's history
    /// fully reconstructible (see [`ParallelSim::history`]). Adds a
    /// small per-vector cost proportional to the number of nets whose
    /// alignment equals their minlevel; intended for verification
    /// harnesses.
    pub fn compile_monitoring_all(
        netlist: &Netlist,
        optimization: Optimization,
    ) -> Result<Self, CompileError> {
        Self::compile_inner(
            netlist,
            optimization,
            true,
            &ResourceLimits::unlimited(),
            &NoopProbe,
        )
    }

    /// [`ParallelSim::compile_monitoring_all`] under a resource
    /// budget — the combination verification harnesses want.
    pub fn compile_monitoring_all_with_limits(
        netlist: &Netlist,
        optimization: Optimization,
        limits: &ResourceLimits,
    ) -> Result<Self, CompileError> {
        Self::compile_inner(netlist, optimization, true, limits, &NoopProbe)
    }

    /// [`ParallelSim::compile_monitoring_all_with_limits`] reporting
    /// compile phases and static metrics through `probe` — what the
    /// activity profiler uses so every net's toggles are observable.
    pub fn compile_monitoring_all_probed(
        netlist: &Netlist,
        optimization: Optimization,
        limits: &ResourceLimits,
        probe: &dyn Probe,
    ) -> Result<Self, CompileError> {
        Self::compile_inner(netlist, optimization, true, limits, probe)
    }

    fn compile_inner(
        netlist: &Netlist,
        optimization: Optimization,
        monitor_all: bool,
        limits: &ResourceLimits,
        probe: &dyn Probe,
    ) -> Result<Self, CompileError> {
        let levels = {
            let _span = ProbeSpan::new(probe, "parallel.levelize");
            levelize(netlist)?
        };
        limits.check_depth(levels.depth)?;
        limits.check_gates(netlist.gate_count())?;
        limits.check_inputs(netlist.primary_inputs().len())?;
        limits.check_deadline()?;

        let (program, layouts, depth, retained_shifts, trimmed_words, alignment, level_segments) =
            match optimization {
                Optimization::None | Optimization::Trimming => {
                    let _span = ProbeSpan::new(probe, "parallel.codegen");
                    let compiled =
                        crate::compile::compile::<W>(netlist, optimization.trims(), limits)?;
                    (
                        compiled.program,
                        compiled.layouts,
                        compiled.depth,
                        netlist.gate_count(),
                        compiled.trimmed_words,
                        None,
                        compiled.level_segments,
                    )
                }
                Optimization::PathTracing | Optimization::PathTracingTrimming => {
                    let alignment = {
                        let _span = ProbeSpan::new(probe, "parallel.alignment");
                        path_tracing::align(netlist)?
                    };
                    let _span = ProbeSpan::new(probe, "parallel.codegen");
                    let compiled = crate::compile_aligned::compile::<W>(
                        netlist,
                        &alignment,
                        optimization.trims(),
                        limits,
                    )?;
                    (
                        compiled.program,
                        compiled.layouts,
                        compiled.depth,
                        compiled.retained_shifts,
                        compiled.trimmed_words,
                        Some(alignment),
                        compiled.level_segments,
                    )
                }
                Optimization::CycleBreaking | Optimization::CycleBreakingTrimming => {
                    let result = {
                        let _span = ProbeSpan::new(probe, "parallel.alignment");
                        cycle_breaking::align(netlist)?
                    };
                    let _span = ProbeSpan::new(probe, "parallel.codegen");
                    let compiled = crate::compile_aligned::compile::<W>(
                        netlist,
                        &result.alignment,
                        optimization.trims(),
                        limits,
                    )?;
                    (
                        compiled.program,
                        compiled.layouts,
                        compiled.depth,
                        compiled.retained_shifts,
                        compiled.trimmed_words,
                        Some(result.alignment),
                        compiled.level_segments,
                    )
                }
            };

        // The paper's Fig. 20/23/24 static columns, namespaced by
        // optimization so several compiles can share one report.
        let key = optimization.key();
        probe.gauge(
            &format!("parallel.{key}.word_ops"),
            program.ops.len() as u64,
        );
        probe.gauge(
            &format!("parallel.{key}.arena_words"),
            program.arena_words as u64,
        );
        probe.gauge(
            &format!("parallel.{key}.shifts_retained"),
            retained_shifts as u64,
        );
        probe.gauge(
            &format!("parallel.{key}.shifts_eliminated"),
            netlist.gate_count().saturating_sub(retained_shifts) as u64,
        );
        probe.gauge(
            &format!("parallel.{key}.words_trimmed"),
            trimmed_words as u64,
        );
        let max_width_bits = match &alignment {
            Some(alignment) => alignment.stats(netlist, &levels).max_width_bits,
            None => depth + 1,
        };
        probe.gauge(
            &format!("parallel.{key}.max_width_bits"),
            u64::from(max_width_bits),
        );
        // Fig. 20's opt-independent columns: levels and words per field.
        probe.gauge("parallel.levels", u64::from(depth) + 1);
        probe.gauge(
            "parallel.field_words",
            u64::from((depth + 1).div_ceil(W::BITS)),
        );
        // The static per-level word-op distribution (one sample per
        // level) — the measured-vs-static axis of hotspot reports.
        let level_word_ops = format!("parallel.{key}.level_word_ops");
        for cost in &static_profile(&level_segments).levels {
            probe.record(&level_word_ops, cost.word_ops);
        }

        let _power_up_span = ProbeSpan::new(probe, "parallel.power-up");
        // Consistent power-up state: settle under all-0 inputs and fill
        // every bit of every field with the settled value.
        let mut settled = vec![0u64; netlist.net_count()];
        for &gid in &levels.topo_gates {
            let gate = netlist.gate(gid);
            let bits: Vec<u64> = gate.inputs.iter().map(|&n| settled[n]).collect();
            settled[gate.output] = gate.kind.eval_words(&bits) & 1;
        }
        let settled_zero: Vec<bool> = settled.iter().map(|&v| v != 0).collect();
        let mut initial_arena = vec![W::ZERO; program.arena_words];
        for net in netlist.net_ids() {
            if settled_zero[net.index()] {
                let layout = &layouts[net];
                for w in 0..layout.words {
                    initial_arena[(layout.base + w) as usize] = W::ONES;
                }
            }
        }

        // Nets whose pre-vector settled value must be tracked on the
        // side to reconstruct history below their alignment: bit 0 of
        // their field is their first *potential change* (align ==
        // minlevel), so the previous value is not recomputed anywhere.
        // With align < minlevel, bit 0 itself holds it. Tracking costs
        // one bit read per net per vector, so by default only the
        // monitored nets (the primary outputs — the paper's PRINT set)
        // are covered; `compile_monitoring_all` covers every net.
        let needs_tracking = |net: NetId| {
            let align = layouts[net].align;
            align > 0 && align == levels.net_minlevel[net] as i32
        };
        let tracked: Vec<NetId> = if monitor_all {
            netlist.net_ids().filter(|&n| needs_tracking(n)).collect()
        } else {
            let mut tracked: Vec<NetId> = netlist
                .primary_outputs()
                .iter()
                .copied()
                .filter(|&n| needs_tracking(n))
                .collect();
            tracked.sort_unstable();
            tracked.dedup();
            tracked
        };
        let mut trackable = vec![true; netlist.net_count()];
        for net in netlist.net_ids() {
            if needs_tracking(net) && !tracked.contains(&net) {
                trackable[net.index()] = false;
            }
        }

        let stats = ProgramStats {
            word_ops: program.ops.len(),
            arena_words: program.arena_words,
            retained_shifts,
            trimmed_words,
        };
        Ok(ParallelSim {
            arena: initial_arena.clone(),
            initial_arena,
            layouts,
            prev_final: settled_zero.clone(),
            tracked,
            trackable,
            settled_zero,
            depth,
            optimization,
            alignment,
            stats,
            program,
            level_segments,
        })
    }

    /// Circuit depth; histories cover times `0..=depth()`.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Bits per arena word this simulator was compiled for.
    pub fn word_bits(&self) -> u32 {
        W::BITS
    }

    /// The optimization this simulator was compiled with.
    pub fn optimization(&self) -> Optimization {
        self.optimization
    }

    /// The alignment in effect (None for the unoptimized/trimmed modes).
    pub fn alignment(&self) -> Option<&Alignment> {
        self.alignment.as_ref()
    }

    /// Program size metrics.
    pub fn stats(&self) -> ProgramStats {
        self.stats
    }

    /// The field layout of a net (for inspection and tests).
    pub fn field_layout(&self, net: NetId) -> FieldLayout {
        self.layouts[net]
    }

    /// Internal accessors used by the C emitter.
    pub(crate) fn program(&self) -> &Program {
        &self.program
    }

    pub(crate) fn initial_arena(&self) -> &[W] {
        &self.initial_arena
    }

    /// Number of per-net field layouts — the net count this simulator
    /// was compiled for (used by the C emitter's mismatch check).
    pub(crate) fn layout_count(&self) -> usize {
        self.layouts.len()
    }

    /// Restores the consistent power-up state.
    pub fn reset(&mut self) {
        self.arena.copy_from_slice(&self.initial_arena);
        self.prev_final.copy_from_slice(&self.settled_zero);
    }

    /// Overwrites the retained state as if the previous vector had
    /// settled to `stable` (one value per net, primary inputs included).
    ///
    /// Every bit of every field is filled with the net's stable value —
    /// exactly the shape [`ParallelSim::reset`] produces for the
    /// all-zero settled state — so the next vector's retained bits
    /// (initialization extracts, negative-alignment input bits,
    /// trimming's low-constant broadcasts) read the seeded values.
    /// Scratch and extension words need no seeding: they are written
    /// before any read within each vector.
    ///
    /// # Panics
    ///
    /// Panics if `stable.len()` differs from the net count.
    pub fn seed_stable(&mut self, stable: &[bool]) {
        assert_eq!(
            stable.len(),
            self.layouts.len(),
            "seed length must match the net count"
        );
        for (layout, &value) in self.layouts.iter().zip(stable) {
            let fill = W::splat(value);
            for w in 0..layout.words {
                self.arena[(layout.base + w) as usize] = fill;
            }
        }
        self.prev_final.copy_from_slice(stable);
    }

    /// Simulates one input vector (parallel to the primary inputs),
    /// producing the complete time history of every net.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn simulate_vector(&mut self, inputs: &[bool]) {
        assert_eq!(
            inputs.len(),
            self.program.input_count,
            "input vector length must match the primary input count"
        );
        for &net in &self.tracked {
            let layout = &self.layouts[net];
            self.prev_final[net.index()] = layout.read_bit(&self.arena, layout.final_bit());
        }
        self.program.run(&mut self.arena, inputs);
    }

    /// As [`ParallelSim::simulate_vector`], but attributing wall time
    /// and work to netlist levels in `profile` (level 0 holds the
    /// per-vector initialization). Executes exactly the same word ops
    /// in exactly the same order as the plain path — the op stream is
    /// walked in compile-time level segments, with one amortized clock
    /// read per ~4k word ops (see [`uds_netlist::levelprof`]).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn simulate_vector_leveled(&mut self, inputs: &[bool], profile: &mut LevelProfile) {
        assert_eq!(
            inputs.len(),
            self.program.input_count,
            "input vector length must match the primary input count"
        );
        let mut timer = LevelTimer::new(profile);
        for &net in &self.tracked {
            let layout = &self.layouts[net];
            self.prev_final[net.index()] = layout.read_bit(&self.arena, layout.final_bit());
        }
        for segment in &self.level_segments {
            self.program
                .run_op_range(&mut self.arena, inputs, segment.start, segment.end);
            timer.segment(
                segment.level,
                segment.word_ops,
                segment.gate_evals,
                segment.bytes_touched_est,
            );
        }
    }

    /// The static per-level cost model of the compiled program (zero
    /// `self_ns`): per-level word operations, gate sweeps, and
    /// estimated state bytes — the paper's side of a measured-vs-static
    /// hotspot comparison.
    pub fn level_static_profile(&self) -> LevelProfile {
        static_profile(&self.level_segments)
    }

    /// Like [`ParallelSim::simulate_vector`], but delegating the word
    /// program itself to `run`, which receives the mutable arena after
    /// the tracked previous-final values have been latched. The native
    /// engine uses this to execute its compiled shared object against
    /// the authoritative arena while every readback path (`history`,
    /// `final_value`, toggles) keeps working unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn simulate_vector_with(&mut self, inputs: &[bool], run: impl FnOnce(&mut [W])) {
        assert_eq!(
            inputs.len(),
            self.program.input_count,
            "input vector length must match the primary input count"
        );
        for &net in &self.tracked {
            let layout = &self.layouts[net];
            self.prev_final[net.index()] = layout.read_bit(&self.arena, layout.final_bit());
        }
        run(&mut self.arena);
    }

    /// The final settled value of a net for the last vector.
    pub fn final_value(&self, net: NetId) -> bool {
        let layout = &self.layouts[net];
        layout.read_bit(&self.arena, layout.final_bit())
    }

    /// The value of `net` at `time` for the last vector: times beyond
    /// the net's level report the final value; times below the field's
    /// alignment report the previous vector's settled value, or `None`
    /// when that value is not reconstructible (the net would need
    /// monitoring — see [`ParallelSim::compile_monitoring_all`]).
    pub fn value_at(&self, net: NetId, time: u32) -> Option<bool> {
        let layout = &self.layouts[net];
        if i64::from(time) < i64::from(layout.align) {
            // Below the field: the net cannot have changed yet, so this
            // is the previous vector's settled value. When align is
            // strictly below the minlevel, bit 0 recomputes it; otherwise
            // it must have been tracked before this vector ran.
            if !self.trackable[net.index()] {
                return None;
            }
            if self.tracked.contains(&net) {
                return Some(self.prev_final[net.index()]);
            }
            return Some(layout.read_bit(&self.arena, 0));
        }
        Some(layout.read_time(&self.arena, i64::from(time)))
    }

    /// The complete unit-delay history of `net` for the last vector, at
    /// times `0..=depth()`, or `None` when the pre-alignment part is not
    /// reconstructible for this net (monitor it, or compile with
    /// [`ParallelSim::compile_monitoring_all`]).
    pub fn history(&self, net: NetId) -> Option<Vec<bool>> {
        (0..=self.depth)
            .map(|t| self.value_at(net, t))
            .collect::<Option<Vec<bool>>>()
    }

    /// Number of value transitions of `net` within its field window
    /// (times `align ..= level`) for the last vector, computed
    /// word-parallel directly on the bit-field — the fast analysis §3 of
    /// the paper sketches with comparison fields. A net never changes
    /// outside this window, so this is the net's total switching
    /// activity for the vector.
    pub fn field_transition_count(&self, net: NetId) -> u32 {
        let layout = &self.layouts[net];
        let mut count = 0u32;
        let mut carry_bit: Option<bool> = None;
        for w in 0..layout.words {
            let word = self.arena[(layout.base + w) as usize];
            // Bits of this word that belong to the field.
            let valid = (layout.width - w * W::BITS).min(W::BITS);
            // Transitions between adjacent field bits inside the word:
            // bit i differs from bit i+1, for i in 0..valid-1.
            let internal = (word ^ (word >> 1)) & W::low_mask(valid.saturating_sub(1));
            count += internal.count_ones();
            // Plus the boundary transition from the previous word's top
            // field bit to this word's bit 0.
            if let Some(previous_top) = carry_bit {
                count += u32::from(previous_top != word.bit(0));
            }
            carry_bit = Some(word.bit(valid - 1));
        }
        count
    }

    /// `true` if `net`'s bit-field is a monotone step (at most one
    /// transition) — hazard-free for the last vector, per the paper's
    /// `0…01…1` / `1…10…0` comparison-field criterion.
    pub fn is_hazard_free(&self, net: NetId) -> bool {
        self.field_transition_count(net) <= 1
    }

    /// Visits every *history* toggle of `net` for the last vector —
    /// each time `t` in `1..=depth()` where the net's unit-delay value
    /// differs from its value at `t - 1` — and returns the toggle
    /// count, computed word-parallel on the bit-field
    /// (`popcount(f ^ (f >> 1))` per word) instead of materializing the
    /// history. Returns `None` exactly when [`ParallelSim::history`]
    /// does (the pre-alignment part is not reconstructible).
    ///
    /// Unlike [`ParallelSim::field_transition_count`], which counts
    /// transitions anywhere in the field window, this is
    /// alignment-aware at both ends so it agrees bit-for-bit with a
    /// toggle count derived from `history()`: pairs below time 0
    /// (negative alignment places field bits before the vector starts)
    /// are masked off, and for positive alignment the boundary step
    /// from the pre-field value to bit 0 is checked separately.
    pub fn for_each_toggle_in_field(&self, net: NetId, visit: &mut dyn FnMut(u32)) -> Option<u32> {
        if !self.trackable[net.index()] {
            return None;
        }
        let layout = &self.layouts[net];
        if layout.words == 0 {
            return Some(0);
        }
        let mut count = 0u32;
        // Toggle at `align` itself (align >= 1): the step from the value
        // just below the field — value_at(align - 1), which history()
        // also reports — to field bit 0.
        if layout.align >= 1 {
            let below = self
                .value_at(net, (layout.align - 1) as u32)
                .expect("trackable net has a value below its alignment");
            if below != layout.read_bit(&self.arena, 0) {
                count += 1;
                visit(layout.align as u32);
            }
        }
        // Pair p (field bits p, p+1) is a toggle at time align + p + 1;
        // pairs with p < skip land at time <= 0 and are not history.
        let skip = u32::try_from(-i64::from(layout.align.min(0))).expect("align fits");
        let mut previous_top: Option<bool> = None;
        for w in 0..layout.words {
            let word = self.arena[(layout.base + w) as usize];
            let bit_offset = w * W::BITS;
            let valid = (layout.width - bit_offset).min(W::BITS);
            // Bit i of `xor` set <=> pair (bit_offset + i) toggles.
            let mut xor = (word ^ (word >> 1)) & W::low_mask(valid.saturating_sub(1));
            if skip > bit_offset {
                xor &= !W::low_mask((skip - bit_offset).min(W::BITS));
            }
            count += xor.count_ones();
            while xor != W::ZERO {
                let i = xor.trailing_zeros();
                let time = i64::from(layout.align) + i64::from(bit_offset + i) + 1;
                visit(u32::try_from(time).expect("masked pairs land at positive times"));
                xor &= !W::low_mask((i + 1).min(W::BITS));
            }
            // The cross-word pair (bit_offset - 1): previous word's top
            // field bit against this word's bit 0.
            if let Some(top) = previous_top {
                let pair = bit_offset - 1;
                if pair >= skip && top != word.bit(0) {
                    count += 1;
                    visit(
                        u32::try_from(i64::from(layout.align) + i64::from(pair) + 1)
                            .expect("cross-word pair lands at a positive time"),
                    );
                }
            }
            previous_top = Some(word.bit(valid - 1));
        }
        Some(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uds_netlist::{GateKind, NetlistBuilder};

    /// Fig. 6's network: D = A & B; E = D & C.
    fn fig6() -> (Netlist, NetId, NetId) {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let bn = b.input("B");
        let c = b.input("C");
        let d = b.gate(GateKind::And, &[a, bn], "D").unwrap();
        let e = b.gate(GateKind::And, &[d, c], "E").unwrap();
        b.output(e);
        (b.finish().unwrap(), d, e)
    }

    #[test]
    fn fig7_bitfields_match_the_paper() {
        // Fig. 7: starting from all nets 0, apply A=B=C=1. The paper's
        // computed bit-fields: D = x110 (times 0..3: 0,1,1), E = xx10
        // at times 0,1,2: 0,0,1 — i.e. D rises at 1, E at 2.
        let (nl, d, e) = fig6();
        let mut sim = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        sim.simulate_vector(&[true, true, true]);
        assert_eq!(sim.history(d), Some(vec![false, true, true]));
        assert_eq!(sim.history(e), Some(vec![false, false, true]));
        assert!(sim.final_value(e));
    }

    #[test]
    fn retention_across_vectors() {
        let (nl, d, e) = fig6();
        let mut sim = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        sim.simulate_vector(&[true, true, true]);
        // Drop A: E holds its old value through time 1 (old D), falls at 2.
        sim.simulate_vector(&[false, true, true]);
        assert_eq!(sim.history(d), Some(vec![true, false, false]));
        assert_eq!(sim.history(e), Some(vec![true, true, false]));
    }

    #[test]
    fn all_optimizations_agree_on_fig6() {
        let (nl, d, e) = fig6();
        let mut reference =
            ParallelSimulator::compile_monitoring_all(&nl, Optimization::None).unwrap();
        for optimization in Optimization::ALL {
            let mut sim = ParallelSimulator::compile_monitoring_all(&nl, optimization).unwrap();
            reference.reset();
            for pattern in [0b111u32, 0b011, 0b101, 0b000, 0b111, 0b001] {
                let inputs: Vec<bool> = (0..3).map(|i| pattern >> i & 1 != 0).collect();
                sim.simulate_vector(&inputs);
                reference.simulate_vector(&inputs);
                for net in [d, e] {
                    assert_eq!(
                        sim.history(net),
                        reference.history(net),
                        "{optimization} diverged on pattern {pattern:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn path_tracing_eliminates_fig10_shifts() {
        let (nl, ..) = fig6();
        let sim = ParallelSimulator::compile(&nl, Optimization::PathTracing).unwrap();
        assert_eq!(sim.stats().retained_shifts, 0);
        // And the field width shrank from 3 to 2 (the paper's remark).
        let alignment = sim.alignment().unwrap();
        let levels = uds_netlist::levelize(&nl).unwrap();
        assert_eq!(alignment.stats(&nl, &levels).max_width_bits, 2);
    }

    #[test]
    fn unoptimized_counts_one_shift_per_gate() {
        let (nl, ..) = fig6();
        let sim = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        assert_eq!(sim.stats().retained_shifts, nl.gate_count());
    }

    #[test]
    fn reset_restores_power_up() {
        let (nl, _, e) = fig6();
        let mut sim = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        sim.simulate_vector(&[true, true, true]);
        assert!(sim.final_value(e));
        sim.reset();
        assert!(!sim.final_value(e));
    }

    #[test]
    fn cyclic_netlist_is_rejected() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let x = b.fresh_net();
        let y = b.fresh_net();
        b.gate_onto(GateKind::And, &[a, y], x).unwrap();
        b.gate_onto(GateKind::Not, &[x], y).unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        assert!(ParallelSimulator::compile(&nl, Optimization::None).is_err());
    }

    #[test]
    #[should_panic(expected = "input vector length")]
    fn wrong_input_length_panics() {
        let (nl, ..) = fig6();
        let mut sim = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        sim.simulate_vector(&[true]);
    }

    #[test]
    fn budget_violations_are_typed() {
        let (nl, ..) = fig6();
        let tight = ResourceLimits {
            max_depth: Some(1),
            ..ResourceLimits::unlimited()
        };
        for optimization in Optimization::ALL {
            match ParallelSimulator::compile_with_limits(&nl, optimization, &tight) {
                Err(CompileError::Limit(err)) => {
                    assert_eq!(err.resource, uds_netlist::Resource::Depth);
                    assert_eq!(err.needed, 2);
                    assert_eq!(err.allowed, 1);
                }
                other => panic!("{optimization}: expected depth violation, got {other:?}"),
            }
        }
        let roomy = ResourceLimits::production();
        assert!(ParallelSimulator::compile_with_limits(&nl, Optimization::None, &roomy).is_ok());
    }

    #[test]
    fn expired_deadline_fails_compilation() {
        let (nl, ..) = fig6();
        let limits = ResourceLimits {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
            ..ResourceLimits::unlimited()
        };
        match ParallelSimulator::compile_with_limits(&nl, Optimization::None, &limits) {
            Err(CompileError::Limit(err)) => {
                assert_eq!(err.resource, uds_netlist::Resource::Deadline)
            }
            other => panic!("expected deadline violation, got {other:?}"),
        }
    }

    #[test]
    fn optimization_display_names() {
        assert_eq!(Optimization::None.to_string(), "unoptimized");
        assert_eq!(
            Optimization::PathTracingTrimming.to_string(),
            "path-tracing+trimming"
        );
    }
}
