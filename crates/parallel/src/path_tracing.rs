//! The path-tracing shift-elimination algorithm (§4, Fig. 17).
//!
//! Alignments propagate *up* the network from the primary outputs:
//! each primary output starts at its minimum PC-set value (its
//! minlevel); a net forces its driving gate to its own alignment; a gate
//! forces each input to its alignment minus one; an assignment only ever
//! *lowers* an alignment, and lowered vertices are re-traced.
//!
//! Because alignments are only ever forced **up** the network, the
//! bit-field can never expand (the paper's width argument), only right
//! shifts are generated, and fanout-free regions simulate without any
//! shifts at all.

use uds_netlist::{levelize, LevelizeError, Netlist};

use crate::Alignment;

/// Runs path tracing and returns the resulting alignment.
///
/// Nets outside every primary-output cone (dead logic) are seeded with
/// their own minlevel, which keeps the width bound intact.
///
/// # Errors
///
/// Returns [`LevelizeError`] for cyclic or sequential netlists.
///
/// # Example
///
/// The paper's Fig. 11 network retains exactly one shift:
///
/// ```
/// use uds_netlist::{NetlistBuilder, GateKind};
/// use uds_parallel::path_tracing;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new();
/// let a = b.input("A");
/// let bn = b.gate(GateKind::Not, &[a], "B")?;
/// let c = b.gate(GateKind::And, &[a, bn], "C")?;
/// b.output(c);
/// let nl = b.finish()?;
/// let alignment = path_tracing::align(&nl)?;
/// assert_eq!(alignment.retained_shifts(&nl), 1);
/// # Ok(())
/// # }
/// ```
pub fn align(netlist: &Netlist) -> Result<Alignment, LevelizeError> {
    let levels = levelize(netlist)?;
    const UNASSIGNED: i32 = i32::MAX / 2;

    let mut alignment = Alignment {
        net_align: vec![UNASSIGNED; netlist.net_count()],
        gate_align: vec![UNASSIGNED; netlist.gate_count()],
    };

    // The recursive net_align/gate_align of Fig. 17, iteratively.
    #[derive(Clone, Copy)]
    enum Visit {
        Net(uds_netlist::NetId, i32),
        Gate(uds_netlist::GateId, i32),
    }
    let mut stack: Vec<Visit> = Vec::new();

    let trace = |alignment: &mut Alignment, stack: &mut Vec<Visit>| {
        while let Some(visit) = stack.pop() {
            match visit {
                Visit::Net(net, new_alignment) => {
                    if new_alignment < alignment.net_align[net] {
                        alignment.net_align[net] = new_alignment;
                        if let Some(driver) = netlist.driver(net) {
                            stack.push(Visit::Gate(driver, new_alignment));
                        }
                    }
                }
                Visit::Gate(gate, new_alignment) => {
                    if new_alignment < alignment.gate_align[gate.index()] {
                        alignment.gate_align[gate.index()] = new_alignment;
                        for &input in &netlist.gate(gate).inputs {
                            stack.push(Visit::Net(input, new_alignment - 1));
                        }
                    }
                }
            }
        }
    };

    for &po in netlist.primary_outputs() {
        stack.push(Visit::Net(po, levels.net_minlevel[po] as i32));
        trace(&mut alignment, &mut stack);
    }

    // Dead or unmonitored cones: seed each still-unassigned net at its
    // own minlevel. The same up-forcing invariant (align ≤ minlevel)
    // holds, so validation and the width bound are preserved.
    for net in netlist.net_ids() {
        if alignment.net_align[net] == UNASSIGNED {
            stack.push(Visit::Net(net, levels.net_minlevel[net] as i32));
            trace(&mut alignment, &mut stack);
        }
    }
    // Any gate still unassigned drives only already-aligned nets via a
    // path that never lowered it; align it with its output.
    for gid in netlist.gate_ids() {
        if alignment.gate_align[gid.index()] == UNASSIGNED {
            alignment.gate_align[gid.index()] = alignment.net_align[netlist.gate(gid).output];
        }
    }

    debug_assert!(alignment.validate(netlist, &levels).is_ok());
    Ok(alignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitfield::WORD_BITS;
    use uds_netlist::generators::iscas::Iscas85;
    use uds_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn fig10_chain_eliminates_all_shifts() {
        // D = A & B; E = D & C with E's minlevel 1: alignments E=1,
        // D/C=0, A/B=-1 — zero retained shifts (the paper's Fig. 10).
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let bn = b.input("B");
        let c = b.input("C");
        let d = b.gate(GateKind::And, &[a, bn], "D").unwrap();
        let e = b.gate(GateKind::And, &[d, c], "E").unwrap();
        b.output(e);
        let nl = b.finish().unwrap();
        let alignment = align(&nl).unwrap();
        assert_eq!(alignment.retained_shifts(&nl), 0);
        assert_eq!(alignment.net_align[e], 1);
        assert_eq!(alignment.net_align[d], 0);
        assert_eq!(alignment.net_align[c], 0);
        assert_eq!(alignment.net_align[a], -1);
        assert_eq!(alignment.net_align[bn], -1);
        // Width shrinks from 3 to 2 as the paper notes.
        let levels = uds_netlist::levelize(&nl).unwrap();
        let stats = alignment.stats(&nl, &levels);
        assert_eq!(stats.max_width_bits, 2);
    }

    #[test]
    fn fanout_free_regions_have_no_shifts() {
        // A balanced XOR tree has no reconvergent fanout: zero shifts.
        let nl = uds_netlist::generators::trees::reduction_tree(GateKind::Xor, 16).unwrap();
        let alignment = align(&nl).unwrap();
        assert_eq!(alignment.retained_shifts(&nl), 0);
    }

    #[test]
    fn only_right_shifts_are_generated() {
        for circuit in [Iscas85::C432, Iscas85::C880, Iscas85::C1908] {
            let nl = circuit.build();
            let alignment = align(&nl).unwrap();
            for gid in nl.gate_ids() {
                assert_eq!(alignment.output_shift(&nl, gid), 0, "{circuit}");
                for &input in &nl.gate(gid).inputs {
                    assert!(
                        alignment.input_shift(gid, input) <= 0,
                        "{circuit}: left shift at {gid}"
                    );
                }
            }
        }
    }

    #[test]
    fn never_expands_the_bit_field() {
        for circuit in [Iscas85::C432, Iscas85::C499, Iscas85::C1908, Iscas85::C2670] {
            let nl = circuit.build();
            let levels = uds_netlist::levelize(&nl).unwrap();
            let alignment = align(&nl).unwrap();
            let stats = alignment.stats(&nl, &levels);
            let unoptimized_width = levels.depth + 1;
            assert!(
                stats.max_width_bits <= unoptimized_width,
                "{circuit}: {} > {unoptimized_width}",
                stats.max_width_bits
            );
            assert!(
                stats.max_width_words <= unoptimized_width.div_ceil(WORD_BITS),
                "{circuit}"
            );
        }
    }

    #[test]
    fn retains_fewer_shifts_than_gates() {
        for circuit in [Iscas85::C432, Iscas85::C880] {
            let nl = circuit.build();
            let alignment = align(&nl).unwrap();
            let retained = alignment.retained_shifts(&nl);
            assert!(
                retained < nl.gate_count(),
                "{circuit}: {retained} >= {}",
                nl.gate_count()
            );
            assert!(retained > 0, "{circuit}: realistic circuits keep some");
        }
    }

    #[test]
    fn alignments_satisfy_validation() {
        for circuit in Iscas85::ALL {
            let nl = circuit.build();
            let levels = uds_netlist::levelize(&nl).unwrap();
            let alignment = align(&nl).unwrap();
            alignment.validate(&nl, &levels).unwrap();
        }
    }
}
