//! The straight-line word-op program and its executor.
//!
//! Compiled parallel-technique simulations lower to a flat list of
//! fixed-shape operations over a dense word arena. The op inventory
//! mirrors the statements the paper's code generator emits — per-word
//! bit-parallel gate evaluations, one-bit shift-merges (Fig. 6/8),
//! initialization loads, trimming's broadcast fills (Fig. 9), and the
//! multi-bit input-alignment shifts of the shift-eliminated compiler
//! (Fig. 18) — so op counts and execution time track generated-code size
//! and speed the way the paper's tables do.
//!
//! The op encodings bake in the word size the program was compiled for
//! (word counts, bit positions), so [`Program::run`] must be driven with
//! the same [`Word`] type the compiler used; [`crate::ParallelSim`]
//! pairs them by construction.

use uds_netlist::GateKind;

use crate::word::Word;

/// One word-level operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum WOp {
    /// `arena[dst] = kind(arena[operands...])` — one word of a
    /// bit-parallel gate evaluation.
    Eval {
        kind: GateKind,
        dst: u32,
        first_operand: u32,
        operand_count: u16,
    },
    /// `arena[dst] |= arena[src] << 1` — low word of a unit-delay
    /// shift-merge (preserves bit 0, the time-zero value).
    MergeShl1Low { dst: u32, src: u32 },
    /// `arena[dst] |= (arena[src] << 1) | (arena[carry] >> (B-1))` —
    /// upper word of a multi-word shift-merge (Fig. 8).
    MergeShl1 { dst: u32, src: u32, carry: u32 },
    /// `arena[dst] = broadcast(bit of arena[src])` — trimming's fills:
    /// low-order constant words and gap words (Fig. 9).
    BroadcastBit { dst: u32, src: u32, bit: u8 },
    /// `arena[dst] = (arena[src] >> bit) & 1` — unoptimized per-vector
    /// initialization: the final value moves into the low-order bit.
    ExtractBit { dst: u32, src: u32, bit: u8 },
    /// `arena[dst] = 0`.
    Zero { dst: u32 },
    /// Broadcast primary input `index` through `words` words at `dst`.
    InputBroadcast { dst: u32, words: u16, index: u16 },
    /// Aligned primary-input load: the low `neg_bits` bits (negative
    /// times) keep the *previous* input value; all remaining bits get
    /// the new one (§4's negative alignments).
    InputAligned {
        dst: u32,
        words: u16,
        neg_bits: u16,
        index: u16,
    },
    /// Materialize a shifted presentation of a field (Fig. 18: shifts at
    /// gate inputs; also output re-alignment under cycle breaking).
    /// Presented bit `i` is source bit `i - shift`, with bottom/top-bit
    /// replication outside `0..src_width`.
    ShiftField {
        dst: u32,
        dst_words: u16,
        src: u32,
        src_width: u32,
        shift: i32,
    },
}

impl WOp {
    /// Approximate word writes this op performs — the static work
    /// weight the level profiler uses (most ops touch one word; the
    /// multi-word loads and shifts touch their whole span).
    pub(crate) fn weight(&self) -> u64 {
        match *self {
            WOp::InputBroadcast { words, .. } | WOp::InputAligned { words, .. } => u64::from(words),
            WOp::ShiftField { dst_words, .. } => u64::from(dst_words),
            _ => 1,
        }
    }
}

/// A compiled parallel-technique program.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub(crate) struct Program {
    pub ops: Vec<WOp>,
    /// Shared operand pool for [`WOp::Eval`].
    pub operands: Vec<u32>,
    /// Total arena words (fields + scratch).
    pub arena_words: usize,
    pub input_count: usize,
}

impl Program {
    /// Executes one input vector. `W` must be the word type the program
    /// was compiled for.
    pub fn run<W: Word>(&self, arena: &mut [W], inputs: &[bool]) {
        debug_assert_eq!(inputs.len(), self.input_count);
        debug_assert_eq!(arena.len(), self.arena_words);
        for op in &self.ops {
            self.exec_op(arena, inputs, op);
        }
    }

    /// Executes the ops in `start..end` — one compile-time level
    /// segment of the op stream. `run` is exactly
    /// `run_op_range(0..ops.len())`; the leveled profiling executor
    /// walks the same stream in segments, never reordering ops.
    pub(crate) fn run_op_range<W: Word>(
        &self,
        arena: &mut [W],
        inputs: &[bool],
        start: usize,
        end: usize,
    ) {
        for op in &self.ops[start..end] {
            self.exec_op(arena, inputs, op);
        }
    }

    #[inline(always)]
    fn exec_op<W: Word>(&self, arena: &mut [W], inputs: &[bool], op: &WOp) {
        {
            match *op {
                WOp::Eval {
                    kind,
                    dst,
                    first_operand,
                    operand_count,
                } => {
                    let operands = &self.operands
                        [first_operand as usize..(first_operand as usize + operand_count as usize)];
                    arena[dst as usize] = eval_word(kind, operands, arena);
                }
                WOp::MergeShl1Low { dst, src } => {
                    let merged = arena[src as usize] << 1;
                    arena[dst as usize] |= merged;
                }
                WOp::MergeShl1 { dst, src, carry } => {
                    let merged =
                        (arena[src as usize] << 1) | (arena[carry as usize] >> (W::BITS - 1));
                    arena[dst as usize] |= merged;
                }
                WOp::BroadcastBit { dst, src, bit } => {
                    arena[dst as usize] = W::splat(arena[src as usize].bit(u32::from(bit)));
                }
                WOp::ExtractBit { dst, src, bit } => {
                    arena[dst as usize] = (arena[src as usize] >> u32::from(bit)) & W::ONE;
                }
                WOp::Zero { dst } => arena[dst as usize] = W::ZERO,
                WOp::InputBroadcast { dst, words, index } => {
                    let fill = W::splat(inputs[index as usize]);
                    for w in 0..words {
                        arena[(dst + u32::from(w)) as usize] = fill;
                    }
                }
                WOp::InputAligned {
                    dst,
                    words,
                    neg_bits,
                    index,
                } => {
                    // The previous value currently occupies every
                    // non-negative-time bit; bit `neg_bits` is time 0.
                    let prev_word = arena[(dst + u32::from(neg_bits) / W::BITS) as usize];
                    let prev = W::splat(prev_word.bit(u32::from(neg_bits) % W::BITS));
                    let new = W::splat(inputs[index as usize]);
                    for w in 0..u32::from(words) {
                        let word_low_bit = w * W::BITS;
                        let word = if u32::from(neg_bits) >= word_low_bit + W::BITS {
                            prev
                        } else if u32::from(neg_bits) <= word_low_bit {
                            new
                        } else {
                            let mask = W::low_mask(u32::from(neg_bits) - word_low_bit);
                            (prev & mask) | (new & !mask)
                        };
                        arena[(dst + w) as usize] = word;
                    }
                }
                WOp::ShiftField {
                    dst,
                    dst_words,
                    src,
                    src_width,
                    shift,
                } => shift_field(arena, dst, dst_words, src, src_width, shift),
            }
        }
    }
}

fn eval_word<W: Word>(kind: GateKind, operands: &[u32], arena: &[W]) -> W {
    match kind {
        GateKind::And => operands
            .iter()
            .fold(W::ONES, |acc, &s| acc & arena[s as usize]),
        GateKind::Nand => !operands
            .iter()
            .fold(W::ONES, |acc, &s| acc & arena[s as usize]),
        GateKind::Or => operands
            .iter()
            .fold(W::ZERO, |acc, &s| acc | arena[s as usize]),
        GateKind::Nor => !operands
            .iter()
            .fold(W::ZERO, |acc, &s| acc | arena[s as usize]),
        GateKind::Xor => operands
            .iter()
            .fold(W::ZERO, |acc, &s| acc ^ arena[s as usize]),
        GateKind::Xnor => !operands
            .iter()
            .fold(W::ZERO, |acc, &s| acc ^ arena[s as usize]),
        GateKind::Not => !arena[operands[0] as usize],
        GateKind::Buf => arena[operands[0] as usize],
        GateKind::Const0 => W::ZERO,
        GateKind::Const1 => W::ONES,
        GateKind::Dff => unreachable!("sequential gates are rejected at compile time"),
    }
}

/// Writes a shifted presentation of a field: presented bit `i` is source
/// bit `i - shift`, bits below 0 replicating bit 0 and bits at or above
/// `src_width` replicating bit `src_width - 1`. Fill words and the
/// sanitized top word are computed once per call, so the per-word funnel
/// is two shifts and an OR — the same cost as the shift statements the
/// paper's code generator emits.
#[inline]
fn shift_field<W: Word>(
    arena: &mut [W],
    dst: u32,
    dst_words: u16,
    src: u32,
    src_width: u32,
    shift: i32,
) {
    debug_assert!(
        dst + u32::from(dst_words) <= src || src + src_width.div_ceil(W::BITS) <= dst,
        "shift source and destination must not overlap"
    );
    let top_bit = src_width - 1;
    let top_word_index = top_bit / W::BITS;
    let bottom_fill = W::splat(arena[src as usize].bit(0));
    let raw_top = arena[(src + top_word_index) as usize];
    let top_fill = W::splat(raw_top.bit(top_bit % W::BITS));
    // `valid` is in 1..=BITS; at the full-word boundary the mask is all
    // ones and the top word passes through unchanged.
    let mask = W::low_mask(top_bit % W::BITS + 1);
    let sanitized_top = (raw_top & mask) | (top_fill & !mask);

    let word_at = |arena: &[W], index: i64| -> W {
        if index < 0 {
            bottom_fill
        } else if index as u32 > top_word_index {
            top_fill
        } else if index as u32 == top_word_index {
            sanitized_top
        } else {
            arena[(src + index as u32) as usize]
        }
    };

    let offset = (-shift).rem_euclid(W::BITS as i32) as u32;
    // start(w) = w*B - shift = (low_index(w))*B + offset
    let base_index = (i64::from(-shift) - i64::from(offset)) / i64::from(W::BITS);
    if offset == 0 {
        for w in 0..i64::from(dst_words) {
            let word = word_at(arena, base_index + w);
            arena[(dst + w as u32) as usize] = word;
        }
    } else {
        for w in 0..i64::from(dst_words) {
            let lo = word_at(arena, base_index + w);
            let hi = word_at(arena, base_index + w + 1);
            arena[(dst + w as u32) as usize] = (lo >> offset) | (hi << (W::BITS - offset));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_shl1_carries_across_words() {
        let program = Program {
            ops: vec![
                WOp::MergeShl1Low { dst: 2, src: 0 },
                WOp::MergeShl1 {
                    dst: 3,
                    src: 1,
                    carry: 0,
                },
            ],
            operands: vec![],
            arena_words: 4,
            input_count: 0,
        };
        let mut arena = vec![0x8000_0001u32, 0b0101, 0, 0];
        program.run(&mut arena, &[]);
        assert_eq!(arena[2], 0b10);
        assert_eq!(arena[3], 0b1011, "carry bit 31 became bit 0");
    }

    #[test]
    fn merge_shl1_carries_across_u64_words() {
        let program = Program {
            ops: vec![
                WOp::MergeShl1Low { dst: 2, src: 0 },
                WOp::MergeShl1 {
                    dst: 3,
                    src: 1,
                    carry: 0,
                },
            ],
            operands: vec![],
            arena_words: 4,
            input_count: 0,
        };
        let mut arena = vec![0x8000_0000_0000_0001u64, 0b0101, 0, 0];
        program.run(&mut arena, &[]);
        assert_eq!(arena[2], 0b10);
        assert_eq!(arena[3], 0b1011, "carry bit 63 became bit 0");
    }

    #[test]
    fn broadcast_and_extract() {
        let program = Program {
            ops: vec![
                WOp::ExtractBit {
                    dst: 1,
                    src: 0,
                    bit: 7,
                },
                WOp::BroadcastBit {
                    dst: 2,
                    src: 0,
                    bit: 7,
                },
            ],
            operands: vec![],
            arena_words: 3,
            input_count: 0,
        };
        let mut arena = vec![1u32 << 7, 0xDEAD, 0xBEEF];
        program.run(&mut arena, &[]);
        assert_eq!(arena[1], 1);
        assert_eq!(arena[2], !0);
    }

    #[test]
    fn input_broadcast_fills_words() {
        let program = Program {
            ops: vec![WOp::InputBroadcast {
                dst: 0,
                words: 2,
                index: 0,
            }],
            operands: vec![],
            arena_words: 2,
            input_count: 1,
        };
        let mut arena = vec![0u32, 0];
        program.run(&mut arena, &[true]);
        assert_eq!(arena, vec![!0u32, !0]);
        program.run(&mut arena, &[false]);
        assert_eq!(arena, vec![0, 0]);
    }

    #[test]
    fn input_aligned_keeps_previous_value_in_negative_bits() {
        // Field of width 3, align -2: bits 0,1 = times -2,-1; bit 2 = time 0.
        let program = Program {
            ops: vec![WOp::InputAligned {
                dst: 0,
                words: 1,
                neg_bits: 2,
                index: 0,
            }],
            operands: vec![],
            arena_words: 1,
            input_count: 1,
        };
        let mut arena = vec![0u32];
        program.run(&mut arena, &[true]);
        // prev was 0 (bit 2 of zeroed arena), new is 1.
        assert_eq!(arena[0] & 0b111, 0b100);
        program.run(&mut arena, &[false]);
        // prev is 1 now, new is 0.
        assert_eq!(arena[0] & 0b111, 0b011);
    }

    #[test]
    fn input_aligned_spanning_words() {
        // 40 negative bits: words 0 fully prev, word 1 split at bit 8.
        let program = Program {
            ops: vec![WOp::InputAligned {
                dst: 0,
                words: 2,
                neg_bits: 40,
                index: 0,
            }],
            operands: vec![],
            arena_words: 2,
            input_count: 1,
        };
        let mut arena = vec![0u32, 0];
        program.run(&mut arena, &[true]);
        assert_eq!(arena[0], 0);
        assert_eq!(arena[1], !0u32 << 8);
    }

    #[test]
    fn input_aligned_split_lands_differently_in_u64_words() {
        // The same 40 negative bits fit inside one 64-bit word: the
        // split mask is exercised at bit 40 instead of a word boundary.
        let program = Program {
            ops: vec![WOp::InputAligned {
                dst: 0,
                words: 1,
                neg_bits: 40,
                index: 0,
            }],
            operands: vec![],
            arena_words: 1,
            input_count: 1,
        };
        let mut arena = vec![0u64];
        program.run(&mut arena, &[true]);
        assert_eq!(arena[0], !0u64 << 40);
    }

    #[test]
    fn shift_field_right_replicates_top() {
        // src field: width 4 (one word), bits = 0b1010 (t0=0,t1=1,t2=0,t3=1).
        // Right shift by 2 (shift = -2): presented[i] = src[i + 2]:
        // presented bits: i0=src2=0, i1=src3=1, i2..=replicate src3=1.
        let program = Program {
            ops: vec![WOp::ShiftField {
                dst: 1,
                dst_words: 1,
                src: 0,
                src_width: 4,
                shift: -2,
            }],
            operands: vec![],
            arena_words: 2,
            input_count: 0,
        };
        let mut arena = vec![0b1010u32, 0];
        program.run(&mut arena, &[]);
        assert_eq!(arena[1], !0u32 << 1, "i0=0 then all 1s");
    }

    #[test]
    fn shift_field_left_replicates_bottom() {
        // src bits 0b0110 (t0=0): left shift 2: presented[0..2] = src[0] = 0,
        // presented[2] = src[0] = 0, presented[3] = src[1] = 1, ...
        let program = Program {
            ops: vec![WOp::ShiftField {
                dst: 1,
                dst_words: 1,
                src: 0,
                src_width: 4,
                shift: 2,
            }],
            operands: vec![],
            arena_words: 2,
            input_count: 0,
        };
        let mut arena = vec![0b0110u32, 0];
        program.run(&mut arena, &[]);
        // presented[i] = src[i-2] clamped: i=0,1 -> src[0]=0; i=2 -> src[0]=0;
        // i=3 -> src[1]=1; i=4 -> src[2]=1; i=5 -> src[3]=0; i>=6 -> src[3]=0.
        assert_eq!(arena[1] & 0x3F, 0b011000);
    }

    #[test]
    fn shift_field_across_words() {
        // 40-bit field over two words; right shift by 8.
        let program = Program {
            ops: vec![WOp::ShiftField {
                dst: 2,
                dst_words: 2,
                src: 0,
                src_width: 40,
                shift: -8,
            }],
            operands: vec![],
            arena_words: 4,
            input_count: 0,
        };
        let mut arena = vec![0x1234_5678u32, 0x9A, 0, 0];
        program.run(&mut arena, &[]);
        assert_eq!(arena[2], 0x9A12_3456);
        // Word 1: bits 40.. replicate top bit (bit 39 of src = 1).
        assert_eq!(arena[3], 0xFFFF_FFFF, "top replication above bit 39");
    }

    #[test]
    fn shift_field_with_full_top_word() {
        // A 32-bit-wide source exercises the `valid == BITS` boundary of
        // the top-word sanitization mask: `low_mask(32)` must be all
        // ones, not a shift panic (the consolidated-helper regression).
        let program = Program {
            ops: vec![WOp::ShiftField {
                dst: 1,
                dst_words: 1,
                src: 0,
                src_width: 32,
                shift: -1,
            }],
            operands: vec![],
            arena_words: 2,
            input_count: 0,
        };
        let mut arena = vec![0x8000_0001u32, 0];
        program.run(&mut arena, &[]);
        // presented[i] = src[i+1]: bits 0..=30 of src>>1, bit 31
        // replicates src bit 31 (= 1).
        assert_eq!(arena[1], 0xC000_0000);
    }

    #[test]
    fn eval_word_all_kinds() {
        let arena = vec![0b1100u32, 0b1010];
        let operands = vec![0u32, 1];
        assert_eq!(eval_word(GateKind::And, &operands, &arena), 0b1000);
        assert_eq!(eval_word(GateKind::Or, &operands, &arena), 0b1110);
        assert_eq!(eval_word(GateKind::Xor, &operands, &arena), 0b0110);
        assert_eq!(eval_word(GateKind::Nand, &operands, &arena), !0b1000u32);
        assert_eq!(eval_word(GateKind::Not, &operands[..1], &arena), !0b1100u32);
        assert_eq!(eval_word(GateKind::Const1, &[], &arena), !0u32);
    }
}
