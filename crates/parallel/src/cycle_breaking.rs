//! The cycle-breaking shift-elimination algorithm (§4, Figs. 15–16).
//!
//! A depth-first search over the undirected network graph removes every
//! back edge, leaving a spanning forest. A second DFS assigns
//! alignments along the forest edges: nets and the gates driving them
//! share an alignment; a gate's inputs sit one time unit earlier. Each
//! removed edge is where a (possibly multi-bit, left or right) shift may
//! be retained.
//!
//! A final pass lowers all alignments by a constant so that every vertex
//! satisfies the strict `align < minlevel` condition, making left shifts
//! safe (their shifted-in bits must be previous-vector values). This
//! lowering is the paper's "second pass ... to (possibly) reduce all
//! alignments by a constant amount", and it is one of the reasons the
//! algorithm "tends to greatly expand the size of the bit-fields" — the
//! expansion that Fig. 23 shows erasing the benefit of the eliminated
//! shifts.

use uds_netlist::{levelize, LevelizeError, Netlist};

use crate::undirected::{PinRole, UndirectedGraph, Vertex};
use crate::Alignment;

/// Result of the cycle-breaking algorithm.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CycleBreaking {
    /// The alignment to compile with.
    pub alignment: Alignment,
    /// Indices (into [`UndirectedGraph::edges`]) of the removed edges.
    pub removed_edges: Vec<usize>,
    /// The constant subtracted by the strictness pass.
    pub lowered_by: i32,
}

/// Runs cycle breaking and returns alignments plus diagnostics.
///
/// # Errors
///
/// Returns [`LevelizeError`] for cyclic or sequential netlists.
///
/// # Example
///
/// ```
/// use uds_netlist::{NetlistBuilder, GateKind};
/// use uds_parallel::cycle_breaking;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new();
/// let a = b.input("A");
/// let bn = b.gate(GateKind::Not, &[a], "B")?;
/// let c = b.gate(GateKind::And, &[a, bn], "C")?;
/// b.output(c);
/// let nl = b.finish()?;
/// let result = cycle_breaking::align(&nl)?;
/// // Fig. 13's single weight-1 cycle: one removed edge, one shift.
/// assert_eq!(result.removed_edges.len(), 1);
/// assert_eq!(result.alignment.retained_shifts(&nl), 1);
/// # Ok(())
/// # }
/// ```
pub fn align(netlist: &Netlist) -> Result<CycleBreaking, LevelizeError> {
    let levels = levelize(netlist)?;
    let graph = UndirectedGraph::new(netlist);
    let removed_edges = graph.break_cycles();

    const UNASSIGNED: i32 = i32::MAX / 2;
    let mut alignment = Alignment {
        net_align: vec![UNASSIGNED; netlist.net_count()],
        gate_align: vec![UNASSIGNED; netlist.gate_count()],
    };

    // Second DFS: assign alignments along retained (forest) edges.
    // Roots: primary outputs first (the paper starts at an arbitrary
    // primary output), then any still-unvisited net, each aligned to its
    // own minlevel.
    let roots = netlist
        .primary_outputs()
        .iter()
        .copied()
        .chain(netlist.net_ids());
    for root in roots {
        if alignment.net_align[root] != UNASSIGNED {
            continue;
        }
        let mut stack = vec![(Vertex::Net(root), levels.net_minlevel[root] as i32)];
        while let Some((vertex, value)) = stack.pop() {
            match vertex {
                Vertex::Net(net) => {
                    if alignment.net_align[net] != UNASSIGNED {
                        continue;
                    }
                    alignment.net_align[net] = value;
                    for &edge in graph.incident(vertex) {
                        if removed_edges.contains(&edge) {
                            continue;
                        }
                        let e = graph.edges[edge];
                        let gate_value = match e.role {
                            PinRole::Output => value,
                            PinRole::Input => value + 1,
                        };
                        stack.push((Vertex::Gate(e.gate), gate_value));
                    }
                }
                Vertex::Gate(gate) => {
                    if alignment.gate_align[gate.index()] != UNASSIGNED {
                        continue;
                    }
                    alignment.gate_align[gate.index()] = value;
                    for &edge in graph.incident(vertex) {
                        if removed_edges.contains(&edge) {
                            continue;
                        }
                        let e = graph.edges[edge];
                        let net_value = match e.role {
                            PinRole::Output => value,
                            PinRole::Input => value - 1,
                        };
                        stack.push((Vertex::Net(e.net), net_value));
                    }
                }
            }
        }
    }
    // Gates in components with no net vertex cannot exist (every gate
    // has an output net), so everything is assigned now. Still, guard:
    for gid in netlist.gate_ids() {
        if alignment.gate_align[gid.index()] == UNASSIGNED {
            alignment.gate_align[gid.index()] = alignment.net_align[netlist.gate(gid).output];
        }
    }

    // Strictness pass: lower everything so align < minlevel everywhere
    // (left shifts read previous-vector bits below the minlevel).
    let mut delta = 0i32;
    for net in netlist.net_ids() {
        delta = delta.max(alignment.net_align[net] - (levels.net_minlevel[net] as i32 - 1));
    }
    for gid in netlist.gate_ids() {
        delta = delta.max(
            alignment.gate_align[gid.index()] - (levels.gate_minlevel[gid.index()] as i32 - 1),
        );
    }
    if delta > 0 {
        alignment.lower_all(delta);
    }

    debug_assert!(
        alignment.validate(netlist, &levels).is_ok(),
        "{:?}",
        alignment.validate(netlist, &levels)
    );
    Ok(CycleBreaking {
        alignment,
        removed_edges,
        lowered_by: delta.max(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uds_netlist::generators::iscas::Iscas85;
    use uds_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn tree_network_needs_no_shifts() {
        let nl = uds_netlist::generators::trees::reduction_tree(GateKind::Xor, 8).unwrap();
        let result = align(&nl).unwrap();
        assert!(result.removed_edges.is_empty());
        assert_eq!(result.alignment.retained_shifts(&nl), 0);
    }

    #[test]
    fn fig11_retains_one_shift() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let bn = b.gate(GateKind::Not, &[a], "B").unwrap();
        let c = b.gate(GateKind::And, &[a, bn], "C").unwrap();
        b.output(c);
        let nl = b.finish().unwrap();
        let result = align(&nl).unwrap();
        assert_eq!(result.removed_edges.len(), 1);
        assert_eq!(result.alignment.retained_shifts(&nl), 1);
    }

    #[test]
    fn zero_weight_cycle_breaks_without_shift() {
        // Two gates sharing both inputs: the removed edge re-joins two
        // vertices whose alignments already agree — no shift retained.
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let c = b.input("b");
        let x = b.gate(GateKind::And, &[a, c], "x").unwrap();
        let y = b.gate(GateKind::Or, &[a, c], "y").unwrap();
        b.output(x);
        b.output(y);
        let nl = b.finish().unwrap();
        let result = align(&nl).unwrap();
        assert_eq!(result.removed_edges.len(), 1);
        assert_eq!(result.alignment.retained_shifts(&nl), 0);
    }

    #[test]
    fn alignments_validate_on_the_suite() {
        for circuit in [Iscas85::C432, Iscas85::C499, Iscas85::C880] {
            let nl = circuit.build();
            let levels = uds_netlist::levelize(&nl).unwrap();
            let result = align(&nl).unwrap();
            result.alignment.validate(&nl, &levels).unwrap();
        }
    }

    #[test]
    fn expands_bit_fields_beyond_path_tracing() {
        // The paper's Fig. 22 point: cycle breaking expands bit-fields,
        // path tracing never does.
        for circuit in [Iscas85::C432, Iscas85::C880] {
            let nl = circuit.build();
            let levels = uds_netlist::levelize(&nl).unwrap();
            let cb = align(&nl).unwrap().alignment.stats(&nl, &levels);
            let pt = crate::path_tracing::align(&nl).unwrap().stats(&nl, &levels);
            assert!(
                cb.max_width_bits > pt.max_width_bits,
                "{circuit}: cycle-breaking width {} !> path-tracing {}",
                cb.max_width_bits,
                pt.max_width_bits
            );
        }
    }

    #[test]
    fn removed_edge_count_is_cyclomatic() {
        // F = E - V + C on a connected example: Fig. 11 has E=5, V=5,
        // C=1 -> F=1; checked again here on a reconvergent diamond.
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let x = b.gate(GateKind::Not, &[a], "x").unwrap();
        let y = b.gate(GateKind::Buf, &[a], "y").unwrap();
        let z = b.gate(GateKind::And, &[x, y], "z").unwrap();
        b.output(z);
        let nl = b.finish().unwrap();
        // V = 4 nets + 3 gates = 7; E = 2+2+3 = 7; C = 1 -> F = 1.
        let result = align(&nl).unwrap();
        assert_eq!(result.removed_edges.len(), 1);
    }
}
