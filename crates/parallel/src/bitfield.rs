//! Bit-field layout: one field per net, one bit per time unit, packed
//! into machine words exactly as the paper's implementation does.

use crate::word::Word;

/// Bits per machine word in the paper's own implementation. Its tables
/// (1/2/4 words per field) are in terms of 32-bit words, so `u32` is the
/// default arena word type; see [`Word`] for the 64-bit option.
pub const WORD_BITS: u32 = 32;

/// Placement of one net's bit-field inside the word arena.
///
/// Bit `i` of the field (bit `i % B` of word `base + i / B`, for a
/// `B`-bit arena word) represents the net's value at time `align + i`.
/// In the unoptimized technique `align` is 0 for every net; shift
/// elimination assigns differing (possibly negative) alignments.
///
/// The word size is fixed at construction (`words` is derived from it);
/// the accessors are generic and must be used with the same word type
/// the layout was built for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FieldLayout {
    /// First word of the field in the arena.
    pub base: u32,
    /// Field width in bits (time points covered).
    pub width: u32,
    /// Words allocated (`ceil(width / word_bits)`).
    pub words: u32,
    /// Time represented by bit 0.
    pub align: i32,
}

impl FieldLayout {
    /// Creates a layout over [`WORD_BITS`]-bit (32-bit) words; `words`
    /// is derived from `width`.
    pub fn new(base: u32, width: u32, align: i32) -> Self {
        Self::with_word_bits(base, width, align, WORD_BITS)
    }

    /// Creates a layout over `word_bits`-bit words.
    pub fn with_word_bits(base: u32, width: u32, align: i32, word_bits: u32) -> Self {
        FieldLayout {
            base,
            width,
            words: width.div_ceil(word_bits),
            align,
        }
    }

    /// The bit index holding the value at `time`, or `None` if the field
    /// does not cover that time.
    pub fn bit_of_time(&self, time: i64) -> Option<u32> {
        let offset = time - i64::from(self.align);
        if offset < 0 || offset >= i64::from(self.width) {
            None
        } else {
            Some(offset as u32)
        }
    }

    /// Reads the bit for `time` from the arena, replicating the top bit
    /// for times beyond the field (a net never changes after its level)
    /// and the bottom bit for earlier times (it cannot have changed yet).
    pub fn read_time<W: Word>(&self, arena: &[W], time: i64) -> bool {
        // max(0) before clamp: a degenerate zero-width field must not
        // panic with an inverted clamp range.
        let top = (i64::from(self.width) - 1).max(0);
        let offset = (time - i64::from(self.align)).clamp(0, top) as u32;
        self.read_bit(arena, offset)
    }

    /// The arena index of the word holding field bit `bit`, widened to
    /// `usize` *before* the add so the sum cannot wrap `u32`.
    fn word_index<W: Word>(&self, bit: u32) -> usize {
        self.base as usize + (bit / W::BITS) as usize
    }

    /// Reads field bit `bit` (must be `< width`... clamped to the top
    /// word's valid range by construction).
    pub fn read_bit<W: Word>(&self, arena: &[W], bit: u32) -> bool {
        debug_assert!(bit < self.width);
        arena[self.word_index::<W>(bit)].bit(bit % W::BITS)
    }

    /// Writes field bit `bit`.
    pub fn write_bit<W: Word>(&self, arena: &mut [W], bit: u32, value: bool) {
        debug_assert!(bit < self.width);
        let word = &mut arena[self.word_index::<W>(bit)];
        let mask = W::ONE << (bit % W::BITS);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// The bit index of the final (settled) value: the value at the
    /// net's level, which is the highest time the field represents
    /// meaningfully (`width - 1`; saturates for zero-width fields).
    pub fn final_bit(&self) -> u32 {
        self.width.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_round_up() {
        assert_eq!(FieldLayout::new(0, 1, 0).words, 1);
        assert_eq!(FieldLayout::new(0, 32, 0).words, 1);
        assert_eq!(FieldLayout::new(0, 33, 0).words, 2);
        assert_eq!(FieldLayout::new(0, 125, 0).words, 4);
    }

    #[test]
    fn wider_words_halve_the_count() {
        assert_eq!(FieldLayout::with_word_bits(0, 33, 0, 64).words, 1);
        assert_eq!(FieldLayout::with_word_bits(0, 65, 0, 64).words, 2);
        assert_eq!(FieldLayout::with_word_bits(0, 125, 0, 64).words, 2);
    }

    #[test]
    fn bit_of_time_respects_alignment() {
        let f = FieldLayout::new(0, 4, -1);
        assert_eq!(f.bit_of_time(-1), Some(0));
        assert_eq!(f.bit_of_time(0), Some(1));
        assert_eq!(f.bit_of_time(2), Some(3));
        assert_eq!(f.bit_of_time(3), None);
        assert_eq!(f.bit_of_time(-2), None);
    }

    #[test]
    fn read_write_bits_across_words() {
        let f = FieldLayout::new(1, 40, 0);
        let mut arena = vec![0u32; 3];
        f.write_bit(&mut arena, 0, true);
        f.write_bit(&mut arena, 35, true);
        assert!(f.read_bit(&arena, 0));
        assert!(f.read_bit(&arena, 35));
        assert!(!f.read_bit(&arena, 34));
        assert_eq!(arena[0], 0, "field starts at word 1");
        assert_eq!(arena[1], 1);
        assert_eq!(arena[2], 1 << 3);
        f.write_bit(&mut arena, 35, false);
        assert!(!f.read_bit(&arena, 35));
    }

    #[test]
    fn read_write_bits_in_u64_words() {
        let f = FieldLayout::with_word_bits(0, 70, 0, 64);
        assert_eq!(f.words, 2);
        let mut arena = vec![0u64; 2];
        f.write_bit(&mut arena, 63, true);
        f.write_bit(&mut arena, 64, true);
        assert_eq!(arena[0], 1 << 63);
        assert_eq!(arena[1], 1);
        assert!(f.read_bit(&arena, 63));
        assert!(f.read_bit(&arena, 64));
        assert!(!f.read_bit(&arena, 65));
    }

    #[test]
    fn read_time_replicates_at_the_edges() {
        let f = FieldLayout::new(0, 3, 1); // times 1..=3
        let mut arena = vec![0u32; 1];
        f.write_bit(&mut arena, 0, true); // time 1 = 1
        f.write_bit(&mut arena, 2, false); // time 3 = 0 (already)
        assert!(f.read_time(&arena, 0), "below field: bottom bit");
        assert!(f.read_time(&arena, 1));
        assert!(!f.read_time(&arena, 3));
        assert!(!f.read_time(&arena, 99), "beyond field: top bit");
    }

    #[test]
    fn final_bit_is_top_of_width() {
        assert_eq!(FieldLayout::new(0, 19, 0).final_bit(), 18);
    }
}
