//! Bit-field trimming (§4, Fig. 9): classifying the words of a
//! multi-word bit-field so the code generator can skip work.
//!
//! Each element of a net's PC-set marks a *representative* bit position.
//! A word of the field is:
//!
//! * **low-constant** — all of its bit times fall below the net's
//!   minlevel: every bit holds the final value from the previous vector,
//!   so one broadcast at initialization replaces all simulation;
//! * a **gap** — above the minlevel but containing no representative:
//!   every bit equals the high-order bit of the preceding word, restored
//!   with one broadcast *during* simulation;
//! * **active** — contains at least one representative and must be
//!   computed.
//!
//! Trimming has no effect on single-word fields, exactly as the paper's
//! Fig. 20 shows (c432–c1355 unchanged).

use crate::bitfield::FieldLayout;
use crate::word::Word;

/// Classification of one word of a bit-field.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WordClass {
    /// All times below minlevel: initialize by broadcasting the previous
    /// final value; no simulation code.
    LowConstant,
    /// No PC-set representative: broadcast the previous word's high bit;
    /// no simulation code.
    Gap,
    /// Contains a representative: simulate.
    Active,
}

/// Classifies every word of a 32-bit-word field (the default width).
///
/// `times` is the net's PC-set (ascending), `minlevel` its smallest
/// element. Bit `i` of the field represents time `layout.align + i`.
pub fn classify(layout: &FieldLayout, times: &[u32], minlevel: u32) -> Vec<WordClass> {
    classify_words::<u32>(layout, times, minlevel)
}

/// Classifies every word of a field packed into `W` words — the word
/// size must match the one the layout was built for, since it decides
/// which times share a word (a 64-bit word trims less often but trims
/// twice as much when it does).
///
/// Invariants (checked by debug assertions): the word containing the
/// level (the field's top bit) is always active, and no gap ever
/// precedes the first active word — below the minlevel everything is
/// low-constant.
pub fn classify_words<W: Word>(
    layout: &FieldLayout,
    times: &[u32],
    minlevel: u32,
) -> Vec<WordClass> {
    let mut classes = Vec::with_capacity(layout.words as usize);
    for w in 0..layout.words {
        let first_time = i64::from(layout.align) + i64::from(w) * i64::from(W::BITS);
        let last_time = (first_time + i64::from(W::BITS) - 1)
            .min(i64::from(layout.align) + i64::from(layout.width) - 1);
        if last_time < i64::from(minlevel) {
            classes.push(WordClass::LowConstant);
            continue;
        }
        let has_representative = times.iter().any(|&t| {
            let t = i64::from(t);
            t >= first_time && t <= last_time
        });
        classes.push(if has_representative {
            WordClass::Active
        } else {
            WordClass::Gap
        });
    }
    // Note: trailing words CAN be gaps — in the unoptimized layout every
    // field spans the full depth, and "nets near the primary inputs ...
    // have no PC-set representatives in their high-order words" (§4).
    debug_assert!(
        classes.contains(&WordClass::Active),
        "the minlevel word is always a representative"
    );
    debug_assert!(
        classes
            .iter()
            .find(|&&c| c != WordClass::LowConstant)
            .is_none_or(|&c| c == WordClass::Active),
        "the minlevel word is active, so no gap precedes the first active word"
    );
    classes
}

/// Counts how many words of simulation work trimming removes
/// (low-constant + gap words).
pub fn trimmed_words(classes: &[WordClass]) -> usize {
    classes.iter().filter(|&&c| c != WordClass::Active).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_word_fields_are_untouched() {
        let layout = FieldLayout::new(0, 20, 0);
        let classes = classify(&layout, &[3, 7, 19], 3);
        assert_eq!(classes, vec![WordClass::Active]);
        assert_eq!(trimmed_words(&classes), 0);
    }

    #[test]
    fn deep_net_gets_low_constant_words() {
        // minlevel 70, level 130: words 0 and 1 all-below-minlevel.
        let layout = FieldLayout::new(0, 131, 0);
        let classes = classify(&layout, &[70, 100, 130], 70);
        assert_eq!(
            classes,
            vec![
                WordClass::LowConstant,
                WordClass::LowConstant,
                WordClass::Active,
                WordClass::Active,
                WordClass::Active,
            ]
        );
        assert_eq!(trimmed_words(&classes), 2);
    }

    #[test]
    fn gaps_between_representatives() {
        // Representatives at 5 and 100 with nothing in words 1 and 2.
        let layout = FieldLayout::new(0, 125, 0);
        let classes = classify(&layout, &[5, 100], 5);
        assert_eq!(
            classes,
            vec![
                WordClass::Active,
                WordClass::Gap,
                WordClass::Gap,
                WordClass::Active,
            ]
        );
    }

    #[test]
    fn alignment_moves_the_window() {
        // Same PC-set, field aligned at 64: times 64..=127 are bits 0..63.
        let layout = FieldLayout::new(0, 64, 64);
        let classes = classify(&layout, &[70, 120], 70);
        assert_eq!(classes, vec![WordClass::Active, WordClass::Active]);
        // Aligned at 0, the first two words would be low-constant.
        let layout0 = FieldLayout::new(0, 128, 0);
        let classes0 = classify(&layout0, &[70, 120], 70);
        assert_eq!(classes0[0], WordClass::LowConstant);
        assert_eq!(classes0[1], WordClass::LowConstant);
    }

    #[test]
    fn wider_words_merge_classes() {
        // minlevel 70, level 130 over 64-bit words: word 0 (times
        // 0..=63) is all below the minlevel, words 1 and 2 are active —
        // the u32 classification's two low-constant words collapse into
        // one twice-as-wide skip.
        let layout = FieldLayout::with_word_bits(0, 131, 0, 64);
        let classes = classify_words::<u64>(&layout, &[70, 100, 130], 70);
        assert_eq!(
            classes,
            vec![WordClass::LowConstant, WordClass::Active, WordClass::Active]
        );
    }

    #[test]
    fn negative_alignment_bits_are_low_constant() {
        // Align -40, minlevel 2: word 0 covers times -40..-9, all < 2.
        let layout = FieldLayout::new(0, 45, -40);
        let classes = classify(&layout, &[2, 4], 2);
        assert_eq!(classes[0], WordClass::LowConstant);
        assert_eq!(classes[1], WordClass::Active);
    }
}
