//! The arena word abstraction: the parallel technique packs one time
//! step per bit into machine words, and every layer of the compiler —
//! field sizing, trimming classification, shift-merge carries, the C
//! emitter — must agree on how wide those words are.
//!
//! The paper's implementation and its tables (1/2/4 words per field) are
//! in terms of 32-bit words; [`u32`] reproduces them. On a 64-bit host
//! [`u64`] halves the word count of every multi-word field, which is the
//! obvious modernization §3 invites ("the number of instructions ...
//! proportional to the number of words").

use std::fmt::Debug;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, Not, Shl, Shr};

/// An unsigned machine word usable as the bit-field arena element.
///
/// Implemented for [`u32`] (the paper's width) and [`u64`].
pub trait Word:
    Copy
    + Eq
    + Debug
    + Default
    + Send
    + Sync
    + 'static
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + Not<Output = Self>
    + Shl<u32, Output = Self>
    + Shr<u32, Output = Self>
    + BitOrAssign
    + BitAndAssign
{
    /// Bits per word.
    const BITS: u32;
    /// The all-zeros word.
    const ZERO: Self;
    /// The word with value 1.
    const ONE: Self;
    /// The all-ones word.
    const ONES: Self;
    /// The C type the code generator emits for this width.
    const C_TYPE: &'static str;

    /// All bits set to `bit` (the broadcast fill the paper's Fig. 9
    /// trimming statements use).
    fn splat(bit: bool) -> Self;

    /// Value of bit `index` (must be `< BITS`).
    fn bit(self, index: u32) -> bool;

    /// The mask with the low `bits` bits set. Unlike a raw
    /// `(1 << bits) - 1`, this is well-defined for `bits == BITS`
    /// (all ones) — the boundary a 32-level circuit hits on a 32-bit
    /// word. `bits > BITS` is a caller bug.
    fn low_mask(bits: u32) -> Self;

    /// Number of set bits.
    fn count_ones(self) -> u32;

    /// Number of trailing zero bits (`BITS` for the zero word) — the
    /// activity profiler walks set bits with it.
    fn trailing_zeros(self) -> u32;
}

macro_rules! impl_word {
    ($ty:ty, $c_type:literal) => {
        impl Word for $ty {
            const BITS: u32 = <$ty>::BITS;
            const ZERO: Self = 0;
            const ONE: Self = 1;
            const ONES: Self = !0;
            const C_TYPE: &'static str = $c_type;

            #[inline]
            fn splat(bit: bool) -> Self {
                (bit as $ty).wrapping_neg()
            }

            #[inline]
            fn bit(self, index: u32) -> bool {
                self >> index & 1 != 0
            }

            #[inline]
            fn low_mask(bits: u32) -> Self {
                debug_assert!(
                    bits <= Self::BITS,
                    "low_mask({bits}) exceeds the {}-bit word",
                    Self::BITS
                );
                if bits >= Self::BITS {
                    !0
                } else {
                    (1 << bits) - 1
                }
            }

            #[inline]
            fn count_ones(self) -> u32 {
                <$ty>::count_ones(self)
            }

            #[inline]
            fn trailing_zeros(self) -> u32 {
                <$ty>::trailing_zeros(self)
            }
        }
    };
}

impl_word!(u32, "uint32_t");
impl_word!(u64, "uint64_t");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_broadcasts() {
        assert_eq!(<u32 as Word>::splat(true), u32::MAX);
        assert_eq!(<u32 as Word>::splat(false), 0);
        assert_eq!(<u64 as Word>::splat(true), u64::MAX);
    }

    #[test]
    fn low_mask_covers_the_word_boundary() {
        assert_eq!(<u32 as Word>::low_mask(0), 0);
        assert_eq!(<u32 as Word>::low_mask(1), 1);
        assert_eq!(<u32 as Word>::low_mask(31), u32::MAX >> 1);
        assert_eq!(<u32 as Word>::low_mask(32), u32::MAX, "full-width mask");
        assert_eq!(<u64 as Word>::low_mask(63), u64::MAX >> 1);
        assert_eq!(<u64 as Word>::low_mask(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "low_mask")]
    #[cfg(debug_assertions)]
    fn low_mask_rejects_oversized_counts() {
        let _ = <u32 as Word>::low_mask(33);
    }

    #[test]
    fn bit_reads() {
        assert!(<u32 as Word>::bit(1 << 31, 31));
        assert!(!<u32 as Word>::bit(1 << 31, 0));
        assert!(<u64 as Word>::bit(1 << 63, 63));
    }
}
