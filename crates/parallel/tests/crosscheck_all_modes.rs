//! Cross-validation: every optimization mode of the parallel technique
//! must produce exactly the event-driven unit-delay waveforms, net by
//! net, time by time, vector after vector.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uds_eventsim::EventDrivenUnitDelay;
use uds_netlist::generators::iscas::{c17, Iscas85};
use uds_netlist::generators::random::{layered, LayeredConfig};
use uds_netlist::{levelize, Netlist};
use uds_parallel::{Optimization, ParallelSimulator};

fn crosscheck(nl: &Netlist, optimization: Optimization, vectors: usize, seed: u64) {
    let depth = levelize(nl).unwrap().depth;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut compiled = ParallelSimulator::compile_monitoring_all(nl, optimization).unwrap();
    let mut reference = EventDrivenUnitDelay::<bool>::new(nl).unwrap();

    for vector_index in 0..vectors {
        let inputs: Vec<bool> = (0..nl.primary_inputs().len()).map(|_| rng.gen()).collect();

        let mut waveform: Vec<Vec<bool>> = reference
            .values()
            .iter()
            .map(|&v| vec![v; depth as usize + 1])
            .collect();
        reference.simulate_vector_traced(&inputs, |t, net, v| {
            for slot in &mut waveform[net.index()][t as usize..] {
                *slot = v;
            }
        });

        compiled.simulate_vector(&inputs);

        for net in nl.net_ids() {
            assert_eq!(
                compiled.history(net).expect("monitoring all nets"),
                waveform[net.index()],
                "{optimization}: history of {} ({net}) diverged on vector {vector_index}",
                nl.net_name(net)
            );
        }
    }
}

#[test]
fn c17_all_modes_match_event_driven() {
    for optimization in Optimization::ALL {
        crosscheck(&c17(), optimization, 100, 0xC17);
    }
}

#[test]
fn random_circuits_all_modes() {
    for seed in 0..6 {
        let mut config = LayeredConfig::new(format!("p{seed}"), 120, 10);
        config.seed = seed;
        config.locality = 0.1 + 0.15 * (seed % 4) as f64;
        config.xor_fraction = 0.3;
        let nl = layered(&config).unwrap();
        for optimization in Optimization::ALL {
            crosscheck(&nl, optimization, 25, seed);
        }
    }
}

#[test]
fn deep_circuit_exercises_multiword_fields() {
    // Depth 75 forces 3-word fields: trimming and carries matter.
    let mut config = LayeredConfig::new("deep", 160, 75);
    config.primary_inputs = 6;
    config.locality = 0.3;
    let nl = layered(&config).unwrap();
    for optimization in Optimization::ALL {
        crosscheck(&nl, optimization, 20, 7);
    }
}

#[test]
fn sparse_deep_circuit_has_gaps() {
    // High locality at depth 70: PC-sets are narrow bands, so most
    // fields have genuine low-constant AND gap words.
    let mut config = LayeredConfig::new("gappy", 150, 70);
    config.primary_inputs = 8;
    config.locality = 0.97;
    config.leak_window = 2;
    let nl = layered(&config).unwrap();
    for optimization in [
        Optimization::Trimming,
        Optimization::PathTracingTrimming,
        Optimization::CycleBreakingTrimming,
    ] {
        crosscheck(&nl, optimization, 20, 11);
    }
}

#[test]
fn c432_standin_all_modes() {
    for optimization in Optimization::ALL {
        crosscheck(&Iscas85::C432.build(), optimization, 8, 0x432);
    }
}

#[test]
fn c1908_standin_multiword() {
    // 2-word fields per the paper's Fig. 20.
    let nl = Iscas85::C1908.build();
    for optimization in [
        Optimization::None,
        Optimization::Trimming,
        Optimization::PathTracingTrimming,
    ] {
        crosscheck(&nl, optimization, 4, 0x1908);
    }
}

#[test]
fn pcset_and_parallel_agree() {
    // The two compiled techniques against each other (final values for
    // every net, histories for outputs).
    let mut config = LayeredConfig::new("pair", 200, 15);
    config.xor_fraction = 0.25;
    let nl = layered(&config).unwrap();
    let mut pcset = uds_pcset::PcSetSimulator::compile(&nl).unwrap();
    let mut parallel = ParallelSimulator::compile(&nl, Optimization::PathTracingTrimming).unwrap();
    let mut rng = StdRng::seed_from_u64(21);
    for _ in 0..40 {
        let inputs: Vec<bool> = (0..nl.primary_inputs().len()).map(|_| rng.gen()).collect();
        pcset.simulate_vector(&inputs);
        parallel.simulate_vector(&inputs);
        for net in nl.net_ids() {
            assert_eq!(pcset.final_value(net), parallel.final_value(net), "{net}");
        }
        for &po in nl.primary_outputs() {
            assert_eq!(pcset.history(po), parallel.history(po));
        }
    }
}
