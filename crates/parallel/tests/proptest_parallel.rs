//! Property-based tests for the parallel technique: alignment-algorithm
//! invariants and cross-mode equivalence on randomized circuits.

use proptest::prelude::*;

use uds_netlist::generators::random::{layered, LayeredConfig};
use uds_netlist::{levelize, Netlist};
use uds_parallel::{cycle_breaking, path_tracing, Optimization, ParallelSimulator, WORD_BITS};

fn circuit_strategy() -> impl Strategy<Value = (Netlist, u64)> {
    (
        1u32..=40,
        0usize..=80,
        1usize..=10,
        any::<u64>(),
        0.0f64..=1.0,
    )
        .prop_map(|(depth, extra, pis, seed, locality)| {
            let mut config = LayeredConfig::new("prop", depth as usize + extra, depth);
            config.primary_inputs = pis;
            config.primary_outputs = 3;
            config.seed = seed;
            config.locality = locality;
            config.xor_fraction = 0.25;
            (layered(&config).expect("valid config"), seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn path_tracing_never_expands_fields((nl, _) in circuit_strategy()) {
        let levels = levelize(&nl).unwrap();
        let alignment = path_tracing::align(&nl).unwrap();
        let stats = alignment.stats(&nl, &levels);
        prop_assert!(stats.max_width_bits <= levels.depth + 1);
        prop_assert!(
            stats.max_width_words <= (levels.depth + 1).div_ceil(WORD_BITS)
        );
    }

    #[test]
    fn path_tracing_generates_only_right_shifts((nl, _) in circuit_strategy()) {
        let alignment = path_tracing::align(&nl).unwrap();
        for gid in nl.gate_ids() {
            prop_assert_eq!(alignment.output_shift(&nl, gid), 0);
            for &input in &nl.gate(gid).inputs {
                prop_assert!(alignment.input_shift(gid, input) <= 0);
            }
        }
    }

    #[test]
    fn both_alignments_validate((nl, _) in circuit_strategy()) {
        let levels = levelize(&nl).unwrap();
        path_tracing::align(&nl).unwrap().validate(&nl, &levels).unwrap();
        cycle_breaking::align(&nl)
            .unwrap()
            .alignment
            .validate(&nl, &levels)
            .unwrap();
    }

    #[test]
    fn alignment_never_exceeds_minlevel((nl, _) in circuit_strategy()) {
        let levels = levelize(&nl).unwrap();
        let pt = path_tracing::align(&nl).unwrap();
        for net in nl.net_ids() {
            prop_assert!(pt.net_align[net] <= levels.net_minlevel[net] as i32);
        }
        // Cycle breaking is strict after its lowering pass.
        let cb = cycle_breaking::align(&nl).unwrap().alignment;
        for net in nl.net_ids() {
            prop_assert!(cb.net_align[net] < levels.net_minlevel[net].max(1) as i32 + 1);
        }
    }

    #[test]
    fn retained_shifts_never_exceed_pin_pairs((nl, _) in circuit_strategy()) {
        // A shift per (gate, distinct input) plus one per gate output is
        // the absolute ceiling.
        let ceiling: usize = nl
            .gates()
            .iter()
            .map(|g| {
                let mut distinct: Vec<_> = Vec::new();
                for &i in &g.inputs {
                    if !distinct.contains(&i) {
                        distinct.push(i);
                    }
                }
                distinct.len() + 1
            })
            .sum();
        for alignment in [
            path_tracing::align(&nl).unwrap(),
            cycle_breaking::align(&nl).unwrap().alignment,
        ] {
            prop_assert!(alignment.retained_shifts(&nl) <= ceiling);
        }
    }

    #[test]
    fn every_mode_matches_unoptimized_histories(
        (nl, seed) in circuit_strategy(),
        vector_count in 1usize..4,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xFEED);
        let width = nl.primary_inputs().len();
        let vectors: Vec<Vec<bool>> = (0..vector_count)
            .map(|_| (0..width).map(|_| rng.gen()).collect())
            .collect();

        let mut reference =
            ParallelSimulator::compile_monitoring_all(&nl, Optimization::None).unwrap();
        let mut reference_histories: Vec<Vec<Vec<bool>>> = Vec::new();
        for vector in &vectors {
            reference.simulate_vector(vector);
            reference_histories.push(
                nl.net_ids()
                    .map(|n| reference.history(n).expect("monitoring all"))
                    .collect(),
            );
        }

        for optimization in [
            Optimization::Trimming,
            Optimization::PathTracing,
            Optimization::PathTracingTrimming,
            Optimization::CycleBreaking,
            Optimization::CycleBreakingTrimming,
        ] {
            let mut sim =
                ParallelSimulator::compile_monitoring_all(&nl, optimization).unwrap();
            for (vector, expected) in vectors.iter().zip(&reference_histories) {
                sim.simulate_vector(vector);
                for net in nl.net_ids() {
                    prop_assert_eq!(
                        sim.history(net).expect("monitoring all"),
                        expected[net.index()].clone(),
                        "{} diverged on {}", optimization, net
                    );
                }
            }
        }
    }

    #[test]
    fn final_values_match_zero_delay_oracle(
        (nl, seed) in circuit_strategy(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF);
        let levels = levelize(&nl).unwrap();
        let mut sim =
            ParallelSimulator::compile(&nl, Optimization::PathTracingTrimming).unwrap();
        for _ in 0..3 {
            let inputs: Vec<bool> =
                (0..nl.primary_inputs().len()).map(|_| rng.gen()).collect();
            sim.simulate_vector(&inputs);
            let mut value = vec![false; nl.net_count()];
            for (&pi, &b) in nl.primary_inputs().iter().zip(&inputs) {
                value[pi] = b;
            }
            for &gid in &levels.topo_gates {
                let gate = nl.gate(gid);
                let bits: Vec<bool> = gate.inputs.iter().map(|&n| value[n]).collect();
                value[gate.output] = gate.kind.eval_bits(&bits);
            }
            for net in nl.net_ids() {
                prop_assert_eq!(sim.final_value(net), value[net], "net {}", net);
            }
        }
    }
}
