//! Word-boundary regression: circuits whose depth straddles the arena
//! word size (31/32/33 levels for `u32`, 63/64/65 for `u64`) exercise
//! every full-word corner of the low-mask helper — field widths equal to
//! the word size, shift-merge carries into a fresh word, and top-word
//! sanitization masks covering the whole word. Both word widths must
//! reproduce the event-driven unit-delay waveforms exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uds_eventsim::EventDrivenUnitDelay;
use uds_netlist::generators::random::{layered, LayeredConfig};
use uds_netlist::{levelize, Netlist};
use uds_parallel::{Optimization, ParallelSim, Word};

fn crosscheck<W: Word>(nl: &Netlist, optimization: Optimization, vectors: usize, seed: u64) {
    let depth = levelize(nl).unwrap().depth;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut compiled = ParallelSim::<W>::compile_monitoring_all(nl, optimization).unwrap();
    let mut reference = EventDrivenUnitDelay::<bool>::new(nl).unwrap();

    for vector_index in 0..vectors {
        let inputs: Vec<bool> = (0..nl.primary_inputs().len()).map(|_| rng.gen()).collect();

        let mut waveform: Vec<Vec<bool>> = reference
            .values()
            .iter()
            .map(|&v| vec![v; depth as usize + 1])
            .collect();
        reference.simulate_vector_traced(&inputs, |t, net, v| {
            for slot in &mut waveform[net.index()][t as usize..] {
                *slot = v;
            }
        });

        compiled.simulate_vector(&inputs);

        for net in nl.net_ids() {
            assert_eq!(
                compiled.history(net).expect("monitoring all nets"),
                waveform[net.index()],
                "{optimization} ({} -bit words): history of {} ({net}) diverged on vector \
                 {vector_index}",
                W::BITS,
                nl.net_name(net)
            );
        }
    }
}

fn boundary_circuit(depth: u32) -> Netlist {
    let mut config = LayeredConfig::new(format!("boundary{depth}"), 170, depth);
    config.primary_inputs = 6;
    config.seed = u64::from(depth);
    config.locality = 0.4;
    config.xor_fraction = 0.25;
    let nl = layered(&config).unwrap();
    assert_eq!(
        levelize(&nl).unwrap().depth,
        depth,
        "generator hit the target depth"
    );
    nl
}

/// Depths 31/32/33: one-word fields, exactly-full fields, and the first
/// two-word fields for 32-bit words (all still one word for 64-bit).
#[test]
fn u32_word_boundary_depths() {
    for depth in [31, 32, 33] {
        let nl = boundary_circuit(depth);
        for optimization in Optimization::ALL {
            crosscheck::<u32>(&nl, optimization, 6, u64::from(depth));
            crosscheck::<u64>(&nl, optimization, 6, u64::from(depth));
        }
    }
}

/// Depths 63/64/65: the same boundary for 64-bit words (and 2/3-word
/// fields for 32-bit ones).
#[test]
fn u64_word_boundary_depths() {
    for depth in [63, 64, 65] {
        let nl = boundary_circuit(depth);
        for optimization in Optimization::ALL {
            crosscheck::<u32>(&nl, optimization, 4, u64::from(depth));
            crosscheck::<u64>(&nl, optimization, 4, u64::from(depth));
        }
    }
}

/// The two widths also agree with each other bit-for-bit on every final
/// value, across a longer vector stream with retention in play.
#[test]
fn widths_agree_on_retained_streams() {
    let nl = boundary_circuit(33);
    let mut sim32 = ParallelSim::<u32>::compile(&nl, Optimization::PathTracingTrimming).unwrap();
    let mut sim64 = ParallelSim::<u64>::compile(&nl, Optimization::PathTracingTrimming).unwrap();
    assert_eq!(sim32.word_bits(), 32);
    assert_eq!(sim64.word_bits(), 64);
    let mut rng = StdRng::seed_from_u64(0x3364);
    for _ in 0..50 {
        let inputs: Vec<bool> = (0..nl.primary_inputs().len()).map(|_| rng.gen()).collect();
        sim32.simulate_vector(&inputs);
        sim64.simulate_vector(&inputs);
        for net in nl.net_ids() {
            assert_eq!(sim32.final_value(net), sim64.final_value(net), "{net}");
        }
    }
}
