//! The word-parallel transition count on raw bit-fields must agree with
//! a naive scan over the reconstructed history, for every net, on random
//! circuits and vectors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uds_netlist::generators::random::{layered, LayeredConfig};
use uds_netlist::{GateKind, NetlistBuilder};
use uds_parallel::{Optimization, ParallelSimulator};

#[test]
fn field_transitions_match_history_scan() {
    for seed in 0..5u64 {
        let mut config = LayeredConfig::new("hz", 180, 40);
        config.seed = seed;
        config.xor_fraction = 0.4;
        config.primary_inputs = 8;
        let nl = layered(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4A2);
        for optimization in [
            Optimization::None,
            Optimization::Trimming,
            Optimization::PathTracing,
            Optimization::PathTracingTrimming,
        ] {
            let mut sim = ParallelSimulator::compile_monitoring_all(&nl, optimization).unwrap();
            for _ in 0..6 {
                let previous: Vec<bool> = nl.net_ids().map(|n| sim.final_value(n)).collect();
                let inputs: Vec<bool> = (0..8).map(|_| rng.gen()).collect();
                sim.simulate_vector(&inputs);
                for net in nl.net_ids() {
                    let history = sim.history(net).expect("monitoring all nets");
                    let layout = sim.field_layout(net);
                    // The naive count: transitions within the
                    // non-negative part of the field window, plus — for
                    // fields reaching into negative times (primary
                    // inputs) — the edge from the previous vector's value
                    // into time 0, which those fields represent.
                    let lo = layout.align.max(0) as usize;
                    let hi =
                        ((layout.align + layout.width as i32 - 1) as usize).min(history.len() - 1);
                    let window = &history[lo..=hi];
                    let mut naive = window.windows(2).filter(|p| p[0] != p[1]).count() as u32;
                    if layout.align < 0 && previous[net.index()] != history[0] {
                        naive += 1;
                    }
                    let fast = sim.field_transition_count(net);
                    assert_eq!(
                        fast, naive,
                        "{optimization}: net {net} window {lo}..={hi} history {history:?}"
                    );
                    assert_eq!(sim.is_hazard_free(net), fast <= 1);
                }
            }
        }
    }
}

#[test]
fn classic_static_hazard_is_detected_on_fields() {
    let mut b = NetlistBuilder::new();
    let a = b.input("a");
    let na = b.gate(GateKind::Not, &[a], "na").unwrap();
    let y = b.gate(GateKind::And, &[a, na], "y").unwrap();
    b.output(y);
    let nl = b.finish().unwrap();
    let mut sim = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
    sim.simulate_vector(&[false]);
    assert!(sim.is_hazard_free(y));
    sim.simulate_vector(&[true]);
    assert_eq!(sim.field_transition_count(y), 2, "rise then fall");
    assert!(!sim.is_hazard_free(y));
}

#[test]
fn stable_nets_count_zero_transitions() {
    let mut b = NetlistBuilder::new();
    let a = b.input("a");
    let y = b.gate(GateKind::Buf, &[a], "y").unwrap();
    b.output(y);
    let nl = b.finish().unwrap();
    let mut sim = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
    sim.simulate_vector(&[false]);
    assert_eq!(sim.field_transition_count(y), 0);
    sim.simulate_vector(&[true]);
    assert_eq!(sim.field_transition_count(y), 1, "one clean edge");
}
