//! The strongest invariant in the workspace: the compiled PC-set
//! simulator must produce exactly the same unit-delay waveforms as the
//! interpreted event-driven simulator, vector after vector.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uds_eventsim::EventDrivenUnitDelay;
use uds_netlist::generators::iscas::{c17, Iscas85};
use uds_netlist::generators::random::{layered, LayeredConfig};
use uds_netlist::{levelize, Netlist};
use uds_pcset::PcSetSimulator;

/// Runs `vectors` random vectors through both simulators, comparing the
/// full history of every monitored (primary output) net and the final
/// value of every net.
fn crosscheck(nl: &Netlist, vectors: usize, seed: u64) {
    let depth = levelize(nl).unwrap().depth;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut compiled = PcSetSimulator::compile(nl).unwrap();
    let mut reference = EventDrivenUnitDelay::<bool>::new(nl).unwrap();

    for vector_index in 0..vectors {
        let inputs: Vec<bool> = (0..nl.primary_inputs().len()).map(|_| rng.gen()).collect();

        // Reference: trace every change into a dense waveform.
        let mut waveform: Vec<Vec<bool>> = reference
            .values()
            .iter()
            .map(|&v| vec![v; depth as usize + 1])
            .collect();
        reference.simulate_vector_traced(&inputs, |t, net, v| {
            for slot in &mut waveform[net.index()][t as usize..] {
                *slot = v;
            }
        });

        compiled.simulate_vector(&inputs);

        for net in nl.net_ids() {
            assert_eq!(
                compiled.final_value(net),
                *waveform[net.index()].last().unwrap(),
                "final value of {} ({net}) diverged on vector {vector_index}",
                nl.net_name(net)
            );
        }
        for &po in nl.primary_outputs() {
            let history = compiled.history(po).expect("outputs are monitored");
            assert_eq!(
                history,
                waveform[po.index()],
                "history of {} diverged on vector {vector_index}",
                nl.net_name(po)
            );
        }
    }
}

#[test]
fn c17_full_history_matches_event_driven() {
    crosscheck(&c17(), 200, 0xC17);
}

#[test]
fn random_circuits_match_event_driven() {
    for seed in 0..8 {
        let mut config = LayeredConfig::new(format!("x{seed}"), 150, 12);
        config.seed = seed;
        config.locality = 0.2 + 0.1 * (seed % 5) as f64;
        config.xor_fraction = 0.3;
        let nl = layered(&config).unwrap();
        crosscheck(&nl, 40, seed);
    }
}

#[test]
fn deep_narrow_circuit_matches() {
    let mut config = LayeredConfig::new("deep", 120, 60);
    config.primary_inputs = 4;
    config.locality = 0.0;
    let nl = layered(&config).unwrap();
    crosscheck(&nl, 50, 99);
}

#[test]
fn c432_standin_matches_event_driven() {
    crosscheck(&Iscas85::C432.build(), 25, 0x432);
}

#[test]
fn c880_standin_matches_event_driven() {
    crosscheck(&Iscas85::C880.build(), 10, 0x880);
}

#[test]
fn value_at_matches_event_driven_at_pc_times() {
    // Beyond monitored outputs: every net's value at each of its PC
    // times must agree with the reference waveform.
    let nl = c17();
    let depth = levelize(&nl).unwrap().depth;
    let sets = uds_pcset::PcSets::compute(&nl).unwrap();
    let mut compiled = PcSetSimulator::compile(&nl).unwrap();
    let mut reference = EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
    let mut rng = StdRng::seed_from_u64(5);

    for _ in 0..100 {
        let inputs: Vec<bool> = (0..5).map(|_| rng.gen()).collect();
        let mut waveform: Vec<Vec<bool>> = reference
            .values()
            .iter()
            .map(|&v| vec![v; depth as usize + 1])
            .collect();
        reference.simulate_vector_traced(&inputs, |t, net, v| {
            for slot in &mut waveform[net.index()][t as usize..] {
                *slot = v;
            }
        });
        compiled.simulate_vector(&inputs);
        for net in nl.net_ids() {
            for &t in sets.net[net].times() {
                assert_eq!(
                    compiled.value_at(net, t),
                    Some(waveform[net.index()][t as usize]),
                    "net {net} at time {t}"
                );
            }
        }
    }
}
