//! Property-based tests for PC-set algebra, the PC-set algorithm's
//! invariants, and the compiled simulator's agreement with a zero-delay
//! oracle on randomized circuits.

use proptest::prelude::*;

use uds_netlist::generators::random::{layered, LayeredConfig};
use uds_netlist::{levelize, Netlist};
use uds_pcset::{zero_insert, PcSet, PcSetSimulator, PcSets};

fn times_strategy() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..200, 0..12)
}

fn small_circuit_strategy() -> impl Strategy<Value = (Netlist, u64)> {
    (
        1u32..=15,
        0usize..=80,
        1usize..=12,
        any::<u64>(),
        0.0f64..=1.0,
    )
        .prop_map(|(depth, extra, pis, seed, locality)| {
            let mut config = LayeredConfig::new("prop", depth as usize + extra, depth);
            config.primary_inputs = pis;
            config.primary_outputs = 4;
            config.seed = seed;
            config.locality = locality;
            config.xor_fraction = 0.3;
            (layered(&config).expect("valid config"), seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn union_is_commutative_associative_idempotent(
        a in times_strategy(), b in times_strategy(), c in times_strategy()
    ) {
        let (a, b, c) = (PcSet::from_times(a), PcSet::from_times(b), PcSet::from_times(c));
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert_eq!(a.union(&PcSet::new()), a);
    }

    #[test]
    fn increment_shifts_every_element(a in times_strategy()) {
        let set = PcSet::from_times(a);
        let inc = set.incremented();
        prop_assert_eq!(inc.len(), set.len());
        for (&x, &y) in set.times().iter().zip(inc.times()) {
            prop_assert_eq!(y, x + 1);
        }
    }

    #[test]
    fn largest_below_matches_naive(a in times_strategy(), probe in 0u32..220) {
        let set = PcSet::from_times(a.clone());
        let naive = a.iter().copied().filter(|&t| t < probe).max();
        prop_assert_eq!(set.largest_below(probe), naive);
        let naive_le = a.iter().copied().filter(|&t| t <= probe).max();
        prop_assert_eq!(set.largest_at_or_below(probe), naive_le);
    }

    #[test]
    fn pc_sets_bound_by_levels((nl, _) in small_circuit_strategy()) {
        let sets = PcSets::compute(&nl).unwrap();
        let levels = levelize(&nl).unwrap();
        for net in nl.net_ids() {
            let set = &sets.net[net];
            prop_assert_eq!(set.min().unwrap(), levels.net_minlevel[net]);
            prop_assert_eq!(set.max().unwrap(), levels.net_level[net]);
            prop_assert!(
                set.len() as u32 <= levels.net_level[net] - levels.net_minlevel[net] + 1
            );
        }
    }

    #[test]
    fn gate_sets_are_incremented_unions((nl, _) in small_circuit_strategy()) {
        let sets = PcSets::compute(&nl).unwrap();
        for gid in nl.gate_ids() {
            let gate = nl.gate(gid);
            let mut union = PcSet::new();
            for &input in &gate.inputs {
                union = union.union(&sets.net[input]);
            }
            prop_assert_eq!(sets.gate[gid.index()].clone(), union.incremented());
        }
    }

    #[test]
    fn zero_insertion_is_idempotent((nl, _) in small_circuit_strategy()) {
        let mut sets = PcSets::compute(&nl).unwrap();
        let monitored: Vec<_> = nl.primary_outputs().to_vec();
        zero_insert::insert_zeros(&nl, &mut sets, &monitored);
        let after_once = sets.clone();
        let second = zero_insert::insert_zeros(&nl, &mut sets, &monitored);
        prop_assert_eq!(sets, after_once);
        prop_assert_eq!(second.retained_count(), 0);
    }

    #[test]
    fn final_values_match_zero_delay_oracle(
        (nl, seed) in small_circuit_strategy(),
        vector_count in 1usize..6,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut sim = PcSetSimulator::compile(&nl).unwrap();
        let levels = levelize(&nl).unwrap();
        for _ in 0..vector_count {
            let inputs: Vec<bool> =
                (0..nl.primary_inputs().len()).map(|_| rng.gen()).collect();
            sim.simulate_vector(&inputs);
            // Zero-delay settle (independent oracle).
            let mut value = vec![false; nl.net_count()];
            for (&pi, &b) in nl.primary_inputs().iter().zip(&inputs) {
                value[pi] = b;
            }
            for &gid in &levels.topo_gates {
                let gate = nl.gate(gid);
                let bits: Vec<bool> = gate.inputs.iter().map(|&n| value[n]).collect();
                value[gate.output] = gate.kind.eval_bits(&bits);
            }
            for net in nl.net_ids() {
                prop_assert_eq!(sim.final_value(net), value[net], "net {}", net);
            }
        }
    }

    #[test]
    fn streams_match_sequential_simulation(
        (nl, seed) in small_circuit_strategy(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x1234);
        let width = nl.primary_inputs().len();

        // Two vectors per lane, three lanes checked against sequential runs.
        let vectors: Vec<Vec<Vec<bool>>> = (0..2)
            .map(|_| {
                (0..3)
                    .map(|_| (0..width).map(|_| rng.gen()).collect())
                    .collect()
            })
            .collect();

        let mut streamed = PcSetSimulator::compile(&nl).unwrap();
        for step in &vectors {
            let words: Vec<u64> = (0..width)
                .map(|i| {
                    let mut word = 0u64;
                    for (lane, vector) in step.iter().enumerate() {
                        word |= (vector[i] as u64) << lane;
                    }
                    word
                })
                .collect();
            streamed.simulate_streams(&words);
        }

        for lane in 0..3usize {
            let mut sequential = PcSetSimulator::compile(&nl).unwrap();
            for step in &vectors {
                sequential.simulate_vector(&step[lane]);
            }
            for &po in nl.primary_outputs() {
                let lane_bit = streamed.final_value_streams(po) >> lane & 1 != 0;
                prop_assert_eq!(lane_bit, sequential.final_value(po), "lane {}", lane);
            }
        }
    }
}
