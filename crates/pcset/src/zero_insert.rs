//! Zero insertion: marking nets that must retain their previous-vector
//! value (the paper's Fig. 3).
//!
//! When a gate computes its earliest output (at time `m + 1`, where `m`
//! is the smallest input minlevel), inputs whose own minlevel exceeds `m`
//! have not changed yet for the current vector — their value *from the
//! previous input vector* must be used. Adding element 0 to such a net's
//! PC-set allocates a variable for that retained value and guarantees the
//! operand search ("largest element strictly below `t`") always succeeds.

use uds_netlist::{levelize, NetId, Netlist};

use crate::PcSets;

/// Result of zero insertion.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ZeroInsertion {
    /// Per net: `true` if element 0 was added (the net must retain its
    /// previous-vector value across vector boundaries).
    pub retains: Vec<bool>,
}

impl ZeroInsertion {
    /// Number of nets that retain their previous value.
    pub fn retained_count(&self) -> usize {
        self.retains.iter().filter(|&&r| r).count()
    }
}

/// Performs zero insertion on `sets` in place.
///
/// Applies the paper's rule to every gate: if the inputs of a gate do
/// not have identical minlevels, every input whose minlevel is not
/// minimal for that gate gets 0 added to its PC-set. The same rule is
/// applied to `monitored` as if the monitored nets were all inputs of a
/// single `PRINT` pseudo-gate — and, beyond the paper's minimum, *every*
/// monitored net gets a zero so that a complete time-0..=depth history
/// can always be reconstructed for it.
///
/// Primary inputs and constant outputs already contain 0 and are
/// reported as non-retaining (their time-0 variables are written by the
/// input/constant initialization, not by a retention copy).
pub fn insert_zeros(netlist: &Netlist, sets: &mut PcSets, monitored: &[NetId]) -> ZeroInsertion {
    let mut retains = vec![false; netlist.net_count()];

    // The rule compares the *original* minlevels (the paper's Fig. 3).
    // Reading minima back from the sets being mutated would cascade: a
    // zero inserted into one net would make sibling inputs of later
    // gates look late and retain needlessly, order-dependently.
    let minlevels = levelize(netlist)
        .expect("PC-sets exist, so the netlist already levelized")
        .net_minlevel;

    let mark = |sets: &mut PcSets, retains: &mut Vec<bool>, net: NetId| {
        if netlist.driver(net).is_some() && !sets.net[net].contains(0) {
            sets.net[net].insert(0);
            retains[net] = true;
        }
    };

    for gid in netlist.gate_ids() {
        let gate = netlist.gate(gid);
        let Some(min) = gate.inputs.iter().map(|&n| minlevels[n]).min() else {
            continue; // constant generator: no inputs
        };
        for &input in &gate.inputs {
            if minlevels[input] > min {
                mark(&mut *sets, &mut retains, input);
            }
        }
    }

    for &net in monitored {
        mark(&mut *sets, &mut retains, net);
    }

    ZeroInsertion { retains }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uds_netlist::{GateKind, NetlistBuilder};

    /// The paper's Fig. 4 network.
    fn fig4() -> (Netlist, NetId, NetId) {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let bn = b.input("B");
        let c = b.input("C");
        let d = b.gate(GateKind::And, &[a, bn], "D").unwrap();
        let e = b.gate(GateKind::And, &[d, c], "E").unwrap();
        b.output(e);
        (b.finish().unwrap(), d, e)
    }

    #[test]
    fn fig4_d_gets_zero_added() {
        // E's gate reads D (minlevel 1) and C (minlevel 0): D must retain.
        let (nl, d, e) = fig4();
        let mut sets = PcSets::compute(&nl).unwrap();
        let inserted = insert_zeros(&nl, &mut sets, &[e]);
        assert!(inserted.retains[d]);
        assert_eq!(sets.net[d].times(), &[0, 1]);
        // E is monitored, so it also retains (our conservative extension).
        assert!(inserted.retains[e]);
        assert_eq!(sets.net[e].times(), &[0, 1, 2]);
        assert_eq!(inserted.retained_count(), 2);
    }

    #[test]
    fn equal_minlevels_insert_nothing() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let c = b.input("C");
        let x = b.gate(GateKind::Not, &[a], "X").unwrap();
        let y = b.gate(GateKind::Not, &[c], "Y").unwrap();
        let z = b.gate(GateKind::And, &[x, y], "Z").unwrap();
        b.output(z);
        let nl = b.finish().unwrap();
        let mut sets = PcSets::compute(&nl).unwrap();
        let inserted = insert_zeros(&nl, &mut sets, &[]);
        assert_eq!(inserted.retained_count(), 0);
        assert_eq!(sets.net[x].times(), &[1]);
    }

    #[test]
    fn primary_inputs_never_marked_retaining() {
        let (nl, _, e) = fig4();
        let mut sets = PcSets::compute(&nl).unwrap();
        let inserted = insert_zeros(&nl, &mut sets, &[e]);
        for &pi in nl.primary_inputs() {
            assert!(!inserted.retains[pi]);
            assert_eq!(sets.net[pi].times(), &[0]);
        }
    }

    #[test]
    fn monitored_net_with_minimal_min_still_gets_zero() {
        // Our conservative extension: every monitored net retains.
        let (nl, d, _) = fig4();
        let mut sets = PcSets::compute(&nl).unwrap();
        let inserted = insert_zeros(&nl, &mut sets, &[d]);
        assert!(inserted.retains[d]);
    }

    #[test]
    fn idempotent_on_nets_already_containing_zero() {
        let (nl, d, e) = fig4();
        let mut sets = PcSets::compute(&nl).unwrap();
        insert_zeros(&nl, &mut sets, &[e]);
        let before = sets.clone();
        let second = insert_zeros(&nl, &mut sets, &[e]);
        assert_eq!(sets, before);
        assert_eq!(second.retained_count(), 0);
        let _ = d;
    }
}
