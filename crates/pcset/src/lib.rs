//! The **PC-set method** of unit-delay compiled simulation.
//!
//! Section 2 of Maurer's *"Two New Techniques for Unit-Delay Compiled
//! Simulation"* (DAC 1990). The key idea (Lemma 1 of the paper): *the
//! value of a net is permitted to change at time `t` if and only if there
//! is a path of length `t` between the net and the primary inputs*. The
//! set of such times is the net's **PC-set** (potential-change set).
//!
//! Given the PC-sets, a compiler generates one variable per (net, time)
//! pair and one straight-line gate evaluation per element of each gate's
//! PC-set — no event queue, no tests, no branches. Executing the program
//! once per input vector produces the complete unit-delay time history of
//! the vector.
//!
//! The pipeline:
//!
//! 1. [`PcSets::compute`] — the worklist algorithm of §2;
//! 2. [`zero_insert::insert_zeros`] — mark nets that must retain their
//!    previous-vector value and extend their PC-sets with element 0;
//! 3. [`PcSetSimulator::compile`] — allocate variables, generate the
//!    straight-line program, and execute it per vector;
//! 4. [`codegen_c::emit`] — the same program as compilable C text,
//!    exactly the code of the paper's Fig. 4.
//!
//! The executor is word-parallel: each call carries 64 independent input
//! *streams* (bit `k` of every word belongs to stream `k`), which is the
//! "bit-parallel simulation of multiple input vectors" the paper notes
//! the PC-set method is amenable to (its advantage over the parallel
//! technique).
//!
//! # Example
//!
//! ```
//! use uds_netlist::{NetlistBuilder, GateKind};
//! use uds_pcset::PcSetSimulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Fig. 4 network: D = A & B; E = D & C.
//! let mut b = NetlistBuilder::new();
//! let a = b.input("A");
//! let bn = b.input("B");
//! let c = b.input("C");
//! let d = b.gate(GateKind::And, &[a, bn], "D")?;
//! let e = b.gate(GateKind::And, &[d, c], "E")?;
//! b.output(e);
//! let nl = b.finish()?;
//!
//! let mut sim = PcSetSimulator::compile(&nl)?;
//! sim.simulate_vector(&[true, true, true]);
//! assert_eq!(sim.final_value(e), true);
//! // The full unit-delay history of E for this vector:
//! let history = sim.history(e).expect("E is monitored");
//! assert_eq!(history.len() as u32, sim.depth() + 1);
//! # Ok(())
//! # }
//! ```

pub mod codegen_c;
mod pcset;
mod program;
mod simulator;
pub mod zero_insert;

pub use pcset::{PcSet, PcSets};
pub use simulator::{CompileError, PcSetSimulator, ProgramStats};
