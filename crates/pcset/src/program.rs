//! The straight-line program representation and its executor.
//!
//! A compiled PC-set simulation is a flat list of fixed-shape operations
//! over a dense `u64` arena — the in-process equivalent of the generated
//! C of the paper's Fig. 4. There is no scheduling and no branching in
//! the op stream: executing a vector is one pass over `init` (retention
//! copies), the primary-input stores, and `ops` (gate simulations).
//!
//! Every arena word carries 64 independent simulation *streams* (bit `k`
//! belongs to stream `k`), giving the data-parallel multi-vector mode the
//! paper credits the PC-set method with.

use uds_netlist::GateKind;

/// One gate simulation: `arena[dst] = kind(arena[operands...])`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct GateOp {
    pub kind: GateKind,
    pub dst: u32,
    pub first_operand: u32,
    pub operand_count: u32,
}

/// One retention copy: `arena[dst] = arena[src]` (move the final value of
/// the previous vector into the time-0 variable).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct CopyOp {
    pub dst: u32,
    pub src: u32,
}

/// A complete compiled PC-set program.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub(crate) struct Program {
    /// Retention copies, executed first (they read previous-vector state).
    pub init: Vec<CopyOp>,
    /// Arena slots of the time-0 variable of each primary input.
    pub input_slots: Vec<u32>,
    /// Gate simulations in levelized order.
    pub ops: Vec<GateOp>,
    /// Shared operand pool referenced by [`GateOp`].
    pub operands: Vec<u32>,
    /// Total arena slots.
    pub slot_count: usize,
}

impl Program {
    /// Executes one vector (64 parallel streams; `inputs[i]` carries the
    /// stream bits for primary input `i`).
    ///
    /// # Panics
    ///
    /// Debug-asserts that `inputs` matches the input count and `arena`
    /// the slot count; release builds index-check like any slice access.
    pub fn run(&self, arena: &mut [u64], inputs: &[u64]) {
        debug_assert_eq!(inputs.len(), self.input_slots.len());
        debug_assert_eq!(arena.len(), self.slot_count);

        self.run_prologue(arena, inputs);
        for op in &self.ops {
            self.exec_op(arena, op);
        }
    }

    /// The per-vector prologue of [`Program::run`]: retention copies
    /// followed by the primary-input stores. Split out so the leveled
    /// profiling executor can time it as level-0 work; `run` itself
    /// goes through here too, keeping the two paths one implementation.
    pub(crate) fn run_prologue(&self, arena: &mut [u64], inputs: &[u64]) {
        for copy in &self.init {
            arena[copy.dst as usize] = arena[copy.src as usize];
        }
        for (&slot, &word) in self.input_slots.iter().zip(inputs) {
            arena[slot as usize] = word;
        }
    }

    /// Executes the gate ops in `start..end` — one compile-time level
    /// segment of the op stream. `run` is exactly `run_prologue` plus
    /// `run_op_range(0..ops.len())`.
    pub(crate) fn run_op_range(&self, arena: &mut [u64], start: usize, end: usize) {
        for op in &self.ops[start..end] {
            self.exec_op(arena, op);
        }
    }

    #[inline(always)]
    fn exec_op(&self, arena: &mut [u64], op: &GateOp) {
        let operands = &self.operands
            [op.first_operand as usize..(op.first_operand + op.operand_count) as usize];
        let value = match op.kind {
            GateKind::And => operands
                .iter()
                .fold(!0u64, |acc, &s| acc & arena[s as usize]),
            GateKind::Nand => !operands
                .iter()
                .fold(!0u64, |acc, &s| acc & arena[s as usize]),
            GateKind::Or => operands
                .iter()
                .fold(0u64, |acc, &s| acc | arena[s as usize]),
            GateKind::Nor => !operands
                .iter()
                .fold(0u64, |acc, &s| acc | arena[s as usize]),
            GateKind::Xor => operands
                .iter()
                .fold(0u64, |acc, &s| acc ^ arena[s as usize]),
            GateKind::Xnor => !operands
                .iter()
                .fold(0u64, |acc, &s| acc ^ arena[s as usize]),
            GateKind::Not => !arena[operands[0] as usize],
            GateKind::Buf => arena[operands[0] as usize],
            GateKind::Const0 => 0,
            GateKind::Const1 => !0,
            GateKind::Dff => unreachable!("sequential gates are rejected at compile time"),
        };
        arena[op.dst as usize] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_executes_copies_inputs_then_ops() {
        // Hand-built program: two slots a(0), b(1); c(2) = a AND b;
        // a is "retained" from c for demonstration.
        let program = Program {
            init: vec![CopyOp { dst: 0, src: 2 }],
            input_slots: vec![1],
            ops: vec![GateOp {
                kind: GateKind::And,
                dst: 2,
                first_operand: 0,
                operand_count: 2,
            }],
            operands: vec![0, 1],
            slot_count: 3,
        };
        let mut arena = vec![0u64; 3];
        arena[2] = !0; // previous final value of c
        program.run(&mut arena, &[!0]);
        assert_eq!(arena[0], !0, "copy ran before ops");
        assert_eq!(arena[2], !0, "AND of retained 1 and input 1");

        program.run(&mut arena, &[0]);
        assert_eq!(arena[2], 0);
        program.run(&mut arena, &[!0]);
        assert_eq!(arena[0], 0, "retention picked up the 0 from last run");
        assert_eq!(arena[2], 0);
    }

    #[test]
    fn streams_are_independent() {
        // c = XOR(a, b) on distinct bit lanes.
        let program = Program {
            init: vec![],
            input_slots: vec![0, 1],
            ops: vec![GateOp {
                kind: GateKind::Xor,
                dst: 2,
                first_operand: 0,
                operand_count: 2,
            }],
            operands: vec![0, 1],
            slot_count: 3,
        };
        let mut arena = vec![0u64; 3];
        program.run(&mut arena, &[0b1100, 0b1010]);
        assert_eq!(arena[2], 0b0110);
    }
}
