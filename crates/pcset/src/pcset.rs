//! PC-set computation: the worklist algorithm of the paper's §2.

use uds_netlist::{levelize, GateId, LevelizeError, NetId, Netlist};

/// The potential-change set of one net or gate: the sorted set of times
/// (in gate delays) at which its value is permitted to change, i.e. the
/// set of path lengths between it and the primary inputs.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct PcSet {
    /// Sorted, deduplicated times.
    times: Vec<u32>,
}

impl PcSet {
    /// The empty set.
    pub fn new() -> Self {
        PcSet::default()
    }

    /// The singleton `{0}` assigned to primary inputs and constants.
    pub fn zero() -> Self {
        PcSet { times: vec![0] }
    }

    /// Builds from any iterator of times (sorts and deduplicates).
    pub fn from_times(times: impl IntoIterator<Item = u32>) -> Self {
        let mut times: Vec<u32> = times.into_iter().collect();
        times.sort_unstable();
        times.dedup();
        PcSet { times }
    }

    /// The times, ascending.
    pub fn times(&self) -> &[u32] {
        &self.times
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the set is empty (only constant gates' PC-sets are).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Smallest element — the minlevel, for a net's final set.
    pub fn min(&self) -> Option<u32> {
        self.times.first().copied()
    }

    /// Largest element — the level, for a net's final set.
    pub fn max(&self) -> Option<u32> {
        self.times.last().copied()
    }

    /// Membership test.
    pub fn contains(&self, time: u32) -> bool {
        self.times.binary_search(&time).is_ok()
    }

    /// The largest element strictly smaller than `time` — the operand
    /// lookup of the paper's code generator ("searching the PC-sets of
    /// the input nets for the largest element that is strictly smaller
    /// than the PC-element for which code is being generated").
    pub fn largest_below(&self, time: u32) -> Option<u32> {
        match self.times.binary_search(&time) {
            Ok(0) | Err(0) => None,
            Ok(pos) | Err(pos) => Some(self.times[pos - 1]),
        }
    }

    /// The largest element less than or equal to `time` (history
    /// reconstruction: a net holds its value between potential changes).
    pub fn largest_at_or_below(&self, time: u32) -> Option<u32> {
        match self.times.binary_search(&time) {
            Ok(pos) => Some(self.times[pos]),
            Err(0) => None,
            Err(pos) => Some(self.times[pos - 1]),
        }
    }

    /// Inserts a single time (used by zero insertion).
    pub fn insert(&mut self, time: u32) {
        if let Err(pos) = self.times.binary_search(&time) {
            self.times.insert(pos, time);
        }
    }

    /// Set union.
    pub fn union(&self, other: &PcSet) -> PcSet {
        let mut merged = Vec::with_capacity(self.times.len() + other.times.len());
        let (mut i, mut j) = (0, 0);
        while i < self.times.len() && j < other.times.len() {
            let (a, b) = (self.times[i], other.times[j]);
            match a.cmp(&b) {
                std::cmp::Ordering::Less => {
                    merged.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(a);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.times[i..]);
        merged.extend_from_slice(&other.times[j..]);
        PcSet { times: merged }
    }

    /// A new set with every element incremented by one (a gate's delay).
    pub fn incremented(&self) -> PcSet {
        PcSet {
            times: self.times.iter().map(|&t| t + 1).collect(),
        }
    }
}

impl std::fmt::Display for PcSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.times.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

/// PC-sets for every net and gate of a netlist.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PcSets {
    /// Per-net PC-sets, indexed by [`NetId`].
    pub net: Vec<PcSet>,
    /// Per-gate PC-sets, indexed by [`GateId`].
    pub gate: Vec<PcSet>,
}

impl PcSets {
    /// Runs the PC-set algorithm of §2.
    ///
    /// Primary inputs, undriven nets and constant-generator outputs get
    /// `{0}`; a gate's set is the union of its inputs' sets incremented
    /// by one; a net's set is its driver's set.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] for cyclic or sequential netlists.
    ///
    /// # Example
    ///
    /// ```
    /// use uds_netlist::{NetlistBuilder, GateKind};
    /// use uds_pcset::PcSets;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// // Fig. 4: E is driven through paths of lengths 1 and 2.
    /// let mut b = NetlistBuilder::new();
    /// let a = b.input("A");
    /// let bn = b.input("B");
    /// let c = b.input("C");
    /// let d = b.gate(GateKind::And, &[a, bn], "D")?;
    /// let e = b.gate(GateKind::And, &[d, c], "E")?;
    /// b.output(e);
    /// let nl = b.finish()?;
    /// let sets = PcSets::compute(&nl)?;
    /// assert_eq!(sets.net[d].times(), &[1]);
    /// assert_eq!(sets.net[e].times(), &[1, 2]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn compute(netlist: &Netlist) -> Result<PcSets, LevelizeError> {
        // The levelization pass provides the topological gate order (and
        // rejects cycles / flip-flops); PC-sets then propagate in one
        // sweep, which is exactly the paper's count-driven worklist with
        // the queue order fixed.
        let levels = levelize(netlist)?;

        let mut net: Vec<PcSet> = netlist
            .net_ids()
            .map(|n| {
                if netlist.driver(n).is_none() {
                    PcSet::zero()
                } else {
                    PcSet::new()
                }
            })
            .collect();
        let mut gate: Vec<PcSet> = vec![PcSet::new(); netlist.gate_count()];

        for &gid in &levels.topo_gates {
            let g = netlist.gate(gid);
            let mut union = PcSet::new();
            for &input in &g.inputs {
                union = union.union(&net[input]);
            }
            let set = union.incremented();
            // Step 4b of the paper: a net whose union is empty (a
            // constant generator's output) gets {0}.
            net[g.output] = if set.is_empty() {
                PcSet::zero()
            } else {
                set.clone()
            };
            gate[gid.index()] = set;
        }

        Ok(PcSets { net, gate })
    }

    /// Total variables the PC-set compiler will allocate (one per element
    /// of every net's PC-set), before zero insertion.
    pub fn variable_count(&self) -> usize {
        self.net.iter().map(PcSet::len).sum()
    }

    /// Total gate simulations the compiler will generate (one per element
    /// of every gate's PC-set).
    pub fn gate_simulation_count(&self) -> usize {
        self.gate.iter().map(PcSet::len).sum()
    }

    /// The PC-set of a net.
    pub fn of_net(&self, net: NetId) -> &PcSet {
        &self.net[net]
    }

    /// The PC-set of a gate.
    pub fn of_gate(&self, gate: GateId) -> &PcSet {
        &self.gate[gate.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uds_netlist::{levelize, GateKind, NetlistBuilder};

    /// Builds the network of the paper's Fig. 2/Fig. 3: a 3-input gate
    /// whose inputs have PC-sets {2}, {3}, {4}.
    fn fig2() -> (uds_netlist::Netlist, NetId) {
        let mut b = NetlistBuilder::new();
        let i = b.input("i");
        let mut chains = Vec::new();
        for len in [2u32, 3, 4] {
            let mut net = i;
            for step in 0..len {
                net = b
                    .gate(GateKind::Buf, &[net], format!("c{len}_{step}"))
                    .unwrap();
            }
            chains.push(net);
        }
        let out = b.gate(GateKind::And, &chains, "out").unwrap();
        b.output(out);
        (b.finish().unwrap(), out)
    }

    #[test]
    fn fig2_gate_has_pc_set_3_4_5() {
        let (nl, out) = fig2();
        let sets = PcSets::compute(&nl).unwrap();
        assert_eq!(sets.net[out].times(), &[3, 4, 5]);
    }

    #[test]
    fn primary_inputs_get_zero() {
        let (nl, _) = fig2();
        let sets = PcSets::compute(&nl).unwrap();
        for &pi in nl.primary_inputs() {
            assert_eq!(sets.net[pi].times(), &[0]);
        }
    }

    #[test]
    fn constant_gate_output_gets_zero() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let k = b.gate(GateKind::Const1, &[], "k").unwrap();
        let y = b.gate(GateKind::Or, &[a, k], "y").unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        let sets = PcSets::compute(&nl).unwrap();
        assert_eq!(sets.net[k].times(), &[0]);
        assert_eq!(sets.net[y].times(), &[1]);
        // The constant gate itself has an empty PC-set: no simulations.
        let kg = nl.driver(k).unwrap();
        assert!(sets.gate[kg.index()].is_empty());
    }

    #[test]
    fn pc_set_bounds_match_levels() {
        // min = minlevel, max = level, size <= level - minlevel + 1
        // (the paper's §2 invariants), on a nontrivial circuit.
        let nl = uds_netlist::generators::iscas::Iscas85::C432.build();
        let sets = PcSets::compute(&nl).unwrap();
        let levels = levelize(&nl).unwrap();
        for net in nl.net_ids() {
            let set = &sets.net[net];
            assert_eq!(set.min().unwrap(), levels.net_minlevel[net], "{net}");
            assert_eq!(set.max().unwrap(), levels.net_level[net], "{net}");
            assert!(
                set.len() as u32 <= levels.net_level[net] - levels.net_minlevel[net] + 1,
                "{net}"
            );
        }
    }

    #[test]
    fn union_and_increment() {
        let a = PcSet::from_times([1, 3, 5]);
        let b = PcSet::from_times([2, 3, 4]);
        assert_eq!(a.union(&b).times(), &[1, 2, 3, 4, 5]);
        assert_eq!(a.incremented().times(), &[2, 4, 6]);
        assert_eq!(a.union(&PcSet::new()).times(), a.times());
    }

    #[test]
    fn largest_below_and_at_or_below() {
        let s = PcSet::from_times([0, 3, 7]);
        assert_eq!(s.largest_below(0), None);
        assert_eq!(s.largest_below(1), Some(0));
        assert_eq!(s.largest_below(3), Some(0));
        assert_eq!(s.largest_below(4), Some(3));
        assert_eq!(s.largest_below(100), Some(7));
        assert_eq!(s.largest_at_or_below(3), Some(3));
        assert_eq!(s.largest_at_or_below(2), Some(0));
        assert_eq!(PcSet::new().largest_at_or_below(9), None);
    }

    #[test]
    fn insert_keeps_order_and_dedups() {
        let mut s = PcSet::from_times([3, 7]);
        s.insert(0);
        s.insert(7);
        s.insert(5);
        assert_eq!(s.times(), &[0, 3, 5, 7]);
    }

    #[test]
    fn display_is_braced_list() {
        assert_eq!(PcSet::from_times([3, 7, 15]).to_string(), "{3,7,15}");
        assert_eq!(PcSet::new().to_string(), "{}");
    }

    #[test]
    fn repeated_pin_does_not_duplicate_times() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let y = b.gate(GateKind::Xor, &[a, a], "y").unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        let sets = PcSets::compute(&nl).unwrap();
        assert_eq!(sets.net[y].times(), &[1]);
    }

    #[test]
    fn counts_are_consistent() {
        let (nl, _) = fig2();
        let sets = PcSets::compute(&nl).unwrap();
        assert_eq!(
            sets.variable_count(),
            sets.net.iter().map(|s| s.len()).sum::<usize>()
        );
        assert!(sets.gate_simulation_count() >= nl.gate_count());
    }
}
