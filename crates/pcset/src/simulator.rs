//! The compiled PC-set simulator: compilation and execution.

use std::fmt;

use uds_netlist::limits::narrow_u32;
use uds_netlist::{
    levelize, static_profile, LevelProfile, LevelSegment, LevelTimer, LevelizeError, LimitExceeded,
    NetId, Netlist, NoopProbe, Probe, ProbeSpan, ResourceLimits, SegmentBuilder,
};

use crate::program::{CopyOp, GateOp, Program};
use crate::zero_insert::{insert_zeros, ZeroInsertion};
use crate::PcSets;

/// Error returned by [`PcSetSimulator::compile`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// The netlist cannot be levelized (cycle or flip-flop).
    Levelize(LevelizeError),
    /// A monitored net id is out of range for the netlist.
    UnknownMonitor,
    /// A resource budget was exceeded (depth, gates, estimated memory,
    /// deadline, or addressable-size arithmetic).
    Limit(LimitExceeded),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Levelize(err) => write!(f, "{err}"),
            CompileError::UnknownMonitor => write!(f, "monitored net does not exist"),
            CompileError::Limit(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Levelize(err) => Some(err),
            CompileError::UnknownMonitor => None,
            CompileError::Limit(err) => Some(err),
        }
    }
}

impl From<LevelizeError> for CompileError {
    fn from(err: LevelizeError) -> Self {
        CompileError::Levelize(err)
    }
}

impl From<LimitExceeded> for CompileError {
    fn from(err: LimitExceeded) -> Self {
        CompileError::Limit(err)
    }
}

/// Size metrics of a compiled PC-set program — the quantities behind the
/// paper's code-size remarks (">100,000 lines for c6288").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProgramStats {
    /// Variables allocated (one per (net, PC-element), after zero
    /// insertion).
    pub variables: usize,
    /// Gate simulations generated (one per element of every gate's
    /// PC-set).
    pub gate_simulations: usize,
    /// Retention copies executed per vector.
    pub retention_copies: usize,
}

/// A compiled unit-delay simulator using the PC-set method (§2).
///
/// Compile once with [`PcSetSimulator::compile`], then call
/// [`PcSetSimulator::simulate_vector`] per input vector; the complete
/// unit-delay history of every monitored net is available afterwards via
/// [`PcSetSimulator::history`].
///
/// All state words carry 64 independent streams; see
/// [`PcSetSimulator::simulate_streams`].
#[derive(Clone, Debug)]
pub struct PcSetSimulator {
    program: Program,
    arena: Vec<u64>,
    /// Per net: PC-set times after zero insertion (slots are contiguous
    /// per net, in time order, starting at `net_base`).
    net_times: Vec<Vec<u32>>,
    net_base: Vec<u32>,
    retention: ZeroInsertion,
    monitored: Vec<NetId>,
    input_count: usize,
    depth: u32,
    initial_arena: Vec<u64>,
    /// Run-length level segments of the op stream in emission order
    /// (segment 0 is the zero-length level-0 prologue carrying the
    /// retention-copy/input-store static counts). Drives the leveled
    /// profiling executor; the plain path never reads it.
    level_segments: Vec<LevelSegment>,
}

impl PcSetSimulator {
    /// Compiles a combinational netlist, monitoring its primary outputs.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Levelize`] for cyclic/sequential netlists.
    pub fn compile(netlist: &Netlist) -> Result<Self, CompileError> {
        Self::compile_with_monitors(netlist, netlist.primary_outputs())
    }

    /// Like [`PcSetSimulator::compile`], but enforcing a resource budget:
    /// depth, gate, input, and estimated-memory ceilings are checked
    /// before allocation, and slot arithmetic is overflow-checked.
    /// Violations surface as [`CompileError::Limit`].
    pub fn compile_with_limits(
        netlist: &Netlist,
        limits: &ResourceLimits,
    ) -> Result<Self, CompileError> {
        Self::compile_inner(netlist, netlist.primary_outputs(), limits, &NoopProbe)
    }

    /// Compiles with an explicit set of monitored nets (the paper's
    /// `PRINT` pseudo-gate inputs). Monitored nets always have a full
    /// reconstructible history; other nets only expose their final value
    /// and their values at their own PC times.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Levelize`] for cyclic/sequential netlists
    /// or [`CompileError::UnknownMonitor`] for out-of-range ids.
    pub fn compile_with_monitors(
        netlist: &Netlist,
        monitored: &[NetId],
    ) -> Result<Self, CompileError> {
        Self::compile_inner(netlist, monitored, &ResourceLimits::unlimited(), &NoopProbe)
    }

    /// Like [`PcSetSimulator::compile_with_limits`], but reporting
    /// compile phases and the paper's static metrics (PC-set size
    /// distribution, zero insertions, program size) through `probe`.
    /// See DESIGN.md §11 for the emitted span and gauge names.
    pub fn compile_probed(
        netlist: &Netlist,
        limits: &ResourceLimits,
        probe: &dyn Probe,
    ) -> Result<Self, CompileError> {
        Self::compile_inner(netlist, netlist.primary_outputs(), limits, probe)
    }

    /// [`PcSetSimulator::compile_with_monitors`] under a resource budget
    /// and with compile phases reported through `probe` — the fully
    /// general constructor. The activity profiler monitors every net so
    /// each one's history (and therefore its toggle count) exists.
    pub fn compile_probed_with_monitors(
        netlist: &Netlist,
        monitored: &[NetId],
        limits: &ResourceLimits,
        probe: &dyn Probe,
    ) -> Result<Self, CompileError> {
        Self::compile_inner(netlist, monitored, limits, probe)
    }

    fn compile_inner(
        netlist: &Netlist,
        monitored: &[NetId],
        limits: &ResourceLimits,
        probe: &dyn Probe,
    ) -> Result<Self, CompileError> {
        if monitored.iter().any(|&n| n.index() >= netlist.net_count()) {
            return Err(CompileError::UnknownMonitor);
        }
        let levels = {
            let _span = ProbeSpan::new(probe, "pcset.levelize");
            levelize(netlist)?
        };
        limits.check_depth(levels.depth)?;
        limits.check_gates(netlist.gate_count())?;
        limits.check_inputs(netlist.primary_inputs().len())?;
        limits.check_deadline()?;
        let mut sets = {
            let _span = ProbeSpan::new(probe, "pcset.sets");
            PcSets::compute(netlist)?
        };
        let retention = {
            let _span = ProbeSpan::new(probe, "pcset.zero-insert");
            insert_zeros(netlist, &mut sets, monitored)
        };

        // Fig. 4's static picture: the PC-set size distribution after
        // zero insertion, and how many nets retain across vectors.
        let (mut max_set, mut total_set) = (0u64, 0u64);
        for net in netlist.net_ids() {
            let size = sets.net[net].len() as u64;
            max_set = max_set.max(size);
            total_set += size;
        }
        probe.gauge("pcset.set_size.nets", netlist.net_count() as u64);
        probe.gauge("pcset.set_size.max", max_set);
        probe.gauge("pcset.set_size.total", total_set);
        probe.gauge("pcset.zero_insertions", retention.retained_count() as u64);
        probe.gauge("pcset.depth", u64::from(levels.depth));

        let _codegen_span = ProbeSpan::new(probe, "pcset.codegen");

        // Slot allocation: contiguous per net, ascending time.
        let mut net_base = Vec::with_capacity(netlist.net_count());
        let mut slot_count: u32 = 0;
        for net in netlist.net_ids() {
            net_base.push(slot_count);
            slot_count = narrow_u32(slot_count as u64 + sets.net[net].len() as u64)?;
        }
        // One u64 word per slot, both live and power-up copies.
        limits.check_memory((slot_count as u64).saturating_mul(16))?;
        limits.check_deadline()?;
        let slot_of = |net: NetId, time: u32| -> u32 {
            let idx = sets.net[net]
                .times()
                .binary_search(&time)
                .expect("slot lookup for a time in the PC-set");
            net_base[net.index()] + idx as u32
        };

        // Retention copies: time-0 slot <- final (max-time) slot.
        let mut init = Vec::with_capacity(retention.retained_count());
        for net in netlist.net_ids() {
            if retention.retains[net] {
                let max = sets.net[net].max().expect("retaining net is nonempty");
                init.push(CopyOp {
                    dst: slot_of(net, 0),
                    src: slot_of(net, max),
                });
            }
        }

        let input_slots: Vec<u32> = netlist
            .primary_inputs()
            .iter()
            .map(|&pi| slot_of(pi, 0))
            .collect();

        // Gate simulations: levelized order; one op per PC element of the
        // gate; operands use each input's largest PC element strictly
        // below the element being generated (Fig. 4).
        let mut ops = Vec::new();
        let mut operands = Vec::new();
        // Level segments ride along in emission order (topo_gates is a
        // worklist order, *not* sorted by level, so runs of one level
        // are recorded rather than assumed). Segment 0 is the level-0
        // prologue: retention copies plus input stores, zero gate ops.
        let mut segments = SegmentBuilder::new();
        segments.emit(
            0,
            0,
            (init.len() + input_slots.len()) as u64,
            0,
            (init.len() * 2 + input_slots.len()) as u64 * 8,
        );
        for &gid in &levels.topo_gates {
            let gate = netlist.gate(gid);
            let level = levels.gate_level[gid.index()] as usize;
            let emitted = sets.gate[gid.index()].times().len();
            segments.emit(
                level,
                emitted,
                emitted as u64,
                emitted as u64,
                (emitted * (gate.inputs.len() + 1)) as u64 * 8,
            );
            for &t in sets.gate[gid.index()].times() {
                let first_operand = narrow_u32(operands.len() as u64)?;
                for &input in &gate.inputs {
                    let src_time = sets.net[input]
                        .largest_below(t)
                        .expect("zero insertion guarantees an operand");
                    operands.push(slot_of(input, src_time));
                }
                ops.push(GateOp {
                    kind: gate.kind,
                    dst: slot_of(gate.output, t),
                    first_operand,
                    operand_count: gate.inputs.len() as u32,
                });
            }
        }
        let level_segments = segments.finish();
        // The static per-level instruction distribution (one sample per
        // level) — the measured-vs-static axis of hotspot reports.
        for cost in &static_profile(&level_segments).levels {
            probe.record("pcset.level_instructions", cost.word_ops);
        }

        let program = Program {
            init,
            input_slots,
            ops,
            operands,
            slot_count: slot_count as usize,
        };
        // The quantities behind the paper's Fig. 4 / code-size remarks.
        probe.gauge("pcset.variables", program.slot_count as u64);
        probe.gauge("pcset.gate_simulations", program.ops.len() as u64);
        probe.gauge("pcset.retention_copies", program.init.len() as u64);

        // Consistent power-up state: the circuit settled under all-0
        // inputs, broadcast to every slot of each net and all 64 streams.
        let mut settled = vec![0u64; netlist.net_count()];
        for &gid in &levels.topo_gates {
            let gate = netlist.gate(gid);
            let bits: Vec<u64> = gate.inputs.iter().map(|&n| settled[n]).collect();
            settled[gate.output] = gate.kind.eval_words(&bits);
        }
        let mut initial_arena = vec![0u64; slot_count as usize];
        for net in netlist.net_ids() {
            let base = net_base[net.index()] as usize;
            for k in 0..sets.net[net].len() {
                initial_arena[base + k] = settled[net];
            }
        }

        Ok(PcSetSimulator {
            arena: initial_arena.clone(),
            initial_arena,
            net_times: sets.net.iter().map(|s| s.times().to_vec()).collect(),
            net_base,
            retention,
            monitored: monitored.to_vec(),
            input_count: netlist.primary_inputs().len(),
            depth: levels.depth,
            program,
            level_segments,
        })
    }

    /// Circuit depth; histories cover times `0..=depth()`.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The monitored nets.
    pub fn monitored(&self) -> &[NetId] {
        &self.monitored
    }

    /// Program size metrics.
    pub fn stats(&self) -> ProgramStats {
        ProgramStats {
            variables: self.program.slot_count,
            gate_simulations: self.program.ops.len(),
            retention_copies: self.program.init.len(),
        }
    }

    /// Restores the consistent power-up state (circuit settled under
    /// all-zero inputs).
    pub fn reset(&mut self) {
        self.arena.copy_from_slice(&self.initial_arena);
    }

    /// Replaces the power-up state with an arbitrary stable state
    /// (`stable` is parallel to the netlist's nets), so a simulation can
    /// resume mid-stream as if every earlier vector had been applied.
    /// Only the retained final bits influence later vectors, but every
    /// slot is filled for consistency with [`Self::reset`]'s invariant.
    ///
    /// # Panics
    ///
    /// Panics if `stable.len()` differs from the net count.
    pub fn seed_stable(&mut self, stable: &[bool]) {
        assert_eq!(
            stable.len(),
            self.net_times.len(),
            "seed length must match the net count"
        );
        for (net, &value) in stable.iter().enumerate() {
            let base = self.net_base[net] as usize;
            let fill = if value { !0u64 } else { 0 };
            for slot in &mut self.arena[base..base + self.net_times[net].len()] {
                *slot = fill;
            }
        }
    }

    /// Simulates one input vector (all 64 streams carry the same bits).
    ///
    /// `inputs` is parallel to the netlist's primary inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn simulate_vector(&mut self, inputs: &[bool]) {
        assert_eq!(
            inputs.len(),
            self.input_count,
            "input vector length must match the primary input count"
        );
        let words: Vec<u64> = inputs.iter().map(|&b| if b { !0u64 } else { 0 }).collect();
        self.program.run(&mut self.arena, &words);
    }

    /// As [`PcSetSimulator::simulate_vector`], but attributing wall
    /// time and work to netlist levels in `profile` (level 0 holds the
    /// retention/input prologue). Executes exactly the same ops in
    /// exactly the same order as the plain path — the op stream is
    /// walked in compile-time level segments, with one amortized clock
    /// read per ~4k ops (see [`uds_netlist::levelprof`]).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn simulate_vector_leveled(&mut self, inputs: &[bool], profile: &mut LevelProfile) {
        assert_eq!(
            inputs.len(),
            self.input_count,
            "input vector length must match the primary input count"
        );
        let mut timer = LevelTimer::new(profile);
        let words: Vec<u64> = inputs.iter().map(|&b| if b { !0u64 } else { 0 }).collect();
        self.program.run_prologue(&mut self.arena, &words);
        for segment in &self.level_segments {
            self.program
                .run_op_range(&mut self.arena, segment.start, segment.end);
            timer.segment(
                segment.level,
                segment.word_ops,
                segment.gate_evals,
                segment.bytes_touched_est,
            );
        }
    }

    /// The static per-level cost model of the compiled program (zero
    /// `self_ns`): per-level generated instructions, gate simulations,
    /// and estimated state bytes — the paper's side of a
    /// measured-vs-static hotspot comparison.
    pub fn level_static_profile(&self) -> LevelProfile {
        static_profile(&self.level_segments)
    }

    /// Simulates one vector with a caller-supplied execution body: the
    /// inputs are broadcast to stream words exactly as
    /// [`Self::simulate_vector`] would, then `run` is handed the arena
    /// and the broadcast words instead of the interpreted program. The
    /// native engine uses this to route the step through compiled C
    /// while this simulator's arena stays the authoritative state.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn simulate_vector_with(&mut self, inputs: &[bool], run: impl FnOnce(&mut [u64], &[u64])) {
        assert_eq!(
            inputs.len(),
            self.input_count,
            "input vector length must match the primary input count"
        );
        let words: Vec<u64> = inputs.iter().map(|&b| if b { !0u64 } else { 0 }).collect();
        run(&mut self.arena, &words);
    }

    /// Simulates 64 independent vector streams at once: bit `k` of
    /// `inputs[i]` is the value of primary input `i` in stream `k`.
    /// Stream `k`'s retained values come from stream `k`'s previous call
    /// — 64 sequences advance in lockstep.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn simulate_streams(&mut self, inputs: &[u64]) {
        assert_eq!(
            inputs.len(),
            self.input_count,
            "input vector length must match the primary input count"
        );
        self.program.run(&mut self.arena, inputs);
    }

    /// The final settled value of any net for the last vector (stream 0).
    pub fn final_value(&self, net: NetId) -> bool {
        self.final_value_streams(net) & 1 != 0
    }

    /// Final settled value of `net` in all 64 streams.
    pub fn final_value_streams(&self, net: NetId) -> u64 {
        let times = &self.net_times[net.index()];
        let last = times.len() - 1;
        self.arena[(self.net_base[net.index()] as usize) + last]
    }

    /// The value of `net` at time `time` for the last vector (stream 0),
    /// or `None` if the net's history at that time is not reconstructible
    /// (the net is unmonitored and has no PC element at or below `time`).
    pub fn value_at(&self, net: NetId, time: u32) -> Option<bool> {
        let times = &self.net_times[net.index()];
        let idx = match times.binary_search(&time) {
            Ok(idx) => idx,
            Err(0) => return None,
            Err(idx) => idx - 1,
        };
        Some(self.arena[(self.net_base[net.index()] as usize) + idx] & 1 != 0)
    }

    /// The complete unit-delay history of `net` for the last vector
    /// (stream 0), at times `0..=depth()`. Returns `None` when time 0 is
    /// not reconstructible — monitor the net to guarantee it.
    pub fn history(&self, net: NetId) -> Option<Vec<bool>> {
        if self.net_times[net.index()].first() != Some(&0) {
            return None;
        }
        Some(
            (0..=self.depth)
                .map(|t| self.value_at(net, t).expect("time 0 exists"))
                .collect(),
        )
    }

    /// `true` if zero insertion forced this net to retain its previous
    /// vector's value.
    pub fn retains(&self, net: NetId) -> bool {
        self.retention.retains[net]
    }

    /// Internal accessors used by the C emitter.
    pub(crate) fn program(&self) -> &Program {
        &self.program
    }

    pub(crate) fn initial_arena(&self) -> &[u64] {
        &self.initial_arena
    }

    pub(crate) fn net_times(&self) -> &[Vec<u32>] {
        &self.net_times
    }

    pub(crate) fn net_base(&self) -> &[u32] {
        &self.net_base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uds_netlist::{GateKind, NetlistBuilder};

    /// The paper's Fig. 4 network.
    fn fig4() -> (Netlist, NetId, NetId, NetId, NetId, NetId) {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let bn = b.input("B");
        let c = b.input("C");
        let d = b.gate(GateKind::And, &[a, bn], "D").unwrap();
        let e = b.gate(GateKind::And, &[d, c], "E").unwrap();
        b.output(e);
        (b.finish().unwrap(), a, bn, c, d, e)
    }

    #[test]
    fn fig4_variable_allocation_matches_paper() {
        // Paper: variables A_0, B_0, C_0, D_0, D_1, E_1, E_2 — with our
        // conservative extension E (monitored) also gets E_0.
        let (nl, ..) = fig4();
        let sim = PcSetSimulator::compile(&nl).unwrap();
        let stats = sim.stats();
        assert_eq!(stats.variables, 8);
        // Gate sims: D at time 1; E at times 1 and 2 => 3 (as in Fig. 4).
        assert_eq!(stats.gate_simulations, 3);
        // Retention copies: D_0 = D_1 and E_0 = E_2.
        assert_eq!(stats.retention_copies, 2);
    }

    #[test]
    fn fig4_history_shows_the_intermediate_value() {
        let (nl, _, _, _, d, e) = fig4();
        let mut sim = PcSetSimulator::compile(&nl).unwrap();
        // Settle with A=1,B=1,C=1: D=1, E=1.
        sim.simulate_vector(&[true, true, true]);
        assert!(sim.final_value(d));
        assert!(sim.final_value(e));
        // Now drop A. D falls at time 1; E sees old D at time 1 (stays 1
        // at time 1 via E_1 = D_0 & C_0 = 1), then falls at time 2.
        sim.simulate_vector(&[false, true, true]);
        let history = sim.history(e).unwrap();
        assert_eq!(history, vec![true, true, false]);
        assert!(!sim.final_value(d));
    }

    #[test]
    fn unmonitored_net_history_is_none_but_final_value_works() {
        let (nl, _, _, _, d, _) = fig4();
        let mut sim = PcSetSimulator::compile(&nl).unwrap();
        sim.simulate_vector(&[true, true, false]);
        // D is not monitored but retains (feeds E alongside C)... so it
        // has a 0 element and history IS available.
        assert!(sim.history(d).is_some());
        assert!(sim.final_value(d));
    }

    #[test]
    fn value_at_none_before_first_pc_element() {
        // A net with PC-set {2} and no zero: nothing forces retention.
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let x = b.gate(GateKind::Not, &[a], "x").unwrap();
        let y = b.gate(GateKind::Not, &[x], "y").unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        // Monitor nothing to keep PC-sets pristine.
        let mut sim = PcSetSimulator::compile_with_monitors(&nl, &[]).unwrap();
        sim.simulate_vector(&[true]);
        assert_eq!(sim.value_at(x, 0), None);
        assert_eq!(sim.value_at(x, 1), Some(false));
        assert_eq!(sim.history(x), None);
    }

    #[test]
    fn reset_restores_power_up_state() {
        let (nl, .., e) = fig4();
        let mut sim = PcSetSimulator::compile(&nl).unwrap();
        sim.simulate_vector(&[true, true, true]);
        assert!(sim.final_value(e));
        sim.reset();
        assert!(!sim.final_value(e));
    }

    #[test]
    fn streams_run_64_sequences() {
        let (nl, .., e) = fig4();
        let mut sim = PcSetSimulator::compile(&nl).unwrap();
        // Stream k gets A=bit k of 0b10, B=1, C=1.
        sim.simulate_streams(&[0b10, !0, !0]);
        let finals = sim.final_value_streams(e);
        assert_eq!(finals & 1, 0, "stream 0: A=0 -> E=0");
        assert_eq!(finals >> 1 & 1, 1, "stream 1: A=1 -> E=1");
    }

    #[test]
    fn unknown_monitor_is_rejected() {
        let (nl, ..) = fig4();
        let bogus = NetId::from_index(nl.net_count());
        assert_eq!(
            PcSetSimulator::compile_with_monitors(&nl, &[bogus]).unwrap_err(),
            CompileError::UnknownMonitor
        );
    }

    #[test]
    fn cyclic_netlist_is_rejected() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let x = b.fresh_net();
        let y = b.fresh_net();
        b.gate_onto(GateKind::And, &[a, y], x).unwrap();
        b.gate_onto(GateKind::Not, &[x], y).unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        assert!(matches!(
            PcSetSimulator::compile(&nl),
            Err(CompileError::Levelize(_))
        ));
    }

    #[test]
    fn budget_violations_are_typed() {
        let (nl, ..) = fig4();
        let tight = ResourceLimits {
            max_gates: Some(1),
            ..ResourceLimits::unlimited()
        };
        match PcSetSimulator::compile_with_limits(&nl, &tight) {
            Err(CompileError::Limit(err)) => {
                assert_eq!(err.resource, uds_netlist::Resource::Gates);
                assert_eq!(err.needed, 2);
                assert_eq!(err.allowed, 1);
            }
            other => panic!("expected gate-count violation, got {other:?}"),
        }
        assert!(PcSetSimulator::compile_with_limits(&nl, &ResourceLimits::production()).is_ok());
    }

    #[test]
    fn constant_gates_hold_their_value() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let k = b.gate(GateKind::Const1, &[], "k").unwrap();
        let y = b.gate(GateKind::And, &[a, k], "y").unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        let mut sim = PcSetSimulator::compile(&nl).unwrap();
        sim.simulate_vector(&[true]);
        assert!(sim.final_value(y));
        sim.simulate_vector(&[false]);
        assert!(!sim.final_value(y));
        assert!(sim.final_value(k));
    }
}
