//! The perf regression gate: compares two `uds-bench-v1` documents.
//!
//! `tables compare OLD NEW` is how a throughput regression becomes a
//! CI failure instead of a silent merge. The engine:
//!
//! 1. parses both documents and rejects anything that is not
//!    `uds-bench-v1` for the same figure (a usage error, exit 2 — a
//!    schema bump must never be silently "compared");
//! 2. flattens each document's rows into cells keyed by
//!    **circuit × engine × jobs × word** (the `batched` array of the
//!    `parallel` figure contributes one cell per jobs level; the word
//!    width rides in from the calibration fingerprint);
//! 3. converts every timing cell to vectors/second (preferring the
//!    noise-aware trimmed mean, falling back to the median and then
//!    the min for documents recorded before those fields existed) and
//!    normalizes the NEW side by the **calibration ratio**
//!    `old_score / new_score`, so replaying a baseline on a faster or
//!    slower host does not masquerade as a perf change;
//! 4. classifies each cell — `improved` / `unchanged` / `regressed`
//!    beyond the tolerance for timings; deterministic static cells
//!    (op counts, shifts, widths, generated lines, activity factors)
//!    must match *exactly* and classify as `regressed` on any drift,
//!    because a drifting deterministic metric means the compiler
//!    changed without its baseline being regenerated; `missing` /
//!    `new` for coverage changes;
//! 5. renders a delta table and an optional `uds-bench-compare-v1`
//!    JSON report, and reports whether the gate passes: any
//!    `regressed` or `missing` cell fails it.

use std::collections::BTreeMap;
use std::fmt;

use uds_core::telemetry::json::Json;

use crate::table::Table;

/// Schema tag on the JSON delta report.
pub const COMPARE_SCHEMA: &str = "uds-bench-compare-v1";

/// Schema every compared document must carry.
pub const BENCH_SCHEMA: &str = "uds-bench-v1";

/// Default regression tolerance, percent of baseline throughput.
pub const DEFAULT_TOLERANCE_PCT: f64 = 10.0;

/// A usage-class comparison failure (malformed or mismatched inputs);
/// maps to exit 2, never a panic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompareError(pub String);

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CompareError {}

/// Identity of one comparable cell.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct CellKey {
    /// Circuit name (`c432`).
    pub circuit: String,
    /// Engine / column name inside the row (`parallel`, `pc_set`,
    /// `batched`, `trimming_word_ops`, …).
    pub engine: String,
    /// Worker count (1 except for `batched` sweep entries).
    pub jobs: u64,
    /// Arena word width the document was measured at.
    pub word: u64,
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} j{} w{}",
            self.circuit, self.engine, self.jobs, self.word
        )
    }
}

/// One measured value, unit-tagged.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Cell {
    /// A wall-clock measurement, already converted to vectors/second
    /// (higher is better). `seconds` keeps the raw statistic for the
    /// report.
    Timing {
        /// The noise-aware statistic the cell was derived from.
        seconds: f64,
        /// Throughput: document `vectors` / `seconds`.
        vectors_per_s: f64,
    },
    /// A deterministic integer metric (op counts, shifts, widths,
    /// emitted lines). Must reproduce exactly.
    Static(u64),
    /// A deterministic float metric (activity factor). Must reproduce
    /// to within float-rendering noise.
    Factor(f64),
}

/// One parsed `uds-bench-v1` document, flattened to comparable cells.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchDoc {
    /// Which figure the document reproduces.
    pub figure: String,
    /// Stimulus vectors per timing, when the figure is timed.
    pub vectors: Option<u64>,
    /// Calibration score of the recording host (None for documents
    /// recorded before the fingerprint existed → ratio 1).
    pub score: Option<f64>,
    /// Build profile of the recording binary, when fingerprinted.
    pub profile: Option<String>,
    /// The comparable cells.
    pub cells: BTreeMap<CellKey, Cell>,
}

/// The timing statistic of one timing object: trimmed mean when
/// present, else median, else min — so old baselines stay comparable.
fn timing_statistic(obj: &Json) -> Option<f64> {
    for key in ["trimmed_mean_s", "median_s", "min_s"] {
        if let Some(v) = obj.get(key).and_then(Json::as_f64) {
            return Some(v);
        }
    }
    None
}

/// Parses one `uds-bench-v1` document into comparable cells.
///
/// # Errors
///
/// [`CompareError`] on a missing/mismatched schema, a missing figure
/// name, or rows that are not objects with a `circuit` member.
pub fn parse_doc(doc: &Json) -> Result<BenchDoc, CompareError> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| CompareError("document has no `schema` member".into()))?;
    if schema != BENCH_SCHEMA {
        return Err(CompareError(format!(
            "schema mismatch: expected `{BENCH_SCHEMA}`, found `{schema}`"
        )));
    }
    let figure = doc
        .get("figure")
        .and_then(Json::as_str)
        .ok_or_else(|| CompareError("document has no `figure` member".into()))?
        .to_owned();
    let vectors = doc.get("vectors").and_then(Json::as_u64);
    let calibration = doc.get("calibration");
    let score = calibration
        .and_then(|c| c.get("score"))
        .and_then(Json::as_f64);
    let profile = calibration
        .and_then(|c| c.get("profile"))
        .and_then(Json::as_str)
        .map(str::to_owned);
    let word = calibration
        .and_then(|c| c.get("word_bits"))
        .and_then(Json::as_u64)
        .unwrap_or(32);

    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| CompareError("document has no `rows` array".into()))?;
    let mut cells = BTreeMap::new();
    let push_timing = |cells: &mut BTreeMap<CellKey, Cell>,
                       key: CellKey,
                       obj: &Json|
     -> Result<(), CompareError> {
        let seconds = timing_statistic(obj)
            .ok_or_else(|| CompareError(format!("timing cell `{key}` has no timing statistic")))?;
        // Throughput needs the vector count; a figure without one
        // (none today) would compare per-pass rates instead, which
        // is still consistent between two documents of the figure.
        let per = vectors.unwrap_or(1) as f64;
        let vectors_per_s = per / seconds.max(1e-12);
        cells.insert(
            key,
            Cell::Timing {
                seconds,
                vectors_per_s,
            },
        );
        Ok(())
    };
    for row in rows {
        let circuit = row
            .get("circuit")
            .and_then(Json::as_str)
            .ok_or_else(|| CompareError("row without a `circuit` member".into()))?
            .to_owned();
        let members = row
            .as_obj()
            .ok_or_else(|| CompareError("row is not an object".into()))?;
        for (name, value) in members {
            // Paper transcriptions are constants, not measurements.
            if name == "circuit" || name.starts_with("paper_") {
                continue;
            }
            let key = |engine: &str, jobs: u64| CellKey {
                circuit: circuit.clone(),
                engine: engine.to_owned(),
                jobs,
                word,
            };
            match value {
                Json::Obj(_) if value.get("min_s").is_some() => {
                    push_timing(&mut cells, key(name, 1), value)?;
                }
                Json::Arr(entries) if name == "batched" => {
                    for entry in entries {
                        let jobs = entry.get("jobs").and_then(Json::as_u64).ok_or_else(|| {
                            CompareError(format!("batched entry for {circuit} has no `jobs`"))
                        })?;
                        let timing = entry.get("timing").ok_or_else(|| {
                            CompareError(format!("batched entry for {circuit} has no `timing`"))
                        })?;
                        push_timing(&mut cells, key(name, jobs), timing)?;
                    }
                }
                Json::UInt(v) => {
                    cells.insert(key(name, 1), Cell::Static(*v));
                }
                Json::Float(v) => {
                    cells.insert(key(name, 1), Cell::Factor(*v));
                }
                _ => {} // unknown shapes are ignored, additively
            }
        }
    }
    Ok(BenchDoc {
        figure,
        vectors,
        score,
        profile,
        cells,
    })
}

/// How one cell moved between OLD and NEW.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CellClass {
    /// Normalized throughput rose beyond tolerance.
    Improved,
    /// Within tolerance (timings) or exactly equal (static cells).
    Unchanged,
    /// Normalized throughput fell beyond tolerance, or a deterministic
    /// metric drifted at all.
    Regressed,
    /// Present in OLD, absent in NEW — lost coverage fails the gate.
    Missing,
    /// Present only in NEW — new coverage is welcome.
    New,
}

impl CellClass {
    /// Stable label for tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            CellClass::Improved => "improved",
            CellClass::Unchanged => "unchanged",
            CellClass::Regressed => "regressed",
            CellClass::Missing => "missing",
            CellClass::New => "new",
        }
    }
}

/// One compared cell in the delta report.
#[derive(Clone, PartialEq, Debug)]
pub struct CellDelta {
    /// The cell's identity.
    pub key: CellKey,
    /// OLD-side value (None for `new` cells).
    pub old: Option<Cell>,
    /// NEW-side value (None for `missing` cells).
    pub new: Option<Cell>,
    /// NEW throughput after calibration normalization (timings only).
    pub normalized_new_vps: Option<f64>,
    /// Percent change of normalized throughput vs OLD (timings only;
    /// positive = faster).
    pub delta_pct: Option<f64>,
    /// The verdict.
    pub class: CellClass,
}

/// The full delta report of one `tables compare` run.
#[derive(Clone, PartialEq, Debug)]
pub struct CompareReport {
    /// The figure both documents reproduce.
    pub figure: String,
    /// Tolerance applied to timing deltas, percent.
    pub tolerance_pct: f64,
    /// `new_score / old_score` (1.0 when either side lacks the
    /// fingerprint). NEW throughputs are *divided* by this before
    /// comparison.
    pub calibration_ratio: f64,
    /// Every compared cell, sorted by key.
    pub cells: Vec<CellDelta>,
}

impl CompareReport {
    /// Cells carrying `class`.
    pub fn count(&self, class: CellClass) -> usize {
        self.cells.iter().filter(|c| c.class == class).count()
    }

    /// `true` when nothing regressed and nothing went missing — the CI
    /// gate condition.
    pub fn gate_passes(&self) -> bool {
        self.count(CellClass::Regressed) == 0 && self.count(CellClass::Missing) == 0
    }

    /// One-line summary (`improved 2, unchanged 37, regressed 1, …`).
    pub fn summary(&self) -> String {
        format!(
            "improved {}, unchanged {}, regressed {}, missing {}, new {}",
            self.count(CellClass::Improved),
            self.count(CellClass::Unchanged),
            self.count(CellClass::Regressed),
            self.count(CellClass::Missing),
            self.count(CellClass::New),
        )
    }

    /// The rendered human delta table plus summary and verdict lines.
    pub fn render_table(&self) -> String {
        let mut table = Table::new(&["cell", "old", "new(norm)", "delta", "class"]);
        let text = |cell: Option<Cell>| match cell {
            Some(Cell::Timing { vectors_per_s, .. }) => format!("{vectors_per_s:.0}/s"),
            Some(Cell::Static(v)) => v.to_string(),
            Some(Cell::Factor(v)) => format!("{v:.4}"),
            None => "-".to_owned(),
        };
        for delta in &self.cells {
            let old = text(delta.old);
            // Timing cells show the calibration-normalized NEW side —
            // the number the gate actually compared.
            let new = match (delta.normalized_new_vps, delta.new) {
                (Some(vps), _) => format!("{vps:.0}/s"),
                (None, cell) => text(cell),
            };
            let shift = match delta.delta_pct {
                Some(pct) => format!("{pct:+.1}%"),
                None => "-".to_owned(),
            };
            table.row(vec![
                delta.key.to_string(),
                old,
                new,
                shift,
                delta.class.name().to_owned(),
            ]);
        }
        let mut out = format!(
            "== compare {}: tolerance {:.0}%, calibration ratio {:.3} ==\n",
            self.figure, self.tolerance_pct, self.calibration_ratio
        );
        out.push_str(&table.render());
        out.push_str(&format!("{}\n", self.summary()));
        out.push_str(if self.gate_passes() {
            "gate: PASS\n"
        } else {
            "gate: FAIL (regressed or missing cells)\n"
        });
        out
    }

    /// The delta report as an `uds-bench-compare-v1` document.
    pub fn to_json(&self) -> Json {
        let cell_json = |cell: &Cell| match *cell {
            Cell::Timing {
                seconds,
                vectors_per_s,
            } => Json::obj([
                ("seconds", Json::Float(seconds)),
                ("vectors_per_s", Json::Float(vectors_per_s)),
            ]),
            Cell::Static(v) => Json::UInt(v),
            Cell::Factor(v) => Json::Float(v),
        };
        let cells = self
            .cells
            .iter()
            .map(|delta| {
                let mut members = vec![
                    ("circuit".to_owned(), Json::Str(delta.key.circuit.clone())),
                    ("engine".to_owned(), Json::Str(delta.key.engine.clone())),
                    ("jobs".to_owned(), Json::UInt(delta.key.jobs)),
                    ("word".to_owned(), Json::UInt(delta.key.word)),
                    ("class".to_owned(), Json::Str(delta.class.name().to_owned())),
                ];
                if let Some(old) = &delta.old {
                    members.push(("old".to_owned(), cell_json(old)));
                }
                if let Some(new) = &delta.new {
                    members.push(("new".to_owned(), cell_json(new)));
                }
                if let Some(vps) = delta.normalized_new_vps {
                    members.push(("normalized_new_vps".to_owned(), Json::Float(vps)));
                }
                if let Some(pct) = delta.delta_pct {
                    members.push(("delta_pct".to_owned(), Json::Float(pct)));
                }
                Json::Obj(members)
            })
            .collect();
        Json::obj([
            ("schema", Json::Str(COMPARE_SCHEMA.to_owned())),
            ("figure", Json::Str(self.figure.clone())),
            ("tolerance_pct", Json::Float(self.tolerance_pct)),
            ("calibration_ratio", Json::Float(self.calibration_ratio)),
            (
                "gate",
                Json::Str(if self.gate_passes() { "pass" } else { "fail" }.to_owned()),
            ),
            (
                "counts",
                Json::obj([
                    (
                        "improved",
                        Json::UInt(self.count(CellClass::Improved) as u64),
                    ),
                    (
                        "unchanged",
                        Json::UInt(self.count(CellClass::Unchanged) as u64),
                    ),
                    (
                        "regressed",
                        Json::UInt(self.count(CellClass::Regressed) as u64),
                    ),
                    ("missing", Json::UInt(self.count(CellClass::Missing) as u64)),
                    ("new", Json::UInt(self.count(CellClass::New) as u64)),
                ]),
            ),
            ("cells", Json::Arr(cells)),
        ])
    }
}

/// Relative equality for deterministic float metrics: exact modulo
/// the JSON render/parse round-trip.
fn factors_match(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Compares two parsed documents.
///
/// # Errors
///
/// [`CompareError`] when the documents reproduce different figures or
/// were recorded under different build profiles (debug vs release
/// timings are never comparable).
pub fn compare_docs(
    old: &BenchDoc,
    new: &BenchDoc,
    tolerance_pct: f64,
) -> Result<CompareReport, CompareError> {
    if old.figure != new.figure {
        return Err(CompareError(format!(
            "figure mismatch: OLD is `{}`, NEW is `{}`",
            old.figure, new.figure
        )));
    }
    if let (Some(old_profile), Some(new_profile)) = (&old.profile, &new.profile) {
        if old_profile != new_profile {
            return Err(CompareError(format!(
                "build profile mismatch: OLD is `{old_profile}`, NEW is `{new_profile}` \
                 (debug and release timings are not comparable)"
            )));
        }
    }
    let calibration_ratio = match (old.score, new.score) {
        (Some(old_score), Some(new_score)) if old_score > 0.0 && new_score > 0.0 => {
            new_score / old_score
        }
        _ => 1.0,
    };

    let mut cells = Vec::new();
    for (key, old_cell) in &old.cells {
        match new.cells.get(key) {
            None => cells.push(CellDelta {
                key: key.clone(),
                old: Some(*old_cell),
                new: None,
                normalized_new_vps: None,
                delta_pct: None,
                class: CellClass::Missing,
            }),
            Some(new_cell) => {
                let delta = match (old_cell, new_cell) {
                    (
                        Cell::Timing {
                            vectors_per_s: old_vps,
                            ..
                        },
                        Cell::Timing {
                            vectors_per_s: new_vps,
                            ..
                        },
                    ) => {
                        // Divide the machine out of the NEW side: on a
                        // 2× host, 2× raw throughput is "unchanged".
                        let normalized = new_vps / calibration_ratio;
                        let pct = 100.0 * (normalized - old_vps) / old_vps.max(1e-12);
                        let class = if pct < -tolerance_pct {
                            CellClass::Regressed
                        } else if pct > tolerance_pct {
                            CellClass::Improved
                        } else {
                            CellClass::Unchanged
                        };
                        CellDelta {
                            key: key.clone(),
                            old: Some(*old_cell),
                            new: Some(*new_cell),
                            normalized_new_vps: Some(normalized),
                            delta_pct: Some(pct),
                            class,
                        }
                    }
                    (Cell::Static(a), Cell::Static(b)) => CellDelta {
                        key: key.clone(),
                        old: Some(*old_cell),
                        new: Some(*new_cell),
                        normalized_new_vps: None,
                        delta_pct: None,
                        class: if a == b {
                            CellClass::Unchanged
                        } else {
                            CellClass::Regressed
                        },
                    },
                    (Cell::Factor(a), Cell::Factor(b)) => CellDelta {
                        key: key.clone(),
                        old: Some(*old_cell),
                        new: Some(*new_cell),
                        normalized_new_vps: None,
                        delta_pct: None,
                        class: if factors_match(*a, *b) {
                            CellClass::Unchanged
                        } else {
                            CellClass::Regressed
                        },
                    },
                    // A cell that changed *kind* is a schema drift the
                    // additive contract forbids: fail loudly.
                    _ => CellDelta {
                        key: key.clone(),
                        old: Some(*old_cell),
                        new: Some(*new_cell),
                        normalized_new_vps: None,
                        delta_pct: None,
                        class: CellClass::Regressed,
                    },
                };
                cells.push(delta);
            }
        }
    }
    for (key, new_cell) in &new.cells {
        if !old.cells.contains_key(key) {
            cells.push(CellDelta {
                key: key.clone(),
                old: None,
                new: Some(*new_cell),
                normalized_new_vps: None,
                delta_pct: None,
                class: CellClass::New,
            });
        }
    }
    cells.sort_by(|a, b| a.key.cmp(&b.key));
    Ok(CompareReport {
        figure: old.figure.clone(),
        tolerance_pct,
        calibration_ratio,
        cells,
    })
}

/// Parses and compares two rendered documents in one call.
///
/// # Errors
///
/// JSON syntax errors and every [`parse_doc`]/[`compare_docs`] error,
/// all usage-class.
pub fn compare_rendered(
    old_text: &str,
    new_text: &str,
    tolerance_pct: f64,
) -> Result<CompareReport, CompareError> {
    let parse = |label: &str, text: &str| -> Result<BenchDoc, CompareError> {
        let doc =
            Json::parse(text).map_err(|e| CompareError(format!("{label}: not valid JSON: {e}")))?;
        parse_doc(&doc).map_err(|e| CompareError(format!("{label}: {e}")))
    };
    compare_docs(
        &parse("OLD", old_text)?,
        &parse("NEW", new_text)?,
        tolerance_pct,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal fig-like document with one timed engine column and
    /// one static column.
    fn doc(figure: &str, vectors: u64, score: f64, seconds: f64, ops: u64) -> String {
        format!(
            r#"{{"schema":"uds-bench-v1","figure":"{figure}","vectors":{vectors},
               "calibration":{{"score":{score},"alu_mops":300.0,"mem_mops":12.0,
                               "cores":1,"profile":"release","word_bits":32}},
               "rows":[{{"circuit":"c432",
                         "parallel":{{"min_s":{seconds},"median_s":{seconds},
                                      "trimmed_mean_s":{seconds},"reps":3}},
                         "word_ops":{ops},
                         "paper_parallel_s":9.9}}]}}"#
        )
    }

    #[test]
    fn identical_documents_pass_with_all_unchanged() {
        let text = doc("fig19", 500, 1.0, 0.05, 1234);
        let report = compare_rendered(&text, &text, 10.0).unwrap();
        assert!(report.gate_passes());
        assert_eq!(report.count(CellClass::Unchanged), 2);
        assert_eq!(report.cells.len(), 2, "paper_* columns are skipped");
    }

    #[test]
    fn throughput_regression_beyond_tolerance_fails_the_gate() {
        let old = doc("fig19", 500, 1.0, 0.05, 1234);
        let new = doc("fig19", 500, 1.0, 0.08, 1234); // 60% slower
        let report = compare_rendered(&old, &new, 10.0).unwrap();
        assert!(!report.gate_passes());
        assert_eq!(report.count(CellClass::Regressed), 1);
        let cell = report
            .cells
            .iter()
            .find(|c| c.class == CellClass::Regressed)
            .unwrap();
        assert_eq!(cell.key.engine, "parallel");
        assert!(cell.delta_pct.unwrap() < -30.0);
    }

    #[test]
    fn noise_within_tolerance_is_unchanged() {
        let old = doc("fig19", 500, 1.0, 0.050, 7);
        let new = doc("fig19", 500, 1.0, 0.053, 7); // ~5.7% slower
        let report = compare_rendered(&old, &new, 10.0).unwrap();
        assert!(report.gate_passes());
        assert_eq!(report.count(CellClass::Unchanged), 2);
    }

    #[test]
    fn calibration_ratio_normalizes_host_speed_away() {
        // NEW host scores 2× and also ran 2× faster: unchanged.
        let old = doc("fig19", 500, 1.0, 0.06, 7);
        let new = doc("fig19", 500, 2.0, 0.03, 7);
        let report = compare_rendered(&old, &new, 10.0).unwrap();
        assert_eq!(report.calibration_ratio, 2.0);
        assert!(report.gate_passes(), "{}", report.summary());
        // Same 2× host but the *raw* time did not improve at all: the
        // normalized throughput halved — regression.
        let lazy = doc("fig19", 500, 2.0, 0.06, 7);
        let report = compare_rendered(&old, &lazy, 10.0).unwrap();
        assert!(!report.gate_passes());
    }

    #[test]
    fn different_vector_counts_compare_by_throughput() {
        // 500 vectors in 0.05 s ≡ 5000 vectors in 0.5 s.
        let old = doc("fig19", 500, 1.0, 0.05, 7);
        let new = doc("fig19", 5000, 1.0, 0.5, 7);
        let report = compare_rendered(&old, &new, 10.0).unwrap();
        assert!(report.gate_passes(), "{}", report.summary());
    }

    #[test]
    fn static_drift_regresses_with_zero_tolerance() {
        let old = doc("fig19", 500, 1.0, 0.05, 1234);
        let new = doc("fig19", 500, 1.0, 0.05, 1235);
        let report = compare_rendered(&old, &new, 99.0).unwrap();
        assert!(!report.gate_passes());
        let cell = report
            .cells
            .iter()
            .find(|c| c.key.engine == "word_ops")
            .unwrap();
        assert_eq!(cell.class, CellClass::Regressed);
    }

    #[test]
    fn missing_rows_fail_and_new_rows_pass() {
        let two_rows = r#"{"schema":"uds-bench-v1","figure":"fig21","rows":[
            {"circuit":"c432","shifts":160},{"circuit":"c499","shifts":200}]}"#;
        let one_row = r#"{"schema":"uds-bench-v1","figure":"fig21","rows":[
            {"circuit":"c432","shifts":160}]}"#;
        let shrunk = compare_rendered(two_rows, one_row, 10.0).unwrap();
        assert!(!shrunk.gate_passes());
        assert_eq!(shrunk.count(CellClass::Missing), 1);
        let grown = compare_rendered(one_row, two_rows, 10.0).unwrap();
        assert!(grown.gate_passes());
        assert_eq!(grown.count(CellClass::New), 1);
    }

    #[test]
    fn schema_and_figure_mismatches_are_usage_errors() {
        let good = doc("fig19", 500, 1.0, 0.05, 7);
        let bad_schema = good.replace("uds-bench-v1", "uds-bench-v2");
        let err = compare_rendered(&good, &bad_schema, 10.0).unwrap_err();
        assert!(err.0.contains("schema mismatch"), "{err}");
        let other_figure = doc("fig20", 500, 1.0, 0.05, 7);
        let err = compare_rendered(&good, &other_figure, 10.0).unwrap_err();
        assert!(err.0.contains("figure mismatch"), "{err}");
        let err = compare_rendered(&good, "not json", 10.0).unwrap_err();
        assert!(err.0.contains("NEW"), "{err}");
    }

    #[test]
    fn profile_mismatch_is_a_usage_error() {
        let release = doc("fig19", 500, 1.0, 0.05, 7);
        let debug = release.replace("\"release\"", "\"debug\"");
        let err = compare_rendered(&release, &debug, 10.0).unwrap_err();
        assert!(err.0.contains("profile mismatch"), "{err}");
    }

    #[test]
    fn batched_entries_match_by_jobs() {
        let batched = |j4: f64| {
            format!(
                r#"{{"schema":"uds-bench-v1","figure":"parallel","vectors":500,"rows":[
                    {{"circuit":"c432",
                      "sequential":{{"min_s":0.05,"median_s":0.05,"trimmed_mean_s":0.05}},
                      "batched":[
                        {{"jobs":1,"timing":{{"min_s":0.06,"median_s":0.06,"trimmed_mean_s":0.06}}}},
                        {{"jobs":4,"timing":{{"min_s":{j4},"median_s":{j4},"trimmed_mean_s":{j4}}}}}]}}]}}"#
            )
        };
        let report = compare_rendered(&batched(0.02), &batched(0.02), 10.0).unwrap();
        assert!(report.gate_passes());
        assert_eq!(report.cells.len(), 3);
        let report = compare_rendered(&batched(0.02), &batched(0.2), 10.0).unwrap();
        let regressed: Vec<String> = report
            .cells
            .iter()
            .filter(|c| c.class == CellClass::Regressed)
            .map(|c| c.key.to_string())
            .collect();
        assert_eq!(regressed, ["c432/batched j4 w32"]);
    }

    #[test]
    fn word_width_is_part_of_the_key() {
        let w32 = doc("fig19", 500, 1.0, 0.05, 7);
        let w64 = w32.replace("\"word_bits\":32", "\"word_bits\":64");
        let report = compare_rendered(&w32, &w64, 10.0).unwrap();
        // Nothing matches: everything is missing/new, and the gate
        // fails on the lost coverage.
        assert_eq!(report.count(CellClass::Missing), 2);
        assert_eq!(report.count(CellClass::New), 2);
        assert!(!report.gate_passes());
    }

    #[test]
    fn report_renders_table_and_json() {
        let old = doc("fig19", 500, 1.0, 0.05, 7);
        let new = doc("fig19", 500, 1.0, 0.09, 7);
        let report = compare_rendered(&old, &new, 10.0).unwrap();
        let table = report.render_table();
        assert!(table.contains("c432/parallel j1 w32"), "{table}");
        assert!(table.contains("gate: FAIL"), "{table}");
        let json = report.to_json();
        assert_eq!(json.get("schema").unwrap().as_str(), Some(COMPARE_SCHEMA));
        assert_eq!(json.get("gate").unwrap().as_str(), Some("fail"));
        let reparsed = Json::parse(&json.render()).expect("report round-trips");
        assert_eq!(
            reparsed
                .get("counts")
                .unwrap()
                .get("regressed")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn legacy_documents_without_fingerprint_compare_at_ratio_one() {
        // The pre-calibration BENCH_parallel.json shape: min/median
        // only, no calibration object.
        let legacy = r#"{"schema":"uds-bench-v1","figure":"parallel","vectors":500,"rows":[
            {"circuit":"c432","sequential":{"min_s":0.05,"median_s":0.06}}]}"#;
        let report = compare_rendered(legacy, legacy, 10.0).unwrap();
        assert_eq!(report.calibration_ratio, 1.0);
        assert!(report.gate_passes());
        // The statistic fell back to the median, not the min.
        if let Some(Cell::Timing { seconds, .. }) = report.cells[0].old {
            assert_eq!(seconds, 0.06);
        } else {
            panic!("expected a timing cell");
        }
    }
}
