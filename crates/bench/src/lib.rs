//! Benchmark harness for the paper's evaluation section (§5).
//!
//! Every table and figure of the evaluation is regenerated here:
//!
//! | Experiment | Paper | Regenerate with |
//! |---|---|---|
//! | Fig. 19 | technique comparison (seconds) | `tables fig19` / `benches/fig19_techniques.rs` |
//! | zero-delay aside | compiled ≈ 1/23 interpreted | `tables zero-delay` / `benches/zero_delay.rs` |
//! | Fig. 20 | bit-field trimming | `tables fig20` / `benches/fig20_trimming.rs` |
//! | Fig. 21 | retained shifts | `tables fig21` |
//! | Fig. 22 | bit-field widths | `tables fig22` |
//! | Fig. 23 | shift-elimination performance | `tables fig23` / `benches/fig23_shift_elim.rs` |
//! | Fig. 24 | shift elimination + trimming | `tables fig24` / `benches/fig24_combined.rs` |
//!
//! Run the whole evaluation with
//! `cargo run --release -p uds-bench --bin tables -- all --vectors 5000`.
//!
//! [`paper`] embeds the numbers the paper reports so the `tables` binary
//! can print paper-vs-measured side by side; [`runner`] holds the
//! measurement code shared by the binary and the Criterion benches;
//! [`compare`] is the regression gate behind `tables compare OLD NEW`,
//! matching cells across two `BENCH_*.json` documents and classifying
//! every throughput delta (DESIGN.md §16); [`trend`] folds figure
//! documents into the append-only perf history behind
//! `tables trend` and flags monotone erosion no single compare gate
//! can see (DESIGN.md §18).

pub mod compare;
pub mod paper;
pub mod runner;
pub mod table;
pub mod trend;
