//! Regenerates every table and figure of the paper's evaluation (§5).
//!
//! ```text
//! cargo run --release -p uds-bench --bin tables -- all
//! cargo run --release -p uds-bench --bin tables -- fig19 --vectors 5000
//! cargo run --release -p uds-bench --bin tables -- fig21
//! ```
//!
//! Subcommands: `fig19`, `fig20`, `fig21`, `fig22`, `fig23`, `fig24`,
//! `zero-delay`, `codesize`, `all`. Options: `--vectors N` (default
//! 5000, as in the paper) and `--quick` (500 vectors).

use std::env;

use uds_bench::paper;
use uds_bench::runner::{self, suite};
use uds_bench::table::{ratio, seconds, Table};
use uds_netlist::generators::iscas::Iscas85;
use uds_parallel::Optimization;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut vectors = 5000usize;
    let mut command = String::from("all");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--vectors" => {
                vectors = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--vectors needs a number"));
            }
            "--quick" => vectors = 500,
            "fig19" | "fig20" | "fig21" | "fig22" | "fig23" | "fig24" | "zero-delay"
            | "codesize" | "all" => command = arg.clone(),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    match command.as_str() {
        "fig19" => fig19(vectors),
        "fig20" => fig20(vectors),
        "fig21" => fig21(),
        "fig22" => fig22(),
        "fig23" => fig23(vectors),
        "fig24" => fig24(vectors),
        "zero-delay" => zero_delay(vectors),
        "codesize" => codesize(),
        "all" => {
            fig19(vectors);
            zero_delay(vectors);
            fig20(vectors);
            fig21();
            fig22();
            fig23(vectors);
            fig24(vectors);
            codesize();
        }
        _ => unreachable!("validated above"),
    }
}

fn usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: tables [fig19|fig20|fig21|fig22|fig23|fig24|zero-delay|codesize|all] \
         [--vectors N | --quick]"
    );
    std::process::exit(2);
}

fn fig19(vectors: usize) {
    println!("\n== Fig. 19: simulation time, {vectors} random vectors (measured s | paper s) ==");
    let mut table = Table::new(&[
        "circuit",
        "interp-3v",
        "interp-2v",
        "pc-set",
        "parallel",
        "pc speedup",
        "par speedup",
        "paper pc",
        "paper par",
    ]);
    let (mut pc_total, mut par_total) = (0.0, 0.0);
    for (circuit, nl) in suite() {
        let m = runner::fig19(&nl, vectors);
        let p = paper::fig19(circuit);
        pc_total += m.interpreted_3v / m.pc_set.max(1e-9);
        par_total += m.interpreted_3v / m.parallel.max(1e-9);
        table.row(vec![
            circuit.to_string(),
            seconds(m.interpreted_3v),
            seconds(m.interpreted_2v),
            seconds(m.pc_set),
            seconds(m.parallel),
            ratio(m.interpreted_3v, m.pc_set),
            ratio(m.interpreted_3v, m.parallel),
            ratio(p.interpreted_3v, p.pc_set),
            ratio(p.interpreted_3v, p.parallel),
        ]);
    }
    println!("{}", Table::render(&table));
    println!(
        "average speedup vs interpreted 3v: pc-set {:.1}x (paper ~{:.0}x), parallel {:.1}x (paper ~{:.0}x)",
        pc_total / 10.0,
        paper::claims::PC_SET_SPEEDUP,
        par_total / 10.0,
        paper::claims::PARALLEL_SPEEDUP
    );
}

fn fig20(vectors: usize) {
    println!("\n== Fig. 20: bit-field trimming, {vectors} vectors ==");
    println!("== op gain = generated-statement reduction (the faithful 1990 proxy) ==");
    let mut table = Table::new(&[
        "circuit",
        "levels(words)",
        "parallel",
        "trimming",
        "time gain",
        "op gain",
        "paper gain",
    ]);
    for (circuit, nl) in suite() {
        let (levels, words) = runner::levels_and_words(&nl);
        let unopt = runner::time_parallel(&nl, Optimization::None, vectors);
        let trimmed = runner::time_parallel(&nl, Optimization::Trimming, vectors);
        let unopt_ops = runner::word_ops(&nl, Optimization::None);
        let trimmed_ops = runner::word_ops(&nl, Optimization::Trimming);
        let p = paper::fig20(circuit);
        table.row(vec![
            circuit.to_string(),
            format!("{levels}({words})"),
            seconds(unopt),
            seconds(trimmed),
            percent_gain(unopt, trimmed),
            percent_gain(unopt_ops as f64, trimmed_ops as f64),
            percent_gain(p.parallel, p.trimming),
        ]);
    }
    println!("{}", Table::render(&table));
}

fn fig21() {
    println!("\n== Fig. 21: retained shifts (measured | paper) ==");
    let mut table = Table::new(&[
        "circuit",
        "unopt",
        "path-tracing",
        "cycle-breaking",
        "paper unopt",
        "paper pt",
        "paper cb",
    ]);
    for (circuit, nl) in suite() {
        let a = runner::shift_analysis(&nl);
        let p = paper::fig21(circuit);
        table.row(vec![
            circuit.to_string(),
            a.unoptimized_shifts.to_string(),
            a.path_tracing_shifts.to_string(),
            a.cycle_breaking_shifts.to_string(),
            p.unoptimized.to_string(),
            p.path_tracing.to_string(),
            p.cycle_breaking.to_string(),
        ]);
    }
    println!("{}", Table::render(&table));
}

fn fig22() {
    println!("\n== Fig. 22: bit-field widths in bits (the paper's rows did not survive; ==");
    println!("==          expected shape: path-tracing <= unoptimized << cycle-breaking) ==");
    let mut table = Table::new(&["circuit", "unopt", "path-tracing", "cycle-breaking"]);
    for (circuit, nl) in suite() {
        let a = runner::shift_analysis(&nl);
        table.row(vec![
            circuit.to_string(),
            a.unoptimized_width.to_string(),
            a.path_tracing_width.to_string(),
            a.cycle_breaking_width.to_string(),
        ]);
    }
    println!("{}", Table::render(&table));
}

fn fig23(vectors: usize) {
    println!("\n== Fig. 23: shift elimination, {vectors} vectors ==");
    println!(
        "== (paper: path-tracing gains 24%..84%; cycle-breaking loses on all but the smallest) =="
    );
    let mut table = Table::new(&[
        "circuit",
        "unopt",
        "path-tracing",
        "cycle-breaking",
        "pt time gain",
        "pt op gain",
        "cb op gain",
    ]);
    for (circuit, nl) in suite() {
        let unopt = runner::time_parallel(&nl, Optimization::None, vectors);
        let pt = runner::time_parallel(&nl, Optimization::PathTracing, vectors);
        let cb = runner::time_parallel(&nl, Optimization::CycleBreaking, vectors);
        let unopt_ops = runner::word_ops(&nl, Optimization::None) as f64;
        let pt_ops = runner::word_ops(&nl, Optimization::PathTracing) as f64;
        let cb_ops = runner::word_ops(&nl, Optimization::CycleBreaking) as f64;
        table.row(vec![
            circuit.to_string(),
            seconds(unopt),
            seconds(pt),
            seconds(cb),
            percent_gain(unopt, pt),
            percent_gain(unopt_ops, pt_ops),
            percent_gain(unopt_ops, cb_ops),
        ]);
    }
    println!("{}", Table::render(&table));
}

fn fig24(vectors: usize) {
    println!("\n== Fig. 24: shift elimination + trimming, {vectors} vectors ==");
    let mut table = Table::new(&[
        "circuit",
        "unopt",
        "path-tracing",
        "with trimming",
        "time gain",
        "op gain",
        "paper gain",
    ]);
    let mut gain_total = 0.0;
    for (circuit, nl) in suite() {
        let unopt = runner::time_parallel(&nl, Optimization::None, vectors);
        let pt = runner::time_parallel(&nl, Optimization::PathTracing, vectors);
        let both = runner::time_parallel(&nl, Optimization::PathTracingTrimming, vectors);
        let unopt_ops = runner::word_ops(&nl, Optimization::None) as f64;
        let both_ops = runner::word_ops(&nl, Optimization::PathTracingTrimming) as f64;
        let p = paper::fig24(circuit);
        gain_total += 1.0 - both_ops / unopt_ops;
        table.row(vec![
            circuit.to_string(),
            seconds(unopt),
            seconds(pt),
            seconds(both),
            percent_gain(unopt, both),
            percent_gain(unopt_ops, both_ops),
            percent_gain(p.unoptimized, p.with_trimming),
        ]);
    }
    println!("{}", Table::render(&table));
    println!(
        "average op-count improvement: {:.0}% (paper runtime improvement: {:.0}%)",
        100.0 * gain_total / 10.0,
        100.0 * paper::claims::SHIFT_ELIM_TRIM_AVG_IMPROVEMENT
    );
}

fn zero_delay(vectors: usize) {
    println!("\n== §5 aside: zero-delay compiled vs interpreted, {vectors} vectors ==");
    let mut table = Table::new(&["circuit", "interpreted", "compiled", "speedup"]);
    let mut total = 0.0;
    for (circuit, nl) in suite() {
        let m = runner::zero_delay(&nl, vectors);
        total += m.interpreted / m.compiled.max(1e-9);
        table.row(vec![
            circuit.to_string(),
            seconds(m.interpreted),
            seconds(m.compiled),
            ratio(m.interpreted, m.compiled),
        ]);
    }
    println!("{}", Table::render(&table));
    println!(
        "average speedup: {:.1}x (paper: ~{:.0}x — theirs compares compiled C to a full\n\
         interpreter; our \"interpreted\" levelized loop is already fairly tight)",
        total / 10.0,
        paper::claims::ZERO_DELAY_SPEEDUP
    );
}

fn codesize() {
    println!(
        "\n== generated-code size (lines of emitted C; §3: \"over 100,000 lines for c6288\") =="
    );
    let mut table = Table::new(&["circuit", "pc-set", "parallel", "parallel+pt"]);
    for circuit in [Iscas85::C432, Iscas85::C1908, Iscas85::C6288] {
        let nl = circuit.build();
        let pc = uds_pcset::PcSetSimulator::compile(&nl).expect("combinational");
        let par = uds_parallel::ParallelSimulator::compile(&nl, Optimization::None)
            .expect("combinational");
        let pt = uds_parallel::ParallelSimulator::compile(&nl, Optimization::PathTracing)
            .expect("combinational");
        table.row(vec![
            circuit.to_string(),
            uds_pcset::codegen_c::line_count(&nl, &pc).to_string(),
            uds_parallel::codegen_c::line_count(&nl, &par).to_string(),
            uds_parallel::codegen_c::line_count(&nl, &pt).to_string(),
        ]);
    }
    println!("{}", Table::render(&table));
}

fn percent_gain(before: f64, after: f64) -> String {
    if before <= 0.0 {
        "-".to_owned()
    } else {
        format!("{:+.0}%", 100.0 * (1.0 - after / before))
    }
}
