//! Regenerates every table and figure of the paper's evaluation (§5).
//!
//! ```text
//! cargo run --release -p uds-bench --bin tables -- all
//! cargo run --release -p uds-bench --bin tables -- fig19 --vectors 5000
//! cargo run --release -p uds-bench --bin tables -- fig21 --json
//! cargo run --release -p uds-bench --bin tables -- fig19 --quick --json - | jq .
//! ```
//!
//! Subcommands: `fig19`, `fig20`, `fig21`, `fig22`, `fig23`, `fig24`,
//! `zero-delay`, `codesize`, `parallel`, `native`, `hotspots`, `all`,
//! and `compare OLD NEW [--tolerance PCT]`. Options: `--vectors N`
//! (default 5000, as in the paper), `--quick` (500 vectors), and
//! `--json` (additionally write each table as `BENCH_<name>.json` in
//! the current directory, schema `uds-bench-v1`). `--json -` streams
//! the JSON documents to stdout instead — the rendered tables then move
//! to stderr, the same stdout contract as `udsim --stats -`. `parallel`
//! is the multi-core scaling sweep: the batch runner at jobs = 1/2/4/8
//! against the single-thread parallel+pt+trim baseline. `native` times
//! the emitted C compiled with the system `cc` and `dlopen`-loaded
//! against the in-process parallel+pt+trim interpreter — the paper's
//! actual deployment model; it prints a visible SKIP (and writes no
//! JSON) when no C compiler is on `PATH`. `hotspots` runs the per-level
//! execution profiler (DESIGN.md §19) on both compiled techniques and
//! shows how well each compiler's static per-level cost model predicts
//! where the simulate loop's time actually goes — the Pearson
//! correlation of measured per-level self-time against static op
//! counts; the gate watches the profiled-run throughput and the static
//! totals, while the noisy per-level nanoseconds ride along un-gated.
//!
//! `compare` is the perf regression gate (DESIGN.md §16): it matches
//! two `uds-bench-v1` documents cell by cell, normalizes throughput by
//! their calibration scores, and exits 1 when any cell regressed
//! beyond the tolerance (default 10%) or went missing — 0 otherwise,
//! 2 on malformed or mismatched inputs. With `--json` the delta report
//! lands in `DELTA_<figure>.json` (schema `uds-bench-compare-v1`);
//! `--json -` streams it to stdout.
//!
//! `trend` is the perf history (DESIGN.md §18):
//! `trend --append HISTORY.ndjson FIG.json ...` folds each figure
//! document into one calibration-normalized `uds-bench-trend-v1`
//! NDJSON line, then scans the whole history for monotone erosion —
//! a series that slid on each of its last `--window K` (default 5)
//! runs even though every individual `compare` passed. `--strict`
//! turns a detected erosion into exit 1.
//!
//! Timed cells show the minimum of [`runner::timing_reps`] repetitions
//! after a warmup pass; the JSON carries min, median, the
//! outlier-trimmed mean the compare gate reads, and derived
//! vectors/sec. When `--json` is active the run is fingerprinted with
//! the host's [`uds_core::calibrate`] score so baselines recorded on
//! different machines stay comparable. Static columns come from the
//! compilers' telemetry gauges. Fig. 19 carries the measured activity
//! factor (toggles / (nets × depth × vectors)) — the event-driven
//! baseline's work scales with it, the compiled techniques' does not,
//! so it contextualizes each circuit's speedup.

use std::env;
use std::fs;

use uds_bench::compare::{self, DEFAULT_TOLERANCE_PCT};
use uds_bench::paper;
use uds_bench::runner::{self, suite, Timing};
use uds_bench::table::{ratio, seconds, Table};
use uds_bench::trend::{self, TrendRecord};
use uds_core::telemetry::json::Json;
use uds_core::{write_text, Engine, HumanOut, StreamContract, WordWidth};
use uds_netlist::generators::iscas::Iscas85;
use uds_parallel::Optimization;

/// Where `--json` documents go.
#[derive(Clone, Copy, PartialEq, Eq)]
enum JsonDest {
    /// `BENCH_<name>.json` files in the current directory.
    Files,
    /// Streamed to stdout (`--json -`); tables move to stderr.
    Stdout,
}

/// This invocation's output routing: rendered tables through the shared
/// human sink, JSON documents to files or stdout.
struct Output {
    human: HumanOut,
    json: Option<JsonDest>,
    /// The machine fingerprint stamped into every document this run
    /// writes (measured once, before any figure, so the score is not
    /// polluted by a warm bench loop). `None` when `--json` is off.
    calibration: Option<Json>,
}

impl Output {
    /// Prints one table line through the stdout contract.
    fn line(&self, text: impl std::fmt::Display) {
        self.human.line(text);
    }

    /// Emits a figure's rows as one `uds-bench-v1` document, when
    /// `--json` was given.
    fn write_json(&self, name: &str, vectors: Option<usize>, rows: Vec<Json>) {
        let Some(dest) = self.json else { return };
        let mut doc = vec![
            ("schema".to_owned(), Json::Str("uds-bench-v1".to_owned())),
            ("figure".to_owned(), Json::Str(name.to_owned())),
        ];
        if let Some(vectors) = vectors {
            doc.push(("vectors".to_owned(), Json::UInt(vectors as u64)));
        }
        if let Some(calibration) = &self.calibration {
            doc.push(("calibration".to_owned(), calibration.clone()));
        }
        doc.push(("rows".to_owned(), Json::Arr(rows)));
        let mut rendered = Json::Obj(doc).render();
        rendered.push('\n');
        let path = match dest {
            JsonDest::Stdout => "-".to_owned(),
            JsonDest::Files => format!("BENCH_{name}.json"),
        };
        if let Err(e) = write_text(&path, &rendered) {
            eprintln!("error: writing {path}: {e}");
        }
    }
}

/// The host fingerprint for this run: the core calibration plus the
/// two knobs the bench layer owns (arena word width, timing reps).
fn fingerprint() -> Json {
    let calibration = uds_core::calibrate();
    let Json::Obj(mut members) = calibration.to_json() else {
        unreachable!("Calibration::to_json returns an object");
    };
    members.push((
        "word_bits".to_owned(),
        Json::UInt(u64::from(WordWidth::default().bits())),
    ));
    members.push((
        "timing_reps".to_owned(),
        Json::UInt(runner::timing_reps() as u64),
    ));
    Json::Obj(members)
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut vectors = 5000usize;
    let mut command = String::from("all");
    let mut json: Option<JsonDest> = None;
    let mut tolerance: Option<f64> = None;
    let mut compare_paths: Vec<String> = Vec::new();
    let mut append = false;
    let mut strict = false;
    let mut window: Option<usize> = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--vectors" => {
                vectors = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--vectors needs a number"));
            }
            "--quick" => vectors = 500,
            "--tolerance" => {
                tolerance = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|v: &f64| v.is_finite() && *v >= 0.0)
                        .unwrap_or_else(|| usage("--tolerance needs a non-negative percentage")),
                );
            }
            "--json" => {
                // `--json -` streams to stdout; bare `--json` keeps the
                // historical per-figure files.
                json = Some(if iter.peek().map(|a| a.as_str()) == Some("-") {
                    iter.next();
                    JsonDest::Stdout
                } else {
                    JsonDest::Files
                });
            }
            "--append" => append = true,
            "--strict" => strict = true,
            "--window" => {
                window = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|v: &usize| *v >= trend::MIN_RUN)
                        .unwrap_or_else(|| {
                            usage(&format!("--window needs a number >= {}", trend::MIN_RUN))
                        }),
                );
            }
            "fig19" | "fig20" | "fig21" | "fig22" | "fig23" | "fig24" | "zero-delay"
            | "codesize" | "parallel" | "native" | "hotspots" | "all" | "compare" | "trend" => {
                command = arg.clone();
            }
            other if (command == "compare" || command == "trend") && !other.starts_with('-') => {
                compare_paths.push(other.to_owned());
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    if command == "compare" && compare_paths.len() != 2 {
        usage("compare needs exactly two documents: compare OLD NEW");
    }
    if command != "compare" && tolerance.is_some() {
        usage("--tolerance only applies to `compare`");
    }
    if command != "trend" && (append || strict || window.is_some()) {
        usage("--append/--strict/--window only apply to `trend`");
    }
    if command == "trend" {
        if compare_paths.is_empty() {
            usage("trend needs a history: trend [--append] HISTORY.ndjson [FIG.json ...]");
        }
        if append && compare_paths.len() < 2 {
            usage("trend --append needs at least one figure document after the history");
        }
        if !append && compare_paths.len() > 1 {
            usage("trend without --append reads only the history file");
        }
        if json.is_some() {
            usage("--json does not apply to `trend` (the history file IS the artifact)");
        }
    }

    // The same stdout contract as udsim's stream flags: `--json -`
    // claims stdout and the rendered tables move to stderr.
    let mut contract = StreamContract::new();
    if json == Some(JsonDest::Stdout) {
        contract.claim("--json", "-").unwrap_or_else(|e| usage(&e));
    }
    // The fingerprint is measured once, up front, on a quiet machine
    // state — never needed by `compare`, which reads the fingerprints
    // already recorded in its input documents.
    let calibration = (json.is_some() && command != "compare").then(fingerprint);
    let out = Output {
        human: contract.human(),
        json,
        calibration,
    };
    if let Some(calibration) = &out.calibration {
        out.line(format!(
            "calibration: score {:.3} ({})",
            calibration
                .get("score")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            calibration
                .get("profile")
                .and_then(Json::as_str)
                .unwrap_or("?"),
        ));
    }

    if command == "compare" {
        run_compare(
            &compare_paths[0],
            &compare_paths[1],
            tolerance.unwrap_or(DEFAULT_TOLERANCE_PCT),
            &out,
        );
    }
    if command == "trend" {
        run_trend(
            &compare_paths[0],
            if append { &compare_paths[1..] } else { &[] },
            window.unwrap_or(trend::DEFAULT_WINDOW),
            strict,
            &out,
        );
    }

    match command.as_str() {
        "fig19" => fig19(vectors, &out),
        "fig20" => fig20(vectors, &out),
        "fig21" => fig21(&out),
        "fig22" => fig22(&out),
        "fig23" => fig23(vectors, &out),
        "fig24" => fig24(vectors, &out),
        "zero-delay" => zero_delay(vectors, &out),
        "codesize" => codesize(&out),
        "parallel" => parallel_scaling(vectors, &out),
        "native" => native(vectors, &out),
        "hotspots" => hotspots(vectors, &out),
        "all" => {
            fig19(vectors, &out);
            zero_delay(vectors, &out);
            fig20(vectors, &out);
            fig21(&out);
            fig22(&out);
            fig23(vectors, &out);
            fig24(vectors, &out);
            codesize(&out);
            parallel_scaling(vectors, &out);
            native(vectors, &out);
            hotspots(vectors, &out);
        }
        _ => unreachable!("validated above"),
    }
}

fn usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: tables [fig19|fig20|fig21|fig22|fig23|fig24|zero-delay|codesize|parallel|native|hotspots|all] \
         [--vectors N | --quick] [--json [-]]\n\
         \x20      tables compare OLD.json NEW.json [--tolerance PCT] [--json [-]]\n\
         \x20      tables trend [--append] HISTORY.ndjson [FIG.json ...] [--window K] [--strict]"
    );
    std::process::exit(2);
}

/// The `compare` subcommand: parse OLD and NEW, classify every cell,
/// render the delta, and exit with the gate verdict.
///
/// Exit codes: 0 = gate passes, 1 = regressed/missing cells,
/// 2 = unreadable, malformed, or mismatched documents.
fn run_compare(old_path: &str, new_path: &str, tolerance: f64, out: &Output) -> ! {
    let read = |path: &str| {
        fs::read_to_string(path).unwrap_or_else(|e| usage(&format!("cannot read `{path}`: {e}")))
    };
    let report = compare::compare_rendered(&read(old_path), &read(new_path), tolerance)
        .unwrap_or_else(|e| usage(&e.0));
    out.line(report.render_table());
    if let Some(dest) = out.json {
        let mut rendered = report.to_json().render();
        rendered.push('\n');
        let path = match dest {
            JsonDest::Stdout => "-".to_owned(),
            JsonDest::Files => format!("DELTA_{}.json", report.figure),
        };
        if let Err(e) = write_text(&path, &rendered) {
            eprintln!("error: writing {path}: {e}");
        }
    }
    std::process::exit(if report.gate_passes() { 0 } else { 1 });
}

/// The `trend` subcommand (DESIGN.md §18): optionally fold figure
/// documents into the append-only NDJSON history, then scan the whole
/// history for monotone erosion — series that slid on every one of
/// their last `window` runs even though each individual `compare`
/// gate passed.
///
/// Exit codes: 0 = no erosion (or erosion without `--strict`),
/// 1 = erosion under `--strict`, 2 = unreadable or malformed inputs.
fn run_trend(
    history_path: &str,
    figures: &[String],
    window: usize,
    strict: bool,
    out: &Output,
) -> ! {
    for path in figures {
        let text = fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read `{path}`: {e}")));
        let doc =
            Json::parse(&text).unwrap_or_else(|e| usage(&format!("cannot parse `{path}`: {e:?}")));
        let record = TrendRecord::from_doc(&doc).unwrap_or_else(|e| usage(&format!("{path}: {e}")));
        let mut line = record.render();
        line.push('\n');
        let appended = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(history_path)
            .and_then(|mut file| std::io::Write::write_all(&mut file, line.as_bytes()));
        if let Err(e) = appended {
            usage(&format!("cannot append to `{history_path}`: {e}"));
        }
        out.line(format!(
            "appended {} ({} cells) to {history_path}",
            record.figure,
            record.cells.len()
        ));
    }
    // A missing history without --append is a usage error; with
    // --append the file was just created above.
    let text = fs::read_to_string(history_path)
        .unwrap_or_else(|e| usage(&format!("cannot read `{history_path}`: {e}")));
    let history = trend::parse_history(&text).unwrap_or_else(|e| usage(&e.0));
    let erosions = trend::detect_erosion(&history, window);
    out.line(trend::render_report(&history, &erosions).trim_end());
    std::process::exit(if strict && !erosions.is_empty() { 1 } else { 0 });
}

/// Table cell for a timing: the minimum repetition, in seconds.
fn best(timing: Timing) -> String {
    seconds(timing.min_s)
}

/// JSON value for a timing: the raw statistics plus derived
/// throughput. `trimmed_mean_s` is the statistic `compare` gates on;
/// `min_s`/`median_s` keep their original meaning for existing
/// consumers.
fn timing_json(timing: Timing, vectors: usize) -> Json {
    Json::obj([
        ("min_s", Json::Float(timing.min_s)),
        ("median_s", Json::Float(timing.median_s)),
        ("trimmed_mean_s", Json::Float(timing.trimmed_mean_s)),
        ("reps", Json::UInt(timing.reps as u64)),
        (
            "vectors_per_s",
            Json::Float(vectors as f64 / timing.trimmed_mean_s.max(1e-12)),
        ),
    ])
}

fn fig19(vectors: usize, out: &Output) {
    out.line(format!(
        "\n== Fig. 19: simulation time, {vectors} random vectors (measured s | paper s) =="
    ));
    out.line(
        "== activity = measured toggles/(nets*depth*vectors); event-driven work scales with it ==",
    );
    let mut table = Table::new(&[
        "circuit",
        "activity",
        "interp-3v",
        "interp-2v",
        "pc-set",
        "parallel",
        "pc speedup",
        "par speedup",
        "paper pc",
        "paper par",
    ]);
    let mut rows = Vec::new();
    let (mut pc_total, mut par_total) = (0.0, 0.0);
    for (circuit, nl) in suite() {
        let m = runner::fig19(&nl, vectors);
        let activity = runner::activity_factor(&nl, vectors);
        let p = paper::fig19(circuit);
        pc_total += m.interpreted_3v.min_s / m.pc_set.min_s.max(1e-9);
        par_total += m.interpreted_3v.min_s / m.parallel.min_s.max(1e-9);
        table.row(vec![
            circuit.to_string(),
            format!("{activity:.4}"),
            best(m.interpreted_3v),
            best(m.interpreted_2v),
            best(m.pc_set),
            best(m.parallel),
            ratio(m.interpreted_3v.min_s, m.pc_set.min_s),
            ratio(m.interpreted_3v.min_s, m.parallel.min_s),
            ratio(p.interpreted_3v, p.pc_set),
            ratio(p.interpreted_3v, p.parallel),
        ]);
        rows.push(Json::obj([
            ("circuit", Json::Str(circuit.to_string())),
            ("activity_factor", Json::Float(activity)),
            ("interpreted_3v", timing_json(m.interpreted_3v, vectors)),
            ("interpreted_2v", timing_json(m.interpreted_2v, vectors)),
            ("pc_set", timing_json(m.pc_set, vectors)),
            ("parallel", timing_json(m.parallel, vectors)),
            ("paper_interpreted_3v_s", Json::Float(p.interpreted_3v)),
            ("paper_pc_set_s", Json::Float(p.pc_set)),
            ("paper_parallel_s", Json::Float(p.parallel)),
        ]));
    }
    out.line(Table::render(&table));
    out.line(format!(
        "average speedup vs interpreted 3v: pc-set {:.1}x (paper ~{:.0}x), parallel {:.1}x (paper ~{:.0}x)",
        pc_total / 10.0,
        paper::claims::PC_SET_SPEEDUP,
        par_total / 10.0,
        paper::claims::PARALLEL_SPEEDUP
    ));
    out.write_json("fig19", Some(vectors), rows);
}

fn fig20(vectors: usize, out: &Output) {
    out.line(format!(
        "\n== Fig. 20: bit-field trimming, {vectors} vectors =="
    ));
    out.line("== op gain = generated-statement reduction (the faithful 1990 proxy) ==");
    let mut table = Table::new(&[
        "circuit",
        "levels(words)",
        "parallel",
        "trimming",
        "time gain",
        "op gain",
        "paper gain",
    ]);
    let mut rows = Vec::new();
    for (circuit, nl) in suite() {
        let (levels, words) = runner::levels_and_words(&nl);
        let unopt = runner::time_parallel(&nl, Optimization::None, vectors);
        let trimmed = runner::time_parallel(&nl, Optimization::Trimming, vectors);
        let unopt_ops = runner::word_ops(&nl, Optimization::None);
        let trimmed_ops = runner::word_ops(&nl, Optimization::Trimming);
        let p = paper::fig20(circuit);
        table.row(vec![
            circuit.to_string(),
            format!("{levels}({words})"),
            best(unopt),
            best(trimmed),
            percent_gain(unopt.min_s, trimmed.min_s),
            percent_gain(unopt_ops as f64, trimmed_ops as f64),
            percent_gain(p.parallel, p.trimming),
        ]);
        rows.push(Json::obj([
            ("circuit", Json::Str(circuit.to_string())),
            ("levels", Json::UInt(levels.into())),
            ("field_words", Json::UInt(words.into())),
            ("unoptimized", timing_json(unopt, vectors)),
            ("trimming", timing_json(trimmed, vectors)),
            ("unoptimized_word_ops", Json::UInt(unopt_ops as u64)),
            ("trimming_word_ops", Json::UInt(trimmed_ops as u64)),
        ]));
    }
    out.line(Table::render(&table));
    out.write_json("fig20", Some(vectors), rows);
}

fn fig21(out: &Output) {
    out.line("\n== Fig. 21: retained shifts (measured | paper) ==");
    let mut table = Table::new(&[
        "circuit",
        "unopt",
        "path-tracing",
        "cycle-breaking",
        "paper unopt",
        "paper pt",
        "paper cb",
    ]);
    let mut rows = Vec::new();
    for (circuit, nl) in suite() {
        let a = runner::shift_analysis(&nl);
        let p = paper::fig21(circuit);
        table.row(vec![
            circuit.to_string(),
            a.unoptimized_shifts.to_string(),
            a.path_tracing_shifts.to_string(),
            a.cycle_breaking_shifts.to_string(),
            p.unoptimized.to_string(),
            p.path_tracing.to_string(),
            p.cycle_breaking.to_string(),
        ]);
        rows.push(Json::obj([
            ("circuit", Json::Str(circuit.to_string())),
            (
                "unoptimized_shifts",
                Json::UInt(a.unoptimized_shifts as u64),
            ),
            (
                "path_tracing_shifts",
                Json::UInt(a.path_tracing_shifts as u64),
            ),
            (
                "cycle_breaking_shifts",
                Json::UInt(a.cycle_breaking_shifts as u64),
            ),
            ("paper_unoptimized", Json::UInt(p.unoptimized as u64)),
            ("paper_path_tracing", Json::UInt(p.path_tracing as u64)),
            ("paper_cycle_breaking", Json::UInt(p.cycle_breaking as u64)),
        ]));
    }
    out.line(Table::render(&table));
    out.write_json("fig21", None, rows);
}

fn fig22(out: &Output) {
    out.line("\n== Fig. 22: bit-field widths in bits (the paper's rows did not survive; ==");
    out.line("==          expected shape: path-tracing <= unoptimized << cycle-breaking) ==");
    let mut table = Table::new(&["circuit", "unopt", "path-tracing", "cycle-breaking"]);
    let mut rows = Vec::new();
    for (circuit, nl) in suite() {
        let a = runner::shift_analysis(&nl);
        table.row(vec![
            circuit.to_string(),
            a.unoptimized_width.to_string(),
            a.path_tracing_width.to_string(),
            a.cycle_breaking_width.to_string(),
        ]);
        rows.push(Json::obj([
            ("circuit", Json::Str(circuit.to_string())),
            ("unoptimized_width", Json::UInt(a.unoptimized_width.into())),
            (
                "path_tracing_width",
                Json::UInt(a.path_tracing_width.into()),
            ),
            (
                "cycle_breaking_width",
                Json::UInt(a.cycle_breaking_width.into()),
            ),
        ]));
    }
    out.line(Table::render(&table));
    out.write_json("fig22", None, rows);
}

fn fig23(vectors: usize, out: &Output) {
    out.line(format!(
        "\n== Fig. 23: shift elimination, {vectors} vectors =="
    ));
    out.line(
        "== (paper: path-tracing gains 24%..84%; cycle-breaking loses on all but the smallest) ==",
    );
    let mut table = Table::new(&[
        "circuit",
        "unopt",
        "path-tracing",
        "cycle-breaking",
        "pt time gain",
        "pt op gain",
        "cb op gain",
    ]);
    let mut rows = Vec::new();
    for (circuit, nl) in suite() {
        let unopt = runner::time_parallel(&nl, Optimization::None, vectors);
        let pt = runner::time_parallel(&nl, Optimization::PathTracing, vectors);
        let cb = runner::time_parallel(&nl, Optimization::CycleBreaking, vectors);
        let unopt_ops = runner::word_ops(&nl, Optimization::None) as f64;
        let pt_ops = runner::word_ops(&nl, Optimization::PathTracing) as f64;
        let cb_ops = runner::word_ops(&nl, Optimization::CycleBreaking) as f64;
        table.row(vec![
            circuit.to_string(),
            best(unopt),
            best(pt),
            best(cb),
            percent_gain(unopt.min_s, pt.min_s),
            percent_gain(unopt_ops, pt_ops),
            percent_gain(unopt_ops, cb_ops),
        ]);
        rows.push(Json::obj([
            ("circuit", Json::Str(circuit.to_string())),
            ("unoptimized", timing_json(unopt, vectors)),
            ("path_tracing", timing_json(pt, vectors)),
            ("cycle_breaking", timing_json(cb, vectors)),
            ("unoptimized_word_ops", Json::UInt(unopt_ops as u64)),
            ("path_tracing_word_ops", Json::UInt(pt_ops as u64)),
            ("cycle_breaking_word_ops", Json::UInt(cb_ops as u64)),
        ]));
    }
    out.line(Table::render(&table));
    out.write_json("fig23", Some(vectors), rows);
}

fn fig24(vectors: usize, out: &Output) {
    out.line(format!(
        "\n== Fig. 24: shift elimination + trimming, {vectors} vectors =="
    ));
    let mut table = Table::new(&[
        "circuit",
        "unopt",
        "path-tracing",
        "with trimming",
        "time gain",
        "op gain",
        "paper gain",
    ]);
    let mut rows = Vec::new();
    let mut gain_total = 0.0;
    for (circuit, nl) in suite() {
        let unopt = runner::time_parallel(&nl, Optimization::None, vectors);
        let pt = runner::time_parallel(&nl, Optimization::PathTracing, vectors);
        let both = runner::time_parallel(&nl, Optimization::PathTracingTrimming, vectors);
        let unopt_ops = runner::word_ops(&nl, Optimization::None) as f64;
        let both_ops = runner::word_ops(&nl, Optimization::PathTracingTrimming) as f64;
        let p = paper::fig24(circuit);
        gain_total += 1.0 - both_ops / unopt_ops;
        table.row(vec![
            circuit.to_string(),
            best(unopt),
            best(pt),
            best(both),
            percent_gain(unopt.min_s, both.min_s),
            percent_gain(unopt_ops, both_ops),
            percent_gain(p.unoptimized, p.with_trimming),
        ]);
        rows.push(Json::obj([
            ("circuit", Json::Str(circuit.to_string())),
            ("unoptimized", timing_json(unopt, vectors)),
            ("path_tracing", timing_json(pt, vectors)),
            ("path_tracing_trimming", timing_json(both, vectors)),
            ("unoptimized_word_ops", Json::UInt(unopt_ops as u64)),
            (
                "path_tracing_trimming_word_ops",
                Json::UInt(both_ops as u64),
            ),
        ]));
    }
    out.line(Table::render(&table));
    out.line(format!(
        "average op-count improvement: {:.0}% (paper runtime improvement: {:.0}%)",
        100.0 * gain_total / 10.0,
        100.0 * paper::claims::SHIFT_ELIM_TRIM_AVG_IMPROVEMENT
    ));
    out.write_json("fig24", Some(vectors), rows);
}

fn zero_delay(vectors: usize, out: &Output) {
    out.line(format!(
        "\n== §5 aside: zero-delay compiled vs interpreted, {vectors} vectors =="
    ));
    let mut table = Table::new(&["circuit", "interpreted", "compiled", "speedup"]);
    let mut rows = Vec::new();
    let mut total = 0.0;
    for (circuit, nl) in suite() {
        let m = runner::zero_delay(&nl, vectors);
        total += m.interpreted.min_s / m.compiled.min_s.max(1e-9);
        table.row(vec![
            circuit.to_string(),
            best(m.interpreted),
            best(m.compiled),
            ratio(m.interpreted.min_s, m.compiled.min_s),
        ]);
        rows.push(Json::obj([
            ("circuit", Json::Str(circuit.to_string())),
            ("interpreted", timing_json(m.interpreted, vectors)),
            ("compiled", timing_json(m.compiled, vectors)),
        ]));
    }
    out.line(Table::render(&table));
    out.line(format!(
        "average speedup: {:.1}x (paper: ~{:.0}x — theirs compares compiled C to a full\n\
         interpreter; our \"interpreted\" levelized loop is already fairly tight)",
        total / 10.0,
        paper::claims::ZERO_DELAY_SPEEDUP
    ));
    out.write_json("zero-delay", Some(vectors), rows);
}

fn codesize(out: &Output) {
    out.line(
        "\n== generated-code size (lines of emitted C; §3: \"over 100,000 lines for c6288\") ==",
    );
    let mut table = Table::new(&["circuit", "pc-set", "parallel", "parallel+pt"]);
    let mut rows = Vec::new();
    for circuit in [Iscas85::C432, Iscas85::C1908, Iscas85::C6288] {
        let nl = circuit.build();
        let pc = uds_pcset::PcSetSimulator::compile(&nl).expect("combinational");
        let par = uds_parallel::ParallelSimulator::compile(&nl, Optimization::None)
            .expect("combinational");
        let pt = uds_parallel::ParallelSimulator::compile(&nl, Optimization::PathTracing)
            .expect("combinational");
        let pc_lines = uds_pcset::codegen_c::line_count(&nl, &pc).expect("matching netlist");
        let par_lines = uds_parallel::codegen_c::line_count(&nl, &par).expect("matching netlist");
        let pt_lines = uds_parallel::codegen_c::line_count(&nl, &pt).expect("matching netlist");
        table.row(vec![
            circuit.to_string(),
            pc_lines.to_string(),
            par_lines.to_string(),
            pt_lines.to_string(),
        ]);
        rows.push(Json::obj([
            ("circuit", Json::Str(circuit.to_string())),
            ("pc_set_lines", Json::UInt(pc_lines as u64)),
            ("parallel_lines", Json::UInt(par_lines as u64)),
            ("parallel_pt_lines", Json::UInt(pt_lines as u64)),
        ]));
    }
    out.line(Table::render(&table));
    out.write_json("codesize", None, rows);
}

fn native(vectors: usize, out: &Output) {
    out.line(format!(
        "\n== native engine: emitted C via system cc + dlopen, vs in-process parallel+pt+trim, \
         {vectors} vectors =="
    ));
    out.line("== (the paper's deployment model: the generated C *is* the simulator) ==");
    if !uds_core::compiler_available() {
        out.line(
            "SKIP: no C compiler on PATH (set $UDS_CC to override) — native table not measured",
        );
        return;
    }
    let mut table = Table::new(&["circuit", "parallel+pt+trim", "native", "native speedup"]);
    let mut rows = Vec::new();
    for (circuit, nl) in suite() {
        let interp = runner::time_parallel(&nl, Optimization::PathTracingTrimming, vectors);
        let native = runner::time_native(&nl, vectors).expect("compiler probed above");
        table.row(vec![
            circuit.to_string(),
            best(interp),
            best(native),
            ratio(interp.min_s, native.min_s),
        ]);
        rows.push(Json::obj([
            ("circuit", Json::Str(circuit.to_string())),
            ("parallel_pt_trim", timing_json(interp, vectors)),
            ("native", timing_json(native, vectors)),
        ]));
    }
    out.line(Table::render(&table));
    out.write_json("native", Some(vectors), rows);
}

/// Shard counts the multi-core sweep measures.
const JOBS_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn parallel_scaling(vectors: usize, out: &Output) {
    out.line(format!(
        "\n== multi-core scaling: batch runner, parallel+pt+trim, {vectors} vectors =="
    ));
    out.line("== (seq = single-thread loop; jobs=N shards the stream over N workers, ==");
    out.line("==  each zero-delay-seeded at its boundary; outputs stay bit-identical) ==");
    let mut table = Table::new(&[
        "circuit",
        "seq",
        "jobs=1",
        "jobs=2",
        "jobs=4",
        "jobs=8",
        "speedup@4",
        "speedup@8",
    ]);
    let mut rows = Vec::new();
    for circuit in [Iscas85::C432, Iscas85::C1355, Iscas85::C6288] {
        let nl = circuit.build();
        let stimulus = runner::stimulus(&nl, vectors);
        let sequential = runner::time_parallel(&nl, Optimization::PathTracingTrimming, vectors);
        let batched: Vec<Timing> = JOBS_SWEEP
            .iter()
            .map(|&jobs| runner::time_batch(&nl, &stimulus, jobs))
            .collect();
        table.row(vec![
            circuit.to_string(),
            best(sequential),
            best(batched[0]),
            best(batched[1]),
            best(batched[2]),
            best(batched[3]),
            ratio(sequential.min_s, batched[2].min_s),
            ratio(sequential.min_s, batched[3].min_s),
        ]);
        rows.push(Json::obj([
            ("circuit", Json::Str(circuit.to_string())),
            ("sequential", timing_json(sequential, vectors)),
            (
                "batched",
                Json::Arr(
                    JOBS_SWEEP
                        .iter()
                        .zip(&batched)
                        .map(|(&jobs, &timing)| {
                            Json::obj([
                                ("jobs", Json::UInt(jobs as u64)),
                                ("timing", timing_json(timing, vectors)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }
    out.line(Table::render(&table));
    out.write_json("parallel", Some(vectors), rows);
}

/// The engines the hotspot figure profiles: both compiled techniques,
/// at the optimization level each ships under by default.
const HOTSPOT_ENGINES: [(&str, Engine); 2] = [
    ("pc_set", Engine::PcSet),
    ("parallel_pt_trim", Engine::ParallelPathTracingTrimming),
];

fn hotspots(vectors: usize, out: &Output) {
    out.line(format!(
        "\n== hotspots: per-level self-time vs static cost model, {vectors} vectors =="
    ));
    out.line("== (corr = Pearson of measured level self_ns against the compiler's ==");
    out.line("==  static per-level op counts, over gate levels 1..=depth) ==");
    let mut table = Table::new(&[
        "circuit",
        "engine",
        "profiled",
        "attributed",
        "levels",
        "corr",
        "hottest",
    ]);
    let mut rows = Vec::new();
    for circuit in [Iscas85::C432, Iscas85::C1908, Iscas85::C6288] {
        let nl = circuit.build();
        let mut members = vec![("circuit".to_owned(), Json::Str(circuit.to_string()))];
        for (label, engine) in HOTSPOT_ENGINES {
            let (report, timing) = runner::hotspot_profile(&nl, engine, vectors);
            let attributed = report.measured.total_self_ns();
            let static_profile = report
                .static_profile
                .as_ref()
                .expect("compiled engines carry a static cost model");
            // Gate levels only: level 0 is per-vector setup, which the
            // static model prices differently from the sweep body.
            let gate_levels = 1..report
                .measured
                .levels
                .len()
                .min(static_profile.levels.len());
            let measured_ns: Vec<f64> = gate_levels
                .clone()
                .map(|l| report.measured.levels[l].self_ns as f64)
                .collect();
            let static_ops: Vec<f64> = gate_levels
                .clone()
                .map(|l| static_profile.levels[l].word_ops as f64)
                .collect();
            let corr = pearson(&measured_ns, &static_ops);
            let hottest = report
                .measured
                .levels
                .iter()
                .enumerate()
                .max_by_key(|(_, cost)| cost.self_ns)
                .map_or(0, |(level, _)| level);
            table.row(vec![
                circuit.to_string(),
                label.to_owned(),
                best(timing),
                format!(
                    "{:.0}%",
                    100.0 * attributed as f64 / report.span_ns.max(1) as f64
                ),
                report.measured.levels.len().to_string(),
                format!("{corr:+.3}"),
                format!("level_{hottest}"),
            ]);
            let level_rows: Vec<Json> = gate_levels
                .map(|l| {
                    Json::obj([
                        ("level", Json::UInt(l as u64)),
                        ("self_ns", Json::UInt(report.measured.levels[l].self_ns)),
                        ("word_ops", Json::UInt(report.measured.levels[l].word_ops)),
                        (
                            "static_word_ops",
                            Json::UInt(static_profile.levels[l].word_ops),
                        ),
                    ])
                })
                .collect();
            // Gate-watched cells: the profiled-run timing (a timer-
            // overhead regression shows up as lost throughput) and the
            // deterministic static totals. The per-level nanoseconds
            // and the correlation are too noisy to gate exactly, so
            // they ride inside `<label>_profile`, a shape `compare`
            // ignores additively.
            members.push((format!("{label}_profiled"), timing_json(timing, vectors)));
            members.push((
                format!("{label}_static_word_ops"),
                Json::UInt(static_profile.total().word_ops),
            ));
            members.push((
                format!("{label}_levels"),
                Json::UInt(report.measured.levels.len() as u64),
            ));
            members.push((
                format!("{label}_profile"),
                Json::obj([
                    ("correlation", Json::Float(corr)),
                    ("span_ns", Json::UInt(report.span_ns)),
                    ("attributed_ns", Json::UInt(attributed)),
                    ("levels", Json::Arr(level_rows)),
                ]),
            ));
        }
        rows.push(Json::Obj(members));
    }
    out.line(Table::render(&table));
    out.line(
        "(attributed = share of the profiled span the level timer assigned to levels; \
         the rest is guard bookkeeping credited to level 0)",
    );
    out.write_json("hotspots", Some(vectors), rows);
}

/// Pearson correlation coefficient of two equal-length series; 0.0
/// when either side has no variance (a flat series predicts nothing).
fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    let (xs, ys) = (&xs[..n], &ys[..n]);
    let mean = |s: &[f64]| s.iter().sum::<f64>() / n as f64;
    let (mx, my) = (mean(xs), mean(ys));
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

fn percent_gain(before: f64, after: f64) -> String {
    if before <= 0.0 {
        "-".to_owned()
    } else {
        format!("{:+.0}%", 100.0 * (1.0 - after / before))
    }
}

#[cfg(test)]
mod tests {
    use super::pearson;

    #[test]
    fn pearson_matches_known_series() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert_eq!(
            pearson(&[1.0, 1.0, 1.0], &[2.0, 4.0, 6.0]),
            0.0,
            "flat series"
        );
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0, "degenerate length");
    }
}
