//! The numbers the paper reports (SUN 3/260, 5,000 random vectors,
//! `/bin/time`, averaged over five runs), embedded so the `tables`
//! binary can print paper-vs-measured comparisons.
//!
//! Absolute seconds from 1990 hardware are obviously not comparable to a
//! modern machine; what must reproduce is the *shape*: orderings,
//! rough speedup factors, and where optimizations stop paying off.

use uds_netlist::generators::iscas::Iscas85;

/// One circuit's row of the paper's Fig. 19 (seconds).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Fig19Row {
    /// Interpreted event-driven, three-valued logic.
    pub interpreted_3v: f64,
    /// Interpreted event-driven, two-valued logic.
    pub interpreted_2v: f64,
    /// The PC-set method.
    pub pc_set: f64,
    /// The parallel technique, unoptimized.
    pub parallel: f64,
}

/// Fig. 19 as published.
pub fn fig19(circuit: Iscas85) -> Fig19Row {
    let (interpreted_3v, interpreted_2v, pc_set, parallel) = match circuit {
        Iscas85::C432 => (46.4, 41.2, 9.9, 3.4),
        Iscas85::C499 => (51.1, 44.3, 5.2, 4.4),
        Iscas85::C880 => (87.1, 78.1, 22.4, 8.1),
        Iscas85::C1355 => (177.2, 157.7, 84.9, 9.8),
        Iscas85::C1908 => (330.2, 295.9, 162.7, 54.3),
        Iscas85::C2670 => (368.2, 346.1, 89.9, 90.7),
        Iscas85::C3540 => (531.1, 479.1, 211.6, 122.2),
        Iscas85::C5315 => (1024.0, 894.7, 245.2, 176.0),
        Iscas85::C6288 => (9555.9, 8918.3, 1757.3, 369.3),
        Iscas85::C7552 => (1483.2, 1348.5, 395.2, 269.7),
    };
    Fig19Row {
        interpreted_3v,
        interpreted_2v,
        pc_set,
        parallel,
    }
}

/// One circuit's row of the paper's Fig. 20.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Fig20Row {
    /// Number of levels (time points, = depth + 1).
    pub levels: u32,
    /// 32-bit words per bit-field.
    pub words: u32,
    /// Unoptimized parallel technique (seconds).
    pub parallel: f64,
    /// With bit-field trimming (seconds).
    pub trimming: f64,
}

/// Fig. 20 as published.
pub fn fig20(circuit: Iscas85) -> Fig20Row {
    let (levels, words, parallel, trimming) = match circuit {
        Iscas85::C432 => (18, 1, 3.4, 3.3),
        Iscas85::C499 => (12, 1, 4.4, 4.4),
        Iscas85::C880 => (25, 1, 8.1, 8.1),
        Iscas85::C1355 => (25, 1, 9.8, 11.6),
        Iscas85::C1908 => (41, 2, 54.3, 37.0),
        Iscas85::C2670 => (33, 2, 90.7, 64.8),
        Iscas85::C3540 => (48, 2, 122.2, 97.7),
        Iscas85::C5315 => (50, 2, 176.0, 137.1),
        Iscas85::C6288 => (125, 4, 369.3, 266.8),
        Iscas85::C7552 => (44, 2, 269.7, 205.5),
    };
    Fig20Row {
        levels,
        words,
        parallel,
        trimming,
    }
}

/// One circuit's row of the paper's Fig. 21 (retained shifts).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fig21Row {
    /// Unoptimized: one shift per gate.
    pub unoptimized: usize,
    /// After path-tracing shift elimination.
    pub path_tracing: usize,
    /// After cycle-breaking shift elimination.
    pub cycle_breaking: usize,
}

/// Fig. 21 as published.
pub fn fig21(circuit: Iscas85) -> Fig21Row {
    let (unoptimized, path_tracing, cycle_breaking) = match circuit {
        Iscas85::C432 => (160, 65, 100),
        Iscas85::C499 => (202, 72, 96),
        Iscas85::C880 => (383, 140, 163),
        Iscas85::C1355 => (546, 223, 296),
        Iscas85::C1908 => (880, 437, 398),
        Iscas85::C2670 => (1269, 532, 461),
        Iscas85::C3540 => (1669, 827, 713),
        Iscas85::C5315 => (2307, 1123, 1060),
        Iscas85::C6288 => (2416, 1397, 1764),
        Iscas85::C7552 => (3513, 1875, 1830),
    };
    Fig21Row {
        unoptimized,
        path_tracing,
        cycle_breaking,
    }
}

/// One circuit's row of the paper's Fig. 24 (seconds). (The paper's
/// Fig. 23 numbers are a subset of the same comparison; the full Fig. 23
/// table did not survive in the available text, so measured values are
/// compared against Fig. 24 plus Fig. 23's prose claims.)
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Fig24Row {
    /// Unoptimized parallel technique.
    pub unoptimized: f64,
    /// Path-tracing shift elimination alone.
    pub path_tracing: f64,
    /// Path tracing combined with trimming.
    pub with_trimming: f64,
}

/// Fig. 24 as published.
pub fn fig24(circuit: Iscas85) -> Fig24Row {
    let (unoptimized, path_tracing, with_trimming) = match circuit {
        Iscas85::C432 => (3.4, 2.4, 2.4),
        Iscas85::C499 => (4.4, 2.9, 2.9),
        Iscas85::C880 => (8.1, 4.9, 5.0),
        Iscas85::C1355 => (9.8, 7.4, 7.4),
        Iscas85::C1908 => (54.3, 21.9, 18.1),
        Iscas85::C2670 => (90.7, 14.4, 14.1),
        Iscas85::C3540 => (122.2, 68.9, 58.4),
        Iscas85::C5315 => (176.0, 108.0, 91.4),
        Iscas85::C6288 => (369.3, 240.1, 196.9),
        Iscas85::C7552 => (269.7, 160.4, 133.4),
    };
    Fig24Row {
        unoptimized,
        path_tracing,
        with_trimming,
    }
}

/// §5 prose claims used as shape checks.
pub mod claims {
    /// "the PC-set method runs in one fourth the time required for an
    /// interpreted event simulation".
    pub const PC_SET_SPEEDUP: f64 = 4.0;
    /// "the parallel technique runs in about one tenth the time".
    pub const PARALLEL_SPEEDUP: f64 = 10.0;
    /// "a [zero-delay] compiled simulation runs in 1/23 the time of an
    /// interpreted simulation".
    pub const ZERO_DELAY_SPEEDUP: f64 = 23.0;
    /// Trimming improvement range: "from 20% to 36% with an average of
    /// 26%" (multi-word circuits only).
    pub const TRIMMING_AVG_IMPROVEMENT: f64 = 0.26;
    /// Shift elimination: "from 24% to 84% ... average performance
    /// increase is 47%" with trimming.
    pub const SHIFT_ELIM_TRIM_AVG_IMPROVEMENT: f64 = 0.47;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig19_averages_match_the_prose() {
        // Average speedups over the ten circuits should be near the
        // paper's "one fourth" and "one tenth".
        let mut pc = 0.0;
        let mut par = 0.0;
        for circuit in Iscas85::ALL {
            let row = fig19(circuit);
            pc += row.interpreted_3v / row.pc_set;
            par += row.interpreted_3v / row.parallel;
        }
        pc /= 10.0;
        par /= 10.0;
        assert!((3.0..8.0).contains(&pc), "pc-set speedup {pc}");
        assert!((8.0..16.0).contains(&par), "parallel speedup {par}");
    }

    #[test]
    fn fig20_trimming_helps_only_multiword() {
        for circuit in Iscas85::ALL {
            let row = fig20(circuit);
            if row.words == 1 {
                // Within noise on single-word circuits.
                assert!(
                    row.trimming >= row.parallel * 0.9,
                    "{circuit}: trimming should not help single-word fields"
                );
            } else {
                assert!(
                    row.trimming < row.parallel,
                    "{circuit}: trimming must help multi-word fields"
                );
            }
        }
    }

    #[test]
    fn fig21_unoptimized_equals_gate_count() {
        for circuit in Iscas85::ALL {
            assert_eq!(
                fig21(circuit).unoptimized,
                circuit.target().gates,
                "{circuit}"
            );
        }
    }

    #[test]
    fn fig24_optimizations_never_hurt() {
        for circuit in Iscas85::ALL {
            let row = fig24(circuit);
            assert!(row.path_tracing < row.unoptimized, "{circuit}");
            assert!(row.with_trimming <= row.path_tracing * 1.03, "{circuit}");
        }
    }

    #[test]
    fn fig20_word_counts_match_levels() {
        for circuit in Iscas85::ALL {
            let row = fig20(circuit);
            assert_eq!(row.words, row.levels.div_ceil(32), "{circuit}");
        }
    }
}
