//! Fixed-width plain-text tables for the `tables` binary.

/// A simple right-aligned table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let emit_row = |cells: &[String], out: &mut String| {
            for (i, (cell, width)) in cells.iter().zip(&widths).enumerate() {
                if i == 0 {
                    // First column left-aligned (circuit names).
                    out.push_str(&format!("{cell:<width$}"));
                } else {
                    out.push_str(&format!("  {cell:>width$}"));
                }
            }
            out.push('\n');
        };
        emit_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (columns - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit_row(row, &mut out);
        }
        out
    }
}

/// Formats seconds with millisecond resolution.
pub fn seconds(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a speedup/ratio.
pub fn ratio(numerator: f64, denominator: f64) -> String {
    if denominator <= 0.0 {
        "-".to_owned()
    } else {
        format!("{:.1}x", numerator / denominator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["circuit", "a", "bb"]);
        t.row(vec!["c432".into(), "1.0".into(), "2".into()]);
        t.row(vec!["c6288".into(), "10.25".into(), "3".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("circuit"));
        assert!(lines[2].starts_with("c432"));
        // All rows the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(seconds(1.23456), "1.235");
        assert_eq!(ratio(10.0, 2.0), "5.0x");
        assert_eq!(ratio(1.0, 0.0), "-");
    }
}
