//! The perf trend history: `tables trend --append HISTORY.ndjson FIG.json`.
//!
//! `tables compare` answers "did THIS run regress against the
//! baseline?". It cannot see a slope: five consecutive runs each 3 %
//! slower than the last all pass a 10 % gate while throughput quietly
//! erodes 14 %. The trend history closes that gap:
//!
//! 1. every `uds-bench-v1` figure document is folded into one
//!    append-only `uds-bench-trend-v1` NDJSON record — one line per
//!    figure per run, carrying each timing cell's **calibration
//!    normalized** throughput (`vectors_per_s / score`) keyed by the
//!    same `circuit/engine jN wM` identity `compare` uses, plus the
//!    geometric mean across the figure's cells;
//! 2. `tables trend HISTORY.ndjson` re-reads the whole history and
//!    flags **monotone erosion**: any cell (or figure geomean) whose
//!    last `window` samples are strictly decreasing with at least
//!    [`MIN_RUN`] points — a slope no single `compare` gate can see;
//! 3. with `--strict` a flagged erosion exits 1 (CI-fail), otherwise
//!    the report is informational and exits 0 so the artifact can
//!    accrue history before the gate has teeth.
//!
//! Calibration normalization is what makes records from different
//! hosts comparable at all: a run on a 2× faster machine lands at the
//! same normalized height, so a real 3 %/run erosion still shows as a
//! strictly decreasing series. Records without a fingerprint fall
//! back to score 1 (same convention as `compare`).

use std::collections::BTreeMap;

use uds_core::telemetry::json::Json;

use crate::compare::{parse_doc, Cell, CompareError};

/// Schema tag on every history line.
pub const TREND_SCHEMA: &str = "uds-bench-trend-v1";

/// Default number of most-recent samples the erosion detector looks at.
pub const DEFAULT_WINDOW: usize = 5;

/// Minimum strictly-decreasing run length that counts as erosion.
/// Two points are a delta, not a trend.
pub const MIN_RUN: usize = 3;

/// One appended history line: a figure document reduced to its
/// calibration-normalized throughput cells.
#[derive(Clone, PartialEq, Debug)]
pub struct TrendRecord {
    /// Which figure the source document reproduces.
    pub figure: String,
    /// Calibration score of the recording host (1.0 when the source
    /// document carried no fingerprint).
    pub score: f64,
    /// Build profile of the recording binary, when fingerprinted.
    pub profile: Option<String>,
    /// `CellKey` display string → normalized vectors/second. Only
    /// timing cells contribute; static/factor cells are `compare`'s
    /// exact-match territory and carry no slope.
    pub cells: BTreeMap<String, f64>,
    /// Geometric mean of the normalized cells (0 when none).
    pub geomean: f64,
}

impl TrendRecord {
    /// Folds one parsed `uds-bench-v1` document into a history record.
    ///
    /// # Errors
    ///
    /// [`CompareError`] if the document is not `uds-bench-v1` (same
    /// rejection `compare` applies — a schema bump must never be
    /// silently appended).
    pub fn from_doc(doc: &Json) -> Result<TrendRecord, CompareError> {
        let parsed = parse_doc(doc)?;
        let score = parsed.score.unwrap_or(1.0).max(1e-12);
        let mut cells = BTreeMap::new();
        for (key, cell) in &parsed.cells {
            if let Cell::Timing { vectors_per_s, .. } = cell {
                cells.insert(key.to_string(), vectors_per_s / score);
            }
        }
        let geomean = geometric_mean(cells.values().copied());
        Ok(TrendRecord {
            figure: parsed.figure,
            score,
            profile: parsed.profile,
            cells,
            geomean,
        })
    }

    /// Renders the record as one NDJSON line (no trailing newline).
    pub fn render(&self) -> String {
        let mut members: Vec<(String, Json)> = vec![
            ("schema".to_owned(), Json::Str(TREND_SCHEMA.to_owned())),
            ("figure".to_owned(), Json::Str(self.figure.clone())),
            ("score".to_owned(), Json::Float(self.score)),
        ];
        if let Some(profile) = &self.profile {
            members.push(("profile".to_owned(), Json::Str(profile.clone())));
        }
        let cells = self
            .cells
            .iter()
            .map(|(k, v)| (k.clone(), Json::Float(*v)))
            .collect::<Vec<_>>();
        members.push(("cells".to_owned(), Json::Obj(cells)));
        members.push(("geomean".to_owned(), Json::Float(self.geomean)));
        Json::Obj(members).render()
    }

    /// Parses one history line back into a record.
    ///
    /// # Errors
    ///
    /// [`CompareError`] on malformed JSON, a wrong/missing schema
    /// tag, or a missing figure — corrupt history must fail loudly,
    /// not silently shorten a series.
    pub fn parse(line: &str) -> Result<TrendRecord, CompareError> {
        let doc =
            Json::parse(line).map_err(|e| CompareError(format!("malformed trend line: {e:?}")))?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| CompareError("trend line has no `schema` member".into()))?;
        if schema != TREND_SCHEMA {
            return Err(CompareError(format!(
                "trend schema mismatch: expected `{TREND_SCHEMA}`, found `{schema}`"
            )));
        }
        let figure = doc
            .get("figure")
            .and_then(Json::as_str)
            .ok_or_else(|| CompareError("trend line has no `figure` member".into()))?
            .to_owned();
        let score = doc.get("score").and_then(Json::as_f64).unwrap_or(1.0);
        let profile = doc.get("profile").and_then(Json::as_str).map(str::to_owned);
        let mut cells = BTreeMap::new();
        if let Some(Json::Obj(members)) = doc.get("cells") {
            for (key, value) in members {
                if let Some(v) = value.as_f64() {
                    cells.insert(key.clone(), v);
                }
            }
        }
        let geomean = doc
            .get("geomean")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| geometric_mean(cells.values().copied()));
        Ok(TrendRecord {
            figure,
            score,
            profile,
            cells,
            geomean,
        })
    }
}

/// Parses a whole NDJSON history, skipping blank lines.
///
/// # Errors
///
/// [`CompareError`] naming the 1-based line of the first bad record.
pub fn parse_history(text: &str) -> Result<Vec<TrendRecord>, CompareError> {
    let mut history = Vec::new();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = TrendRecord::parse(line)
            .map_err(|e| CompareError(format!("history line {}: {}", index + 1, e)))?;
        history.push(record);
    }
    Ok(history)
}

/// One detected monotone slide.
#[derive(Clone, PartialEq, Debug)]
pub struct Erosion {
    /// Figure the sliding series belongs to.
    pub figure: String,
    /// Cell key, or `"geomean"` for the figure-level series.
    pub cell: String,
    /// The strictly-decreasing tail values, oldest first.
    pub values: Vec<f64>,
    /// Total drop across the run, percent of the oldest value.
    pub drop_pct: f64,
}

/// Scans a history for series whose last `window` samples erode
/// monotonically. Series are grouped per figure; each cell key forms
/// one series in append order, plus the figure geomean. A series
/// flags when its examined tail has ≥ [`MIN_RUN`] samples and every
/// step is strictly decreasing — individual `compare` gates can each
/// pass while this accumulates.
pub fn detect_erosion(history: &[TrendRecord], window: usize) -> Vec<Erosion> {
    let window = window.max(MIN_RUN);
    // figure → cell → series in append order.
    let mut series: BTreeMap<String, BTreeMap<String, Vec<f64>>> = BTreeMap::new();
    for record in history {
        let figure = series.entry(record.figure.clone()).or_default();
        for (cell, value) in &record.cells {
            figure.entry(cell.clone()).or_default().push(*value);
        }
        if !record.cells.is_empty() {
            figure
                .entry("geomean".to_owned())
                .or_default()
                .push(record.geomean);
        }
    }
    let mut erosions = Vec::new();
    for (figure, cells) in &series {
        for (cell, values) in cells {
            let tail = &values[values.len().saturating_sub(window)..];
            if tail.len() < MIN_RUN {
                continue;
            }
            if tail.windows(2).all(|pair| pair[1] < pair[0]) {
                let first = tail[0].max(1e-12);
                let drop_pct = (first - tail[tail.len() - 1]) / first * 100.0;
                erosions.push(Erosion {
                    figure: figure.clone(),
                    cell: cell.clone(),
                    values: tail.to_vec(),
                    drop_pct,
                });
            }
        }
    }
    erosions
}

/// Renders the human trend report: per-figure sample counts and any
/// detected erosions.
pub fn render_report(history: &[TrendRecord], erosions: &[Erosion]) -> String {
    let mut runs: BTreeMap<&str, usize> = BTreeMap::new();
    for record in history {
        *runs.entry(record.figure.as_str()).or_default() += 1;
    }
    let mut out = String::new();
    out.push_str(&format!(
        "trend history: {} records across {} figures\n",
        history.len(),
        runs.len()
    ));
    for (figure, count) in &runs {
        out.push_str(&format!("  {figure}: {count} runs\n"));
    }
    if erosions.is_empty() {
        out.push_str("no monotone erosion detected\n");
    } else {
        for erosion in erosions {
            let series = erosion
                .values
                .iter()
                .map(|v| format!("{v:.1}"))
                .collect::<Vec<_>>()
                .join(" -> ");
            out.push_str(&format!(
                "EROSION {}/{}: {} ({:.1}% over {} runs)\n",
                erosion.figure,
                erosion.cell,
                series,
                erosion.drop_pct,
                erosion.values.len()
            ));
        }
    }
    out
}

/// Geometric mean of an iterator of positive values; 0 when empty.
fn geometric_mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for value in values {
        log_sum += value.max(1e-12).ln();
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        (log_sum / count as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(figure: &str, seconds: f64, score: f64) -> Json {
        Json::parse(&format!(
            r#"{{"schema":"uds-bench-v1","figure":"{figure}","vectors":1000,
                "calibration":{{"score":{score},"profile":"release","word_bits":64}},
                "rows":[{{"circuit":"c432",
                          "parallel":{{"min_s":{seconds},"trimmed_mean_s":{seconds}}}}}]}}"#
        ))
        .expect("fixture doc parses")
    }

    fn record(figure: &str, seconds: f64, score: f64) -> TrendRecord {
        TrendRecord::from_doc(&doc(figure, seconds, score)).expect("fixture folds")
    }

    #[test]
    fn from_doc_normalizes_by_calibration_score() {
        // 1000 vectors / 0.5 s = 2000 v/s, score 2 → normalized 1000.
        let rec = record("fig19", 0.5, 2.0);
        assert_eq!(rec.figure, "fig19");
        let value = rec.cells["c432/parallel j1 w64"];
        assert!((value - 1000.0).abs() < 1e-6, "normalized {value}");
        assert!((rec.geomean - 1000.0).abs() < 1e-6);
        assert_eq!(rec.profile.as_deref(), Some("release"));
    }

    #[test]
    fn render_parse_round_trips() {
        let rec = record("fig19", 0.5, 2.0);
        let line = rec.render();
        assert!(line.contains(TREND_SCHEMA));
        let back = TrendRecord::parse(&line).expect("round trip parses");
        assert_eq!(back.figure, rec.figure);
        assert_eq!(back.cells.len(), rec.cells.len());
        let (a, b) = (
            back.cells["c432/parallel j1 w64"],
            rec.cells["c432/parallel j1 w64"],
        );
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn parse_rejects_wrong_schema_with_line_number() {
        let err = parse_history("\n{\"schema\":\"uds-bench-v1\"}\n").expect_err("rejects");
        assert!(err.0.contains("line 2"), "{}", err.0);
        assert!(err.0.contains("schema mismatch"), "{}", err.0);
    }

    #[test]
    fn strictly_decreasing_tail_flags_erosion_even_when_each_step_is_small() {
        // Each step is ~3% — every pairwise `compare` at 10% tolerance
        // would pass — but the series erodes monotonically.
        let history: Vec<TrendRecord> = [1000.0, 970.0, 941.0, 913.0, 885.0]
            .iter()
            .map(|v| record("fig19", 1000.0 / v, 1.0))
            .collect();
        let erosions = detect_erosion(&history, DEFAULT_WINDOW);
        assert!(
            erosions.iter().any(|e| e.cell == "c432/parallel j1 w64"),
            "{erosions:?}"
        );
        assert!(erosions.iter().any(|e| e.cell == "geomean"));
        let cell = erosions
            .iter()
            .find(|e| e.cell != "geomean")
            .expect("cell erosion");
        assert!(cell.drop_pct > 10.0, "cumulative drop {}", cell.drop_pct);
    }

    #[test]
    fn noisy_or_short_series_do_not_flag() {
        // Recovery mid-window breaks monotonicity.
        let noisy: Vec<TrendRecord> = [1000.0, 970.0, 990.0, 960.0]
            .iter()
            .map(|v| record("fig19", 1000.0 / v, 1.0))
            .collect();
        assert!(detect_erosion(&noisy, DEFAULT_WINDOW).is_empty());
        // Two points are a delta, not a trend.
        let short: Vec<TrendRecord> = [1000.0, 900.0]
            .iter()
            .map(|v| record("fig19", 1000.0 / v, 1.0))
            .collect();
        assert!(detect_erosion(&short, DEFAULT_WINDOW).is_empty());
    }

    #[test]
    fn window_limits_how_far_back_the_detector_looks() {
        // Long-ago rise followed by a 3-sample slide: window 3 flags,
        // because only the strictly-decreasing tail is examined.
        let history: Vec<TrendRecord> = [800.0, 1000.0, 960.0, 920.0]
            .iter()
            .map(|v| record("fig19", 1000.0 / v, 1.0))
            .collect();
        let erosions = detect_erosion(&history, 3);
        assert!(!erosions.is_empty());
        // Window 4 sees the rise and does not flag.
        assert!(detect_erosion(&history, 4).is_empty());
    }

    #[test]
    fn figures_form_independent_series() {
        let mut history = vec![
            record("fig19", 1.0, 1.0),
            record("fig20", 2.0, 1.0),
            record("fig19", 1.1, 1.0),
            record("fig20", 1.9, 1.0),
            record("fig19", 1.2, 1.0),
        ];
        // fig19 erodes (seconds rise → v/s fall); fig20 improves.
        let erosions = detect_erosion(&history, DEFAULT_WINDOW);
        assert!(erosions.iter().all(|e| e.figure == "fig19"), "{erosions:?}");
        assert!(!erosions.is_empty());
        // Report renders both figure counts and the erosion line.
        history.push(record("fig20", 1.8, 1.0));
        let report = render_report(&history, &erosions);
        assert!(report.contains("fig19: 3 runs"));
        assert!(report.contains("fig20: 3 runs"));
        assert!(report.contains("EROSION fig19/"));
    }

    #[test]
    fn geomean_of_empty_cells_is_zero() {
        assert_eq!(geometric_mean(std::iter::empty()), 0.0);
    }
}
