//! Measurement code shared by the `tables` binary and the Criterion
//! benches.
//!
//! Methodology mirrors §5 of the paper: each circuit is driven with
//! seeded random vectors; reported times exclude circuit compilation and
//! stimulus generation (the paper excludes reading vectors, printing
//! output, and compiling circuit descriptions). Each measurement runs
//! one untimed warmup pass (page faults, cache and branch-predictor
//! warming) and then [`timing_reps`] timed repetitions, reporting the
//! minimum, median, and outlier-trimmed mean — min is the least
//! noise-inflated estimate of the true cost, the median shows how
//! stable it was, and the trimmed mean is the statistic the
//! `tables compare` regression gate reads (DESIGN.md §16).
//!
//! Static metrics (word operations, retained shifts, levels/words) are
//! sourced from the compilers' own telemetry gauges (DESIGN.md §11)
//! rather than recomputed here, so the tables and `--stats` reports can
//! never disagree.

use std::time::Instant;

use uds_core::vectors::RandomVectors;
use uds_core::{
    run_batch, ActivityProfiler, DefaultEngineFactory, Engine, GuardedSimulator, Telemetry,
    WordWidth,
};
use uds_eventsim::zero_delay::{ZeroDelayCompiled, ZeroDelayInterpreted};
use uds_eventsim::ConventionalEventDriven;
use uds_netlist::generators::iscas::Iscas85;
use uds_netlist::{Logic3, Netlist, ResourceLimits};
use uds_parallel::{Optimization, ParallelSimulator};
use uds_pcset::PcSetSimulator;

/// Stimulus seed used everywhere, so every engine sees the same stream.
pub const STIMULUS_SEED: u64 = 0x5EED_1990;

/// Default timed repetitions per measurement (after one untimed warmup
/// pass). Override with the `UDS_BENCH_REPS` environment variable
/// (minimum 1) when recording baselines on a noisy host.
pub const TIMING_REPS: usize = 3;

/// Timed repetitions this process uses: [`TIMING_REPS`] unless
/// `UDS_BENCH_REPS` overrides it.
pub fn timing_reps() -> usize {
    std::env::var("UDS_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(TIMING_REPS)
}

/// One timing measurement over [`timing_reps`] repetitions.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Timing {
    /// Fastest repetition — the best estimate of the true cost.
    pub min_s: f64,
    /// Median repetition — how stable the measurement was.
    pub median_s: f64,
    /// Mean after dropping the fastest and slowest repetition (plain
    /// mean under three reps that would leave fewer than one sample) —
    /// the noise-aware statistic `tables compare` gates on: it ignores
    /// a single interference spike without letting the optimistic
    /// minimum hide a real slowdown.
    pub trimmed_mean_s: f64,
    /// Repetitions behind the statistics above.
    pub reps: usize,
}

impl Timing {
    /// Folds raw per-repetition samples into the reported statistics.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set.
    pub fn from_samples(mut samples: Vec<f64>) -> Timing {
        assert!(!samples.is_empty(), "at least one timing sample");
        samples.sort_by(f64::total_cmp);
        let reps = samples.len();
        let trimmed: &[f64] = if reps >= 3 {
            &samples[1..reps - 1]
        } else {
            &samples
        };
        Timing {
            min_s: samples[0],
            median_s: samples[reps / 2],
            trimmed_mean_s: trimmed.iter().sum::<f64>() / trimmed.len() as f64,
            reps,
        }
    }
}

/// Pre-generates `vectors` random input vectors for `netlist`.
pub fn stimulus(netlist: &Netlist, vectors: usize) -> Vec<Vec<bool>> {
    RandomVectors::new(netlist.primary_inputs().len(), STIMULUS_SEED)
        .take(vectors)
        .collect()
}

/// Runs `pass` once untimed (warmup), then [`timing_reps`] more times
/// under the clock.
pub fn time_passes(mut pass: impl FnMut()) -> Timing {
    pass();
    let samples: Vec<f64> = (0..timing_reps())
        .map(|_| {
            let start = Instant::now();
            pass();
            start.elapsed().as_secs_f64()
        })
        .collect();
    Timing::from_samples(samples)
}

/// Times `run` over all of `stimulus` (warmup + repetitions).
pub fn time_over(stimulus: &[Vec<bool>], mut run: impl FnMut(&[bool])) -> Timing {
    time_passes(|| {
        for vector in stimulus {
            run(vector);
        }
    })
}

/// Measured timings for one circuit under the four Fig. 19 techniques.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Fig19Measurement {
    pub interpreted_3v: Timing,
    pub interpreted_2v: Timing,
    pub pc_set: Timing,
    pub parallel: Timing,
}

/// Runs the Fig. 19 comparison on one circuit.
pub fn fig19(netlist: &Netlist, vectors: usize) -> Fig19Measurement {
    let stimulus = stimulus(netlist, vectors);
    let stimulus_3v: Vec<Vec<Logic3>> = stimulus
        .iter()
        .map(|v| v.iter().map(|&b| Logic3::from_bool(b)).collect())
        .collect();

    // The interpreted baselines use the *conventional* engine — timing
    // wheel, linked event records, per-pin activation — the cost model
    // of the simulators the paper compares against (DESIGN.md §4).
    let mut e3 = ConventionalEventDriven::<Logic3>::new(netlist).expect("combinational");
    let interpreted_3v = time_passes(|| {
        for vector in &stimulus_3v {
            e3.simulate_vector(vector);
        }
    });

    let mut e2 = ConventionalEventDriven::<bool>::new(netlist).expect("combinational");
    let interpreted_2v = time_over(&stimulus, |v| {
        e2.simulate_vector(v);
    });

    let mut pc = PcSetSimulator::compile(netlist).expect("combinational");
    let pc_set = time_over(&stimulus, |v| pc.simulate_vector(v));

    let mut par = ParallelSimulator::compile(netlist, Optimization::None).expect("combinational");
    let parallel = time_over(&stimulus, |v| par.simulate_vector(v));

    Fig19Measurement {
        interpreted_3v,
        interpreted_2v,
        pc_set,
        parallel,
    }
}

/// Measured timing for one parallel-technique optimization level.
pub fn time_parallel(netlist: &Netlist, optimization: Optimization, vectors: usize) -> Timing {
    let stimulus = stimulus(netlist, vectors);
    let mut sim = ParallelSimulator::compile(netlist, optimization).expect("combinational");
    time_over(&stimulus, |v| sim.simulate_vector(v))
}

/// Measured timing for the native engine: the emitted parallel
/// (pt+trim) C compiled with the system C compiler and `dlopen`-loaded
/// (DESIGN.md — the paper's actual deployment model, where the
/// generated C *is* the simulator). Returns `None` when no C compiler
/// is on `PATH`, so sweeps print a visible skip instead of failing.
/// Compilation (both the Rust-side netlist compile and the `cc` run)
/// happens outside the clock, like every other engine's compile.
pub fn time_native(netlist: &Netlist, vectors: usize) -> Option<Timing> {
    if !uds_core::compiler_available() {
        return None;
    }
    let stimulus = stimulus(netlist, vectors);
    let mut sim = uds_core::build_simulator(netlist, Engine::Native)
        .expect("native engine builds when a C compiler is present");
    Some(time_over(&stimulus, |v| {
        sim.simulate_vector(v);
    }))
}

/// Compiles `netlist` at `optimization` with a fresh telemetry registry
/// attached and returns the registry (holding the compile gauges).
pub fn parallel_telemetry(netlist: &Netlist, optimization: Optimization) -> Telemetry {
    let telemetry = Telemetry::new();
    ParallelSimulator::compile_probed(
        netlist,
        optimization,
        &ResourceLimits::unlimited(),
        &telemetry,
    )
    .expect("combinational");
    telemetry
}

/// Reads a gauge the compiler is contractually required to set.
fn gauge(telemetry: &Telemetry, name: &str) -> u64 {
    telemetry
        .gauge_value(name)
        .unwrap_or_else(|| panic!("compiler did not record gauge `{name}`"))
}

/// Straight-line word operations per vector for one optimization level —
/// the generated-code-size proxy, read from the compiler's
/// `parallel.<opt>.word_ops` telemetry gauge. On the paper's 1990 scalar
/// CPU, runtime was proportional to this statement count; the op-count
/// reduction is therefore the faithful reproduction of Figs. 20, 23 and
/// 24, while wall-clock on a modern out-of-order core compresses per-op
/// differences (see EXPERIMENTS.md).
pub fn word_ops(netlist: &Netlist, optimization: Optimization) -> usize {
    let telemetry = parallel_telemetry(netlist, optimization);
    gauge(
        &telemetry,
        &format!("parallel.{}.word_ops", optimization.key()),
    ) as usize
}

/// Fig. 20 static columns: levels (= depth + 1) and words per field,
/// from the `parallel.levels` / `parallel.field_words` gauges.
pub fn levels_and_words(netlist: &Netlist) -> (u32, u32) {
    let telemetry = parallel_telemetry(netlist, Optimization::None);
    (
        gauge(&telemetry, "parallel.levels") as u32,
        gauge(&telemetry, "parallel.field_words") as u32,
    )
}

/// Fig. 21/22 static analysis for one circuit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShiftAnalysis {
    /// Shifts in the unoptimized code: one per gate.
    pub unoptimized_shifts: usize,
    pub path_tracing_shifts: usize,
    pub cycle_breaking_shifts: usize,
    /// Maximum bit-field width (bits): unoptimized = levels.
    pub unoptimized_width: u32,
    pub path_tracing_width: u32,
    pub cycle_breaking_width: u32,
}

/// Runs both shift-elimination analyses on one circuit, reading the
/// results from the compilers' telemetry gauges.
pub fn shift_analysis(netlist: &Netlist) -> ShiftAnalysis {
    let telemetry = Telemetry::new();
    for optimization in [
        Optimization::None,
        Optimization::PathTracing,
        Optimization::CycleBreaking,
    ] {
        ParallelSimulator::compile_probed(
            netlist,
            optimization,
            &ResourceLimits::unlimited(),
            &telemetry,
        )
        .expect("combinational");
    }
    ShiftAnalysis {
        unoptimized_shifts: gauge(&telemetry, "parallel.none.shifts_retained") as usize,
        path_tracing_shifts: gauge(&telemetry, "parallel.pt.shifts_retained") as usize,
        cycle_breaking_shifts: gauge(&telemetry, "parallel.cb.shifts_retained") as usize,
        unoptimized_width: gauge(&telemetry, "parallel.none.max_width_bits") as u32,
        path_tracing_width: gauge(&telemetry, "parallel.pt.max_width_bits") as u32,
        cycle_breaking_width: gauge(&telemetry, "parallel.cb.max_width_bits") as u32,
    }
}

/// Times the batch runner at `jobs` workers over a pre-generated
/// stimulus: each pass forks a guarded parallel+pt+trim engine per
/// shard (zero-delay-seeded) and runs the whole stream. Compilation
/// happens once, outside the clock; the per-pass fork + prepass +
/// simulate + assemble *is* the measured multi-core cost.
pub fn time_batch(netlist: &Netlist, stimulus: &[Vec<bool>], jobs: usize) -> Timing {
    let prototype = GuardedSimulator::with_factory(
        netlist,
        ResourceLimits::unlimited(),
        &[Engine::ParallelPathTracingTrimming],
        Box::new(DefaultEngineFactory::with_word(WordWidth::W32)),
    )
    .expect("combinational");
    time_passes(|| {
        run_batch(netlist, &prototype, stimulus, jobs, None).expect("batch run succeeds");
    })
}

/// Measured activity factor of one circuit under the bench stimulus:
/// total toggles / (nets × depth × vectors), profiled word-parallel
/// from a monitoring parallel+pt+trim engine's bit-fields. The
/// event-driven technique's per-vector cost is proportional to this
/// fraction while the compiled techniques' cost is fixed, so it is the
/// context column for the Fig. 19 compiled-vs-interpreted comparison:
/// the lower the activity, the more work the event queue avoids and
/// the smaller the compiled speedup.
pub fn activity_factor(netlist: &Netlist, vectors: usize) -> f64 {
    let stimulus = stimulus(netlist, vectors);
    let levels = uds_netlist::levelize(netlist).expect("combinational");
    let mut sim =
        ParallelSimulator::compile_monitoring_all(netlist, Optimization::PathTracingTrimming)
            .expect("combinational");
    let mut profiler = ActivityProfiler::for_netlist(netlist, &levels);
    for vector in &stimulus {
        sim.simulate_vector(vector);
        profiler.record_vector(&sim);
    }
    profiler.activity_factor()
}

/// Profiled per-level measurement for one engine: one untimed warmup,
/// then [`timing_reps`] fully profiled repetitions of the whole
/// stimulus. The [`Timing`] is built from each repetition's profiled
/// span (so the compare gate watches the *profiled* throughput — a
/// timer-overhead regression shows up here), and the returned report is
/// the last repetition's merged per-level breakdown with the engine's
/// static cost model alongside.
pub fn hotspot_profile(
    netlist: &Netlist,
    engine: Engine,
    vectors: usize,
) -> (uds_core::hotspot::HotspotReport, Timing) {
    let stimulus = stimulus(netlist, vectors);
    let guard = GuardedSimulator::with_factory(
        netlist,
        ResourceLimits::unlimited(),
        &[engine],
        Box::new(DefaultEngineFactory::with_word(WordWidth::W32)),
    )
    .expect("combinational");
    let word_bits = WordWidth::W32.bits();
    let run = || {
        uds_core::hotspot::collect(netlist, &guard, &stimulus, 1, word_bits)
            .expect("profiled run succeeds")
    };
    let mut last = run(); // warmup
    let samples: Vec<f64> = (0..timing_reps())
        .map(|_| {
            last = run();
            last.span_ns as f64 / 1e9
        })
        .collect();
    (last, Timing::from_samples(samples))
}

/// Zero-delay comparison (the §5 aside): seconds for interpreted vs
/// compiled levelized zero-delay simulation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ZeroDelayMeasurement {
    pub interpreted: Timing,
    pub compiled: Timing,
}

/// Runs the zero-delay comparison on one circuit.
pub fn zero_delay(netlist: &Netlist, vectors: usize) -> ZeroDelayMeasurement {
    let stimulus = stimulus(netlist, vectors);
    let mut interp = ZeroDelayInterpreted::new(netlist).expect("combinational");
    let interpreted = time_over(&stimulus, |v| interp.simulate_vector(v));
    let mut comp = ZeroDelayCompiled::compile(netlist).expect("combinational");
    let compiled = time_over(&stimulus, |v| comp.simulate_vector(v));
    ZeroDelayMeasurement {
        interpreted,
        compiled,
    }
}

/// The circuits a bench sweep covers, with their built netlists.
pub fn suite() -> Vec<(Iscas85, Netlist)> {
    Iscas85::ALL
        .iter()
        .map(|&circuit| (circuit, circuit.build()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig19_measures_all_four_techniques() {
        let nl = Iscas85::C432.build();
        let m = fig19(&nl, 20);
        for timing in [m.interpreted_3v, m.interpreted_2v, m.pc_set, m.parallel] {
            assert!(timing.min_s >= 0.0);
            assert!(
                timing.median_s >= timing.min_s,
                "median cannot undercut the minimum"
            );
            assert!(
                timing.trimmed_mean_s >= timing.min_s,
                "trimmed mean cannot undercut the minimum"
            );
            assert_eq!(timing.reps, timing_reps());
        }
    }

    #[test]
    fn timing_statistics_from_samples() {
        // Five reps: trimmed mean drops the 0.1 outlier and the 0.01
        // minimum, leaving the stable middle.
        let t = Timing::from_samples(vec![0.03, 0.01, 0.1, 0.02, 0.04]);
        assert_eq!(t.min_s, 0.01);
        assert_eq!(t.median_s, 0.03);
        assert!(
            (t.trimmed_mean_s - 0.03).abs() < 1e-12,
            "{}",
            t.trimmed_mean_s
        );
        assert_eq!(t.reps, 5);
        // Three reps: the trimmed mean degenerates to the median.
        let t = Timing::from_samples(vec![3.0, 1.0, 2.0]);
        assert_eq!(
            (t.min_s, t.median_s, t.trimmed_mean_s, t.reps),
            (1.0, 2.0, 2.0, 3)
        );
        // Fewer than three: plain mean (nothing sane to trim).
        let t = Timing::from_samples(vec![1.0, 3.0]);
        assert_eq!(t.trimmed_mean_s, 2.0);
    }

    #[test]
    fn levels_and_words_match_calibration() {
        for (circuit, nl) in suite() {
            let (levels, words) = levels_and_words(&nl);
            if circuit != Iscas85::C6288 {
                assert_eq!(levels, circuit.target().depth + 1, "{circuit}");
            }
            assert_eq!(words as usize, circuit.target().words, "{circuit}");
        }
    }

    #[test]
    fn shift_analysis_orders_hold_on_c432() {
        let nl = Iscas85::C432.build();
        let analysis = shift_analysis(&nl);
        assert_eq!(analysis.unoptimized_shifts, 160);
        assert!(analysis.path_tracing_shifts < analysis.unoptimized_shifts);
        assert!(analysis.path_tracing_width <= analysis.unoptimized_width);
        assert!(analysis.cycle_breaking_width > analysis.path_tracing_width);
    }

    #[test]
    fn time_batch_measures_a_sharded_run() {
        let nl = Iscas85::C432.build();
        let stimulus = stimulus(&nl, 24);
        let timing = time_batch(&nl, &stimulus, 2);
        assert!(timing.min_s >= 0.0);
        assert!(timing.median_s >= timing.min_s);
    }

    #[test]
    fn activity_factor_is_in_the_unit_interval_and_deterministic() {
        let nl = Iscas85::C432.build();
        let a = activity_factor(&nl, 50);
        assert!(a > 0.0 && a < 1.0, "c432 under random stimulus: {a}");
        assert_eq!(a, activity_factor(&nl, 50), "same stimulus, same factor");
    }

    #[test]
    fn stimulus_is_deterministic() {
        let nl = Iscas85::C432.build();
        assert_eq!(stimulus(&nl, 5), stimulus(&nl, 5));
    }
}
