//! Measurement code shared by the `tables` binary and the Criterion
//! benches.
//!
//! Methodology mirrors §5 of the paper: each circuit is driven with
//! seeded random vectors; reported times exclude circuit compilation and
//! stimulus generation (the paper excludes reading vectors, printing
//! output, and compiling circuit descriptions).

use std::time::Instant;

use uds_core::vectors::RandomVectors;
use uds_eventsim::zero_delay::{ZeroDelayCompiled, ZeroDelayInterpreted};
use uds_eventsim::ConventionalEventDriven;
use uds_netlist::generators::iscas::Iscas85;
use uds_netlist::{levelize, Logic3, Netlist};
use uds_parallel::{Optimization, ParallelSimulator};
use uds_pcset::PcSetSimulator;

/// Stimulus seed used everywhere, so every engine sees the same stream.
pub const STIMULUS_SEED: u64 = 0x5EED_1990;

/// Pre-generates `vectors` random input vectors for `netlist`.
pub fn stimulus(netlist: &Netlist, vectors: usize) -> Vec<Vec<bool>> {
    RandomVectors::new(netlist.primary_inputs().len(), STIMULUS_SEED)
        .take(vectors)
        .collect()
}

/// Times `run` over all of `stimulus`, in seconds.
pub fn time_over(stimulus: &[Vec<bool>], mut run: impl FnMut(&[bool])) -> f64 {
    let start = Instant::now();
    for vector in stimulus {
        run(vector);
    }
    start.elapsed().as_secs_f64()
}

/// Measured seconds for one circuit under the four Fig. 19 techniques.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Fig19Measurement {
    pub interpreted_3v: f64,
    pub interpreted_2v: f64,
    pub pc_set: f64,
    pub parallel: f64,
}

/// Runs the Fig. 19 comparison on one circuit.
pub fn fig19(netlist: &Netlist, vectors: usize) -> Fig19Measurement {
    let stimulus = stimulus(netlist, vectors);
    let stimulus_3v: Vec<Vec<Logic3>> = stimulus
        .iter()
        .map(|v| v.iter().map(|&b| Logic3::from_bool(b)).collect())
        .collect();

    // The interpreted baselines use the *conventional* engine — timing
    // wheel, linked event records, per-pin activation — the cost model
    // of the simulators the paper compares against (DESIGN.md §4).
    let mut e3 = ConventionalEventDriven::<Logic3>::new(netlist).expect("combinational");
    let start = Instant::now();
    for vector in &stimulus_3v {
        e3.simulate_vector(vector);
    }
    let interpreted_3v = start.elapsed().as_secs_f64();

    let mut e2 = ConventionalEventDriven::<bool>::new(netlist).expect("combinational");
    let interpreted_2v = time_over(&stimulus, |v| {
        e2.simulate_vector(v);
    });

    let mut pc = PcSetSimulator::compile(netlist).expect("combinational");
    let pc_set = time_over(&stimulus, |v| pc.simulate_vector(v));

    let mut par = ParallelSimulator::compile(netlist, Optimization::None).expect("combinational");
    let parallel = time_over(&stimulus, |v| par.simulate_vector(v));

    Fig19Measurement {
        interpreted_3v,
        interpreted_2v,
        pc_set,
        parallel,
    }
}

/// Measured seconds for one parallel-technique optimization level.
pub fn time_parallel(netlist: &Netlist, optimization: Optimization, vectors: usize) -> f64 {
    let stimulus = stimulus(netlist, vectors);
    let mut sim = ParallelSimulator::compile(netlist, optimization).expect("combinational");
    time_over(&stimulus, |v| sim.simulate_vector(v))
}

/// Straight-line word operations per vector for one optimization level —
/// the generated-code-size proxy. On the paper's 1990 scalar CPU, runtime
/// was proportional to this statement count; the op-count reduction is
/// therefore the faithful reproduction of Figs. 20, 23 and 24, while
/// wall-clock on a modern out-of-order core compresses per-op
/// differences (see EXPERIMENTS.md).
pub fn word_ops(netlist: &Netlist, optimization: Optimization) -> usize {
    ParallelSimulator::compile(netlist, optimization)
        .expect("combinational")
        .stats()
        .word_ops
}

/// Fig. 20 static columns: levels (= depth + 1) and words per field.
pub fn levels_and_words(netlist: &Netlist) -> (u32, u32) {
    let depth = levelize(netlist).expect("combinational").depth;
    ((depth + 1), (depth + 1).div_ceil(32))
}

/// Fig. 21/22 static analysis for one circuit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShiftAnalysis {
    /// Shifts in the unoptimized code: one per gate.
    pub unoptimized_shifts: usize,
    pub path_tracing_shifts: usize,
    pub cycle_breaking_shifts: usize,
    /// Maximum bit-field width (bits): unoptimized = levels.
    pub unoptimized_width: u32,
    pub path_tracing_width: u32,
    pub cycle_breaking_width: u32,
}

/// Runs both shift-elimination analyses on one circuit.
pub fn shift_analysis(netlist: &Netlist) -> ShiftAnalysis {
    let levels = levelize(netlist).expect("combinational");
    let pt = uds_parallel::path_tracing::align(netlist).expect("combinational");
    let cb = uds_parallel::cycle_breaking::align(netlist).expect("combinational");
    let pt_stats = pt.stats(netlist, &levels);
    let cb_stats = cb.alignment.stats(netlist, &levels);
    ShiftAnalysis {
        unoptimized_shifts: netlist.gate_count(),
        path_tracing_shifts: pt_stats.retained_shifts,
        cycle_breaking_shifts: cb_stats.retained_shifts,
        unoptimized_width: levels.depth + 1,
        path_tracing_width: pt_stats.max_width_bits,
        cycle_breaking_width: cb_stats.max_width_bits,
    }
}

/// Zero-delay comparison (the §5 aside): seconds for interpreted vs
/// compiled levelized zero-delay simulation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ZeroDelayMeasurement {
    pub interpreted: f64,
    pub compiled: f64,
}

/// Runs the zero-delay comparison on one circuit.
pub fn zero_delay(netlist: &Netlist, vectors: usize) -> ZeroDelayMeasurement {
    let stimulus = stimulus(netlist, vectors);
    let mut interp = ZeroDelayInterpreted::new(netlist).expect("combinational");
    let interpreted = time_over(&stimulus, |v| interp.simulate_vector(v));
    let mut comp = ZeroDelayCompiled::compile(netlist).expect("combinational");
    let compiled = time_over(&stimulus, |v| comp.simulate_vector(v));
    ZeroDelayMeasurement {
        interpreted,
        compiled,
    }
}

/// The circuits a bench sweep covers, with their built netlists.
pub fn suite() -> Vec<(Iscas85, Netlist)> {
    Iscas85::ALL
        .iter()
        .map(|&circuit| (circuit, circuit.build()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig19_measures_all_four_techniques() {
        let nl = Iscas85::C432.build();
        let m = fig19(&nl, 20);
        for value in [m.interpreted_3v, m.interpreted_2v, m.pc_set, m.parallel] {
            assert!(value >= 0.0);
        }
    }

    #[test]
    fn levels_and_words_match_calibration() {
        for (circuit, nl) in suite() {
            let (levels, words) = levels_and_words(&nl);
            if circuit != Iscas85::C6288 {
                assert_eq!(levels, circuit.target().depth + 1, "{circuit}");
            }
            assert_eq!(words as usize, circuit.target().words, "{circuit}");
        }
    }

    #[test]
    fn shift_analysis_orders_hold_on_c432() {
        let nl = Iscas85::C432.build();
        let analysis = shift_analysis(&nl);
        assert_eq!(analysis.unoptimized_shifts, 160);
        assert!(analysis.path_tracing_shifts < analysis.unoptimized_shifts);
        assert!(analysis.path_tracing_width <= analysis.unoptimized_width);
        assert!(analysis.cycle_breaking_width > analysis.path_tracing_width);
    }

    #[test]
    fn stimulus_is_deterministic() {
        let nl = Iscas85::C432.build();
        assert_eq!(stimulus(&nl, 5), stimulus(&nl, 5));
    }
}
