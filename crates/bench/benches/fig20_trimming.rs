//! Criterion bench for the paper's Fig. 20: bit-field trimming on
//! multi-word circuits (single-word circuits are unaffected, as the
//! paper shows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uds_bench::runner::stimulus;
use uds_netlist::generators::iscas::Iscas85;
use uds_parallel::{Optimization, ParallelSimulator};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig20");
    group.sample_size(10);
    for circuit in [Iscas85::C1908, Iscas85::C6288] {
        let nl = circuit.build();
        let stim = stimulus(&nl, 100);
        for optimization in [Optimization::None, Optimization::Trimming] {
            group.bench_function(BenchmarkId::new(format!("{optimization}"), circuit), |b| {
                let mut sim = ParallelSimulator::compile(&nl, optimization).unwrap();
                b.iter(|| {
                    for v in &stim {
                        sim.simulate_vector(v);
                    }
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
