//! Criterion bench for the paper's Fig. 19: the four simulation
//! techniques on representative circuits (one single-word, one
//! multi-word). Vector counts are scaled down; the `tables` binary runs
//! the full 5,000-vector sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uds_bench::runner::stimulus;
use uds_eventsim::ConventionalEventDriven;
use uds_netlist::generators::iscas::Iscas85;
use uds_netlist::Logic3;
use uds_parallel::{Optimization, ParallelSimulator};
use uds_pcset::PcSetSimulator;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig19");
    group.sample_size(10);
    for circuit in [Iscas85::C432, Iscas85::C1908] {
        let nl = circuit.build();
        let stim = stimulus(&nl, 100);
        let stim3: Vec<Vec<Logic3>> = stim
            .iter()
            .map(|v| v.iter().map(|&b| Logic3::from_bool(b)).collect())
            .collect();

        group.bench_function(BenchmarkId::new("interpreted-3v", circuit), |b| {
            let mut sim = ConventionalEventDriven::<Logic3>::new(&nl).unwrap();
            b.iter(|| {
                for v in &stim3 {
                    sim.simulate_vector(v);
                }
            });
        });
        group.bench_function(BenchmarkId::new("interpreted-2v", circuit), |b| {
            let mut sim = ConventionalEventDriven::<bool>::new(&nl).unwrap();
            b.iter(|| {
                for v in &stim {
                    sim.simulate_vector(v);
                }
            });
        });
        group.bench_function(BenchmarkId::new("pc-set", circuit), |b| {
            let mut sim = PcSetSimulator::compile(&nl).unwrap();
            b.iter(|| {
                for v in &stim {
                    sim.simulate_vector(v);
                }
            });
        });
        group.bench_function(BenchmarkId::new("parallel", circuit), |b| {
            let mut sim = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
            b.iter(|| {
                for v in &stim {
                    sim.simulate_vector(v);
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
