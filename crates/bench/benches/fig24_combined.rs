//! Criterion bench for the paper's Fig. 24: path-tracing shift
//! elimination combined with bit-field trimming.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uds_bench::runner::stimulus;
use uds_netlist::generators::iscas::Iscas85;
use uds_parallel::{Optimization, ParallelSimulator};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig24");
    group.sample_size(10);
    for circuit in [Iscas85::C2670, Iscas85::C6288] {
        let nl = circuit.build();
        let stim = stimulus(&nl, 50);
        for optimization in [
            Optimization::None,
            Optimization::PathTracing,
            Optimization::PathTracingTrimming,
        ] {
            group.bench_function(BenchmarkId::new(format!("{optimization}"), circuit), |b| {
                let mut sim = ParallelSimulator::compile(&nl, optimization).unwrap();
                b.iter(|| {
                    for v in &stim {
                        sim.simulate_vector(v);
                    }
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
