//! Ablation bench: the PC-set method's 64-stream data-parallel mode vs
//! one-vector-at-a-time execution (the capability §6 credits the PC-set
//! method with over the parallel technique).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uds_bench::runner::stimulus;
use uds_netlist::generators::iscas::Iscas85;
use uds_pcset::PcSetSimulator;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_streams");
    group.sample_size(10);
    for circuit in [Iscas85::C432, Iscas85::C880] {
        let nl = circuit.build();
        let stim = stimulus(&nl, 128);
        let width = nl.primary_inputs().len();

        group.bench_function(BenchmarkId::new("sequential", circuit), |b| {
            let mut sim = PcSetSimulator::compile(&nl).unwrap();
            b.iter(|| {
                for vector in &stim {
                    sim.simulate_vector(vector);
                }
            });
        });
        // Same 128 vectors packed as 64 lanes x 2 steps.
        let packed: Vec<Vec<u64>> = (0..2)
            .map(|step| {
                (0..width)
                    .map(|i| {
                        let mut word = 0u64;
                        for lane in 0..64 {
                            word |= (stim[step * 64 + lane][i] as u64) << lane;
                        }
                        word
                    })
                    .collect()
            })
            .collect();
        group.bench_function(BenchmarkId::new("64-stream", circuit), |b| {
            let mut sim = PcSetSimulator::compile(&nl).unwrap();
            b.iter(|| {
                for words in &packed {
                    sim.simulate_streams(words);
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
