//! Criterion bench for the §5 zero-delay aside: compiled LCC vs
//! interpreted levelized simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uds_bench::runner::stimulus;
use uds_eventsim::zero_delay::{ZeroDelayCompiled, ZeroDelayInterpreted};
use uds_netlist::generators::iscas::Iscas85;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("zero_delay");
    group.sample_size(10);
    for circuit in [Iscas85::C880, Iscas85::C5315] {
        let nl = circuit.build();
        let stim = stimulus(&nl, 200);
        group.bench_function(BenchmarkId::new("interpreted", circuit), |b| {
            let mut sim = ZeroDelayInterpreted::new(&nl).unwrap();
            b.iter(|| {
                for v in &stim {
                    sim.simulate_vector(v);
                }
            });
        });
        group.bench_function(BenchmarkId::new("compiled", circuit), |b| {
            let mut sim = ZeroDelayCompiled::compile(&nl).unwrap();
            b.iter(|| {
                for v in &stim {
                    sim.simulate_vector(v);
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
