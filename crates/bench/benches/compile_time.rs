//! Ablation: how long each technique takes to *compile* a circuit
//! (netlist analysis + code generation). The paper excludes compile
//! time from its tables; this bench documents that it is modest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uds_netlist::generators::iscas::Iscas85;
use uds_parallel::{Optimization, ParallelSimulator};
use uds_pcset::PcSetSimulator;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_time");
    group.sample_size(10);
    for circuit in [Iscas85::C880, Iscas85::C7552] {
        let nl = circuit.build();
        group.bench_function(BenchmarkId::new("pc-set", circuit), |b| {
            b.iter(|| PcSetSimulator::compile(&nl).unwrap());
        });
        for optimization in [
            Optimization::None,
            Optimization::PathTracingTrimming,
            Optimization::CycleBreaking,
        ] {
            group.bench_function(
                BenchmarkId::new(format!("parallel-{optimization}"), circuit),
                |b| {
                    b.iter(|| ParallelSimulator::compile(&nl, optimization).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
