//! End-to-end tests for `tables compare` — the perf regression gate.
//!
//! Each test writes a pair of golden `uds-bench-v1` documents, runs the
//! real binary on them, and asserts on the exit code and the stream
//! routing: exit 0 = gate passes, 1 = regression or lost coverage,
//! 2 = usage error; `--json -` owns stdout while the human delta table
//! moves to stderr.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

/// Writes `text` under a per-test subdirectory of the target tmpdir
/// and returns the path.
fn fixture(test: &str, name: &str, text: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(test);
    fs::create_dir_all(&dir).expect("create fixture dir");
    let path = dir.join(name);
    fs::write(&path, text).expect("write fixture");
    path
}

/// Runs `tables compare` with the given extra args.
fn compare(old: &PathBuf, new: &PathBuf, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tables"))
        .arg("compare")
        .arg(old)
        .arg(new)
        .args(extra)
        .output()
        .expect("run tables compare")
}

/// A one-row fig19-like document: one timed engine and one static
/// metric, fingerprinted with `score`.
fn doc(seconds: f64, score: f64, ops: u64) -> String {
    format!(
        r#"{{"schema":"uds-bench-v1","figure":"fig19","vectors":500,
           "calibration":{{"score":{score},"alu_mops":215.0,"mem_mops":23.0,
                           "cores":1,"profile":"release","word_bits":32,"timing_reps":3}},
           "rows":[{{"circuit":"c432",
                     "parallel":{{"min_s":{seconds},"median_s":{seconds},
                                  "trimmed_mean_s":{seconds},"reps":3,
                                  "vectors_per_s":{vps}}},
                     "word_ops":{ops}}}]}}"#,
        vps = 500.0 / seconds,
    )
}

#[test]
fn identical_documents_exit_zero() {
    let old = fixture("identical", "old.json", &doc(0.05, 1.0, 160));
    let new = fixture("identical", "new.json", &doc(0.05, 1.0, 160));
    let out = compare(&old, &new, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Without a `-` stream flag, the human table owns stdout — the
    // same contract as every other tables subcommand.
    assert!(stdout.contains("gate: PASS"), "{stdout}");
    assert!(stdout.contains("unchanged"), "{stdout}");
}

#[test]
fn injected_regression_exits_one_and_streams_json() {
    let old = fixture("regression", "old.json", &doc(0.05, 1.0, 160));
    // 2x slower at the same calibration: a genuine regression.
    let new = fixture("regression", "new.json", &doc(0.10, 1.0, 160));
    let out = compare(&old, &new, &["--tolerance", "10", "--json", "-"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("gate: FAIL"), "{stderr}");
    assert!(stderr.contains("regressed"), "{stderr}");
    // `--json -` claims stdout for exactly one parseable document.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.trim_start().starts_with('{'),
        "stdout carries the JSON report: {stdout}"
    );
    assert!(
        stdout.contains("\"schema\":\"uds-bench-compare-v1\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"gate\":\"fail\""), "{stdout}");
}

#[test]
fn noise_within_tolerance_exits_zero() {
    let old = fixture("noise", "old.json", &doc(0.050, 1.0, 160));
    let new = fixture("noise", "new.json", &doc(0.054, 1.0, 160)); // ~7.4% slower
    let out = compare(&old, &new, &["--tolerance", "10"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn calibration_ratio_normalizes_a_faster_host() {
    let old = fixture("calib", "old.json", &doc(0.06, 1.0, 160));
    // The new host fingerprints 2x faster and the run was 2x faster:
    // normalized throughput is unchanged.
    let new = fixture("calib", "new.json", &doc(0.03, 2.0, 160));
    let out = compare(&old, &new, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("calibration ratio 2.000"), "{stdout}");
    // Same 2x host, raw time unimproved → normalized throughput
    // halved → regression.
    let lazy = fixture("calib", "lazy.json", &doc(0.06, 2.0, 160));
    let out = compare(&old, &lazy, &[]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn missing_rows_fail_and_new_rows_pass() {
    let two = r#"{"schema":"uds-bench-v1","figure":"fig21","rows":[
        {"circuit":"c432","shifts":160},{"circuit":"c499","shifts":200}]}"#;
    let one = r#"{"schema":"uds-bench-v1","figure":"fig21","rows":[
        {"circuit":"c432","shifts":160}]}"#;
    let two_p = fixture("coverage", "two.json", two);
    let one_p = fixture("coverage", "one.json", one);
    let shrunk = compare(&two_p, &one_p, &[]);
    assert_eq!(shrunk.status.code(), Some(1), "lost coverage fails");
    assert!(String::from_utf8_lossy(&shrunk.stdout).contains("missing"));
    let grown = compare(&one_p, &two_p, &[]);
    assert_eq!(grown.status.code(), Some(0), "new coverage passes");
}

#[test]
fn schema_mismatch_is_a_usage_error() {
    let good = fixture("schema", "good.json", &doc(0.05, 1.0, 160));
    let bad = fixture(
        "schema",
        "bad.json",
        &doc(0.05, 1.0, 160).replace("uds-bench-v1", "uds-bench-v2"),
    );
    let out = compare(&good, &bad, &[]);
    assert_eq!(out.status.code(), Some(2), "schema drift is usage-class");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("schema mismatch"), "{stderr}");
}

#[test]
fn unreadable_input_and_stray_tolerance_are_usage_errors() {
    let good = fixture("usage", "good.json", &doc(0.05, 1.0, 160));
    let absent = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("usage/absent.json");
    let out = compare(&good, &absent, &[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    // One positional short of a comparison.
    let out = Command::new(env!("CARGO_BIN_EXE_tables"))
        .args(["compare", good.to_str().unwrap()])
        .output()
        .expect("run tables compare");
    assert_eq!(out.status.code(), Some(2));

    // --tolerance outside `compare` is rejected, not ignored.
    let out = Command::new(env!("CARGO_BIN_EXE_tables"))
        .args(["fig21", "--tolerance", "10"])
        .output()
        .expect("run tables");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn delta_report_file_lands_next_to_the_cwd() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("delta_file");
    fs::create_dir_all(&dir).expect("create cwd");
    let old = fixture("delta_file", "old.json", &doc(0.05, 1.0, 160));
    let new = fixture("delta_file", "new.json", &doc(0.05, 1.0, 161));
    let out = Command::new(env!("CARGO_BIN_EXE_tables"))
        .current_dir(&dir)
        .arg("compare")
        .arg(&old)
        .arg(&new)
        .arg("--json")
        .output()
        .expect("run tables compare");
    // The static word_ops cell drifted: deterministic metrics carry
    // zero tolerance.
    assert_eq!(out.status.code(), Some(1));
    let report = fs::read_to_string(dir.join("DELTA_fig19.json")).expect("delta file");
    assert!(report.contains("\"gate\":\"fail\""), "{report}");
    assert!(report.contains("word_ops"), "{report}");
}
