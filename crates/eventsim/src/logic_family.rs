//! The logic-family abstraction that lets one event-driven engine serve
//! both the two-valued and the three-valued baselines.

use uds_netlist::{GateKind, Logic3};

/// A signal value domain with gate evaluation.
///
/// Implemented for `bool` (two-valued) and [`Logic3`] (three-valued
/// Kleene logic). The paper uses both: "three-valued logic is the more
/// natural model for event-driven simulation", while the two-valued
/// results demonstrate that the compiled techniques' speedups "are not
/// due to the difference in logic models".
pub trait LogicFamily: Copy + Eq + std::fmt::Debug + Send + Sync + 'static {
    /// Short name used in reports (`"2-value"`, `"3-value"`).
    const NAME: &'static str;

    /// The power-up value of every net before the first vector.
    fn initial() -> Self;

    /// Converts a two-valued stimulus bit.
    fn from_bool(bit: bool) -> Self;

    /// Evaluates one gate on scalar values of this family.
    fn eval(kind: GateKind, inputs: &[Self]) -> Self;
}

impl LogicFamily for bool {
    const NAME: &'static str = "2-value";

    fn initial() -> Self {
        false
    }

    fn from_bool(bit: bool) -> Self {
        bit
    }

    fn eval(kind: GateKind, inputs: &[Self]) -> Self {
        kind.eval_bits(inputs)
    }
}

impl LogicFamily for Logic3 {
    const NAME: &'static str = "3-value";

    fn initial() -> Self {
        Logic3::X
    }

    fn from_bool(bit: bool) -> Self {
        Logic3::from_bool(bit)
    }

    fn eval(kind: GateKind, inputs: &[Self]) -> Self {
        kind.eval_logic3(inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_agree_on_known_values() {
        for kind in [GateKind::And, GateKind::Nor, GateKind::Xor] {
            for pattern in 0u8..4 {
                let bits = [pattern & 1 != 0, pattern & 2 != 0];
                let l3: Vec<Logic3> = bits.iter().map(|&b| Logic3::from_bool(b)).collect();
                assert_eq!(
                    Logic3::from_bool(bool::eval(kind, &bits)),
                    Logic3::eval(kind, &l3)
                );
            }
        }
    }

    #[test]
    fn initial_values_differ_by_family() {
        assert!(!<bool as LogicFamily>::initial());
        assert_eq!(<Logic3 as LogicFamily>::initial(), Logic3::X);
    }
}
