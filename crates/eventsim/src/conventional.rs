//! A *conventional* interpreted event-driven simulator — the cost model
//! of the simulators the paper benchmarks against.
//!
//! [`crate::EventDrivenUnitDelay`] is a modern, tightly-engineered
//! two-bucket engine; a 1990 general-purpose interpreted simulator looked
//! different, and its per-event constant factor is what compiled
//! simulation beats. This engine reproduces that classic structure
//! faithfully:
//!
//! * a **timing wheel** of time slots, each a linked list of event
//!   records drawn from a free-list pool (pointer chasing per event);
//! * **per-pin activation**: a gate with several changed inputs at one
//!   time is re-evaluated once per triggering event — there is no
//!   once-per-timestep memoization;
//! * **event cancellation**: scheduling checks the pending event for the
//!   target net and overwrites its value in place, as classic
//!   implementations did, rather than deduplicating at dequeue only;
//! * **table-driven gate models**: every evaluation goes through a
//!   function pointer fetched from a per-gate model table, the way
//!   interpreted simulators bind primitive models (no inlining, an
//!   indirect call per evaluation).
//!
//! Same logic families and the same observable results as the optimized
//! engine (a cross-check test enforces it); only the interpretive
//! overhead differs. DESIGN.md §4 documents why Fig. 19's baseline
//! columns are measured with this engine.

use uds_netlist::{levelize, LevelizeError, NetId, Netlist};

use crate::unit_delay::SimStats;
use crate::LogicFamily;

const NIL: u32 = u32::MAX;

/// A primitive gate model: interpreted simulators bind these through a
/// table of function pointers, one slot per gate.
type GateModel<L> = fn(&[L]) -> L;

fn model_for<L: LogicFamily>(kind: uds_netlist::GateKind) -> GateModel<L> {
    use uds_netlist::GateKind;
    match kind {
        GateKind::And => |v| L::eval(GateKind::And, v),
        GateKind::Nand => |v| L::eval(GateKind::Nand, v),
        GateKind::Or => |v| L::eval(GateKind::Or, v),
        GateKind::Nor => |v| L::eval(GateKind::Nor, v),
        GateKind::Xor => |v| L::eval(GateKind::Xor, v),
        GateKind::Xnor => |v| L::eval(GateKind::Xnor, v),
        GateKind::Not => |v| L::eval(GateKind::Not, v),
        GateKind::Buf => |v| L::eval(GateKind::Buf, v),
        GateKind::Const0 => |v| L::eval(GateKind::Const0, v),
        GateKind::Const1 => |v| L::eval(GateKind::Const1, v),
        GateKind::Dff => unreachable!("levelize rejects sequential netlists"),
    }
}

#[derive(Clone, Debug)]
struct Event<L> {
    net: NetId,
    value: L,
    next: u32,
}

/// Conventional interpreted event-driven unit-delay simulator (timing
/// wheel + linked event records + per-pin activation).
#[derive(Clone, Debug)]
pub struct ConventionalEventDriven<L: LogicFamily> {
    netlist: Netlist,
    value: Vec<L>,
    initial_state: Vec<L>,
    /// Timing wheel: head event index per slot.
    wheel: Vec<u32>,
    pool: Vec<Event<L>>,
    free_head: u32,
    /// Per net: index of the pending (scheduled, not yet dequeued) event,
    /// and the time it is scheduled for.
    pending_event: Vec<u32>,
    pending_time: Vec<u32>,
    /// Per net: the value the net will hold once all scheduled events
    /// have been applied — the "last scheduled value" that classic
    /// simulators filter against.
    last_scheduled: Vec<L>,
    /// Per-gate model table (function pointers, as in table-driven
    /// interpreted simulators).
    models: Vec<GateModel<L>>,
}

impl<L: LogicFamily> ConventionalEventDriven<L> {
    /// Builds a simulator; the power-up state is the circuit settled
    /// under all-[`LogicFamily::initial`] inputs, like the optimized
    /// engine's.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] for cyclic or sequential netlists.
    pub fn new(netlist: &Netlist) -> Result<Self, LevelizeError> {
        let levels = levelize(netlist)?;
        let mut initial_state = vec![L::initial(); netlist.net_count()];
        for &gid in &levels.topo_gates {
            let gate = netlist.gate(gid);
            let inputs: Vec<L> = gate.inputs.iter().map(|&n| initial_state[n]).collect();
            initial_state[gate.output] = L::eval(gate.kind, &inputs);
        }
        // Wheel size: events only ever land one unit ahead, but keep a
        // full revolution of depth + 2 slots like a general simulator.
        let wheel_slots = levels.depth as usize + 2;
        let models = netlist
            .gates()
            .iter()
            .map(|g| model_for::<L>(g.kind))
            .collect();
        Ok(ConventionalEventDriven {
            value: initial_state.clone(),
            last_scheduled: initial_state.clone(),
            initial_state,
            models,
            wheel: vec![NIL; wheel_slots],
            pool: Vec::new(),
            free_head: NIL,
            pending_event: vec![NIL; netlist.net_count()],
            pending_time: vec![NIL; netlist.net_count()],
            netlist: netlist.clone(),
        })
    }

    /// The current value of a net.
    pub fn value(&self, net: NetId) -> L {
        self.value[net]
    }

    /// Current values of all nets, indexed by [`NetId`].
    pub fn values(&self) -> &[L] {
        &self.value
    }

    /// Returns every net to the consistent power-up state.
    pub fn reset(&mut self) {
        self.value.copy_from_slice(&self.initial_state);
        self.wheel.fill(NIL);
        self.pool.clear();
        self.free_head = NIL;
        self.pending_event.fill(NIL);
        self.pending_time.fill(NIL);
        self.last_scheduled.copy_from_slice(&self.initial_state);
    }

    /// Simulates one input vector to settlement.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary input count.
    pub fn simulate_vector(&mut self, inputs: &[L]) -> SimStats {
        assert_eq!(
            inputs.len(),
            self.netlist.primary_inputs().len(),
            "input vector length must match the primary input count"
        );
        let mut stats = SimStats::default();

        let primary_inputs: Vec<NetId> = self.netlist.primary_inputs().to_vec();
        for (&pi, &bit) in primary_inputs.iter().zip(inputs) {
            if self.value[pi] != bit {
                self.schedule(0, pi, bit);
            }
        }

        let mut time = 0u32;
        let mut remaining = self.count_scheduled();
        while remaining > 0 {
            let slot = (time as usize) % self.wheel.len();
            let mut head = std::mem::replace(&mut self.wheel[slot], NIL);
            while head != NIL {
                let index = head;
                let event = self.pool[head as usize].clone();
                self.release(head);
                head = event.next;
                remaining -= 1;
                // Clear the pending pointer only if it still refers to
                // THIS record: the net may already have a newer event
                // pending one time unit ahead (scheduled while an earlier
                // event in this same slot re-evaluated its driver), and
                // that bookkeeping must survive.
                if self.pending_event[event.net] == index {
                    self.pending_event[event.net] = NIL;
                    self.pending_time[event.net] = NIL;
                }
                if self.value[event.net] == event.value {
                    continue; // cancelled: no actual change
                }
                self.value[event.net] = event.value;
                stats.events += 1;
                stats.settle_time = time;
                // Per-pin activation: every fanout gate is evaluated for
                // every triggering event.
                let fanout: Vec<_> = self.netlist.fanout(event.net).to_vec();
                for gate in fanout {
                    let gate_ref = self.netlist.gate(gate);
                    let model = self.models[gate.index()];
                    let mut scratch = [L::initial(); 16];
                    let new_out = if gate_ref.inputs.len() <= scratch.len() {
                        for (slot, &input) in scratch.iter_mut().zip(&gate_ref.inputs) {
                            *slot = self.value[input];
                        }
                        model(&scratch[..gate_ref.inputs.len()])
                    } else {
                        let values: Vec<L> =
                            gate_ref.inputs.iter().map(|&n| self.value[n]).collect();
                        model(&values)
                    };
                    stats.gate_evaluations += 1;
                    let out = gate_ref.output;
                    // Overwrites and filtered no-changes leave `remaining`
                    // untouched; only fresh records add to it.
                    if self.schedule_or_cancel(time + 1, out, new_out) {
                        remaining += 1;
                    }
                }
            }
            time += 1;
        }
        stats
    }

    fn count_scheduled(&self) -> usize {
        let mut count = 0;
        for &head in &self.wheel {
            let mut cursor = head;
            while cursor != NIL {
                count += 1;
                cursor = self.pool[cursor as usize].next;
            }
        }
        count
    }

    /// Schedules `net := value` at `time`, allocating an event record.
    fn schedule(&mut self, time: u32, net: NetId, value: L) {
        let slot = (time as usize) % self.wheel.len();
        let index = self.allocate(Event {
            net,
            value,
            next: self.wheel[slot],
        });
        self.wheel[slot] = index;
        self.pending_event[net] = index;
        self.pending_time[net] = time;
        self.last_scheduled[net] = value;
    }

    /// Classic schedule-with-cancellation: if an event for `net` is
    /// already pending at `time`, overwrite its value in place (no new
    /// record); returns whether a new record was created.
    fn schedule_or_cancel(&mut self, time: u32, net: NetId, value: L) -> bool {
        if self.pending_time[net] == time {
            let index = self.pending_event[net];
            self.pool[index as usize].value = value;
            self.last_scheduled[net] = value;
            return false;
        }
        if value == self.last_scheduled[net] {
            // No change relative to the last scheduled value: filtered at
            // source, as conventional simulators do.
            return false;
        }
        self.schedule(time, net, value);
        true
    }

    fn allocate(&mut self, event: Event<L>) -> u32 {
        if self.free_head != NIL {
            let index = self.free_head;
            self.free_head = self.pool[index as usize].next;
            self.pool[index as usize] = event;
            index
        } else {
            let index = self.pool.len() as u32;
            self.pool.push(event);
            index
        }
    }

    fn release(&mut self, index: u32) {
        self.pool[index as usize].next = self.free_head;
        self.free_head = index;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventDrivenUnitDelay;
    use uds_netlist::generators::iscas::c17;
    use uds_netlist::Logic3;

    #[test]
    fn agrees_with_the_optimized_engine_exhaustively() {
        let nl = c17();
        let mut conventional = ConventionalEventDriven::<bool>::new(&nl).unwrap();
        let mut optimized = EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        for pattern in 0u32..32 {
            for follow_up in 0u32..32 {
                for p in [pattern, follow_up] {
                    let inputs: Vec<bool> = (0..5).map(|i| p >> i & 1 != 0).collect();
                    conventional.simulate_vector(&inputs);
                    optimized.simulate_vector(&inputs);
                    for net in nl.net_ids() {
                        assert_eq!(
                            conventional.value(net),
                            optimized.value(net),
                            "{net} after {pattern:05b}->{follow_up:05b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn three_valued_model_works() {
        let nl = c17();
        let mut sim = ConventionalEventDriven::<Logic3>::new(&nl).unwrap();
        let stats = sim.simulate_vector(&[Logic3::One; 5]);
        assert!(stats.events > 0);
        for &po in nl.primary_outputs() {
            assert_ne!(sim.value(po), Logic3::X, "resolved after full drive");
        }
    }

    #[test]
    fn per_pin_activation_costs_more_evaluations() {
        // On a gate whose inputs change together, the conventional engine
        // evaluates once per pin event; the optimized engine once.
        use uds_netlist::{GateKind, NetlistBuilder};
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let c = b.input("c");
        let x = b.gate(GateKind::Not, &[a], "x").unwrap();
        let y = b.gate(GateKind::Not, &[c], "y").unwrap();
        let z = b.gate(GateKind::And, &[x, y], "z").unwrap();
        b.output(z);
        let nl = b.finish().unwrap();
        let mut conventional = ConventionalEventDriven::<bool>::new(&nl).unwrap();
        let mut optimized = EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        let stats_c = conventional.simulate_vector(&[true, true]);
        let stats_o = optimized.simulate_vector(&[true, true]);
        assert!(stats_c.gate_evaluations > stats_o.gate_evaluations);
    }

    #[test]
    fn stable_vector_schedules_nothing() {
        let nl = c17();
        let mut sim = ConventionalEventDriven::<bool>::new(&nl).unwrap();
        sim.simulate_vector(&[true; 5]);
        let stats = sim.simulate_vector(&[true; 5]);
        assert_eq!(stats.events, 0);
        assert_eq!(stats.gate_evaluations, 0);
    }

    #[test]
    fn reset_restores_power_up() {
        let nl = c17();
        let mut sim = ConventionalEventDriven::<bool>::new(&nl).unwrap();
        let before: Vec<bool> = nl.net_ids().map(|n| sim.value(n)).collect();
        sim.simulate_vector(&[true; 5]);
        sim.reset();
        let after: Vec<bool> = nl.net_ids().map(|n| sim.value(n)).collect();
        assert_eq!(before, after);
    }
}
