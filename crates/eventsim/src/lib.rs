//! Interpreted simulation baselines.
//!
//! The paper's Fig. 19 compares its compiled techniques against
//! "conventional unit-delay event-driven simulators, which used a
//! three-valued and a two-valued logic model respectively", and §5 adds a
//! zero-delay aside (compiled LCC ≈ 1/23 of interpreted). This crate
//! implements those baselines:
//!
//! * [`EventDrivenUnitDelay`] — a classic interpreted event-driven
//!   unit-delay simulator, generic over the logic family
//!   ([`LogicFamily`]): `bool` for the two-valued model, `Logic3` for the
//!   three-valued model;
//! * [`zero_delay::ZeroDelayInterpreted`] and
//!   [`zero_delay::ZeroDelayCompiled`] — levelized zero-delay simulation,
//!   interpreted vs compiled-to-straight-line-ops.
//!
//! # Example
//!
//! ```
//! use uds_netlist::generators::iscas::c17;
//! use uds_netlist::NetId;
//! use uds_eventsim::EventDrivenUnitDelay;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nl = c17();
//! let mut sim = EventDrivenUnitDelay::<bool>::new(&nl)?;
//! let stats = sim.simulate_vector(&[true, false, true, false, true]);
//! assert!(stats.gate_evaluations > 0);
//! # Ok(())
//! # }
//! ```

mod conventional;
mod logic_family;
mod unit_delay;
pub mod zero_delay;

pub use conventional::ConventionalEventDriven;
pub use logic_family::LogicFamily;
pub use unit_delay::{EventDrivenUnitDelay, SimStats};
pub use zero_delay::{ZeroDelayCompileError, ZeroDelayCompiled};
