//! Zero-delay levelized simulation, interpreted and compiled.
//!
//! §5 of the paper puts the unit-delay results in perspective: "our
//! results for zero-delay simulation show that on the average a compiled
//! simulation runs in 1/23 the time of an interpreted simulation". These
//! two simulators regenerate that aside:
//!
//! * [`ZeroDelayInterpreted`] walks the netlist data structures every
//!   vector: per-gate fan-in gathering, dynamic dispatch on the kind —
//!   the classic interpreted levelized simulator;
//! * [`ZeroDelayCompiled`] lowers the netlist once into a flat
//!   straight-line program of fixed-shape ops over a dense value arena
//!   (the in-process equivalent of the paper's generated C of Fig. 1) and
//!   replays that program per vector.

use std::fmt;

use uds_netlist::{levelize, GateKind, LevelizeError, NetId, Netlist};

/// Error returned by [`ZeroDelayCompiled::compile`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ZeroDelayCompileError {
    /// The netlist cannot be levelized (cycle or flip-flop).
    Levelize(LevelizeError),
    /// The netlist's total pin count overflows the `u32` operand pool —
    /// a structural impossibility for the compiled program, not a
    /// crash-worthy one.
    PinCountOverflow {
        /// The offending pin count.
        pins: usize,
    },
}

impl fmt::Display for ZeroDelayCompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZeroDelayCompileError::Levelize(err) => write!(f, "{err}"),
            ZeroDelayCompileError::PinCountOverflow { pins } => write!(
                f,
                "netlist has {pins} pins, more than the compiled operand pool can address"
            ),
        }
    }
}

impl std::error::Error for ZeroDelayCompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ZeroDelayCompileError::Levelize(err) => Some(err),
            ZeroDelayCompileError::PinCountOverflow { .. } => None,
        }
    }
}

impl From<LevelizeError> for ZeroDelayCompileError {
    fn from(err: LevelizeError) -> Self {
        ZeroDelayCompileError::Levelize(err)
    }
}

/// A primitive gate model bound through a function-pointer table, as in
/// table-driven interpreted simulators (see `ConventionalEventDriven`).
type GateModel = fn(&[bool]) -> bool;

fn model_for(kind: GateKind) -> GateModel {
    match kind {
        GateKind::And => |v| GateKind::And.eval_bits(v),
        GateKind::Nand => |v| GateKind::Nand.eval_bits(v),
        GateKind::Or => |v| GateKind::Or.eval_bits(v),
        GateKind::Nor => |v| GateKind::Nor.eval_bits(v),
        GateKind::Xor => |v| GateKind::Xor.eval_bits(v),
        GateKind::Xnor => |v| GateKind::Xnor.eval_bits(v),
        GateKind::Not => |v| GateKind::Not.eval_bits(v),
        GateKind::Buf => |v| GateKind::Buf.eval_bits(v),
        GateKind::Const0 => |v| GateKind::Const0.eval_bits(v),
        GateKind::Const1 => |v| GateKind::Const1.eval_bits(v),
        GateKind::Dff => unreachable!("levelize rejects sequential netlists"),
    }
}

/// Interpreted zero-delay levelized simulator: walks the netlist data
/// structures per vector with table-driven gate models, the classic
/// interpreted structure the paper's zero-delay comparison targets.
#[derive(Clone, Debug)]
pub struct ZeroDelayInterpreted {
    netlist: Netlist,
    topo: Vec<uds_netlist::GateId>,
    models: Vec<GateModel>,
    value: Vec<bool>,
}

impl ZeroDelayInterpreted {
    /// Builds the simulator (levelizes once).
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] for cyclic or sequential netlists.
    pub fn new(netlist: &Netlist) -> Result<Self, LevelizeError> {
        let levels = levelize(netlist)?;
        Ok(ZeroDelayInterpreted {
            netlist: netlist.clone(),
            topo: levels.topo_gates,
            models: netlist.gates().iter().map(|g| model_for(g.kind)).collect(),
            value: vec![false; netlist.net_count()],
        })
    }

    /// Evaluates one input vector (parallel to the primary inputs) and
    /// settles every net.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary input count.
    pub fn simulate_vector(&mut self, inputs: &[bool]) {
        assert_eq!(
            inputs.len(),
            self.netlist.primary_inputs().len(),
            "input vector length must match the primary input count"
        );
        for (&pi, &bit) in self.netlist.primary_inputs().iter().zip(inputs) {
            self.value[pi] = bit;
        }
        let mut scratch = [false; 16];
        for &gid in &self.topo {
            let gate = self.netlist.gate(gid);
            let model = self.models[gid.index()];
            let out = if gate.inputs.len() <= scratch.len() {
                for (slot, &input) in scratch.iter_mut().zip(&gate.inputs) {
                    *slot = self.value[input];
                }
                model(&scratch[..gate.inputs.len()])
            } else {
                let bits: Vec<bool> = gate.inputs.iter().map(|&n| self.value[n]).collect();
                model(&bits)
            };
            self.value[gate.output] = out;
        }
    }

    /// The current value of a net.
    pub fn value(&self, net: NetId) -> bool {
        self.value[net]
    }

    /// Current values of all nets, indexed by [`NetId`].
    pub fn values(&self) -> &[bool] {
        &self.value
    }
}

/// One straight-line operation of the compiled zero-delay program.
///
/// Fixed three-address shape over a dense `u64` arena; n-ary gates take
/// their operands from a shared operand pool, so executing a program is a
/// single tight loop with no per-gate allocation or pointer chasing
/// through netlist structures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Op {
    kind: GateKind,
    /// Range into the operand pool.
    first_operand: u32,
    operand_count: u32,
    dst: u32,
}

/// Compiled zero-delay levelized simulator (LCC).
///
/// The value of every net lives in bit 0 of its arena word.
#[derive(Clone, Debug)]
pub struct ZeroDelayCompiled {
    primary_inputs: Vec<u32>,
    ops: Vec<Op>,
    operands: Vec<u32>,
    arena: Vec<u64>,
}

impl ZeroDelayCompiled {
    /// Compiles the netlist into a straight-line program.
    ///
    /// # Errors
    ///
    /// Returns [`ZeroDelayCompileError::Levelize`] for cyclic or
    /// sequential netlists, and
    /// [`ZeroDelayCompileError::PinCountOverflow`] when the operand pool
    /// would exceed `u32` addressing — a typed structural failure, not a
    /// panic.
    pub fn compile(netlist: &Netlist) -> Result<Self, ZeroDelayCompileError> {
        let levels = levelize(netlist)?;
        let mut ops = Vec::with_capacity(netlist.gate_count());
        let mut operands = Vec::with_capacity(netlist.pin_count());
        for &gid in &levels.topo_gates {
            let gate = netlist.gate(gid);
            let first_operand = u32::try_from(operands.len()).map_err(|_| {
                ZeroDelayCompileError::PinCountOverflow {
                    pins: netlist.pin_count(),
                }
            })?;
            for &input in &gate.inputs {
                operands.push(input.index() as u32);
            }
            ops.push(Op {
                kind: gate.kind,
                first_operand,
                operand_count: gate.inputs.len() as u32,
                dst: gate.output.index() as u32,
            });
        }
        Ok(ZeroDelayCompiled {
            primary_inputs: netlist
                .primary_inputs()
                .iter()
                .map(|pi| pi.index() as u32)
                .collect(),
            ops,
            operands,
            arena: vec![0; netlist.net_count()],
        })
    }

    /// Evaluates one input vector.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary input count.
    pub fn simulate_vector(&mut self, inputs: &[bool]) {
        assert_eq!(
            inputs.len(),
            self.primary_inputs.len(),
            "input vector length must match the primary input count"
        );
        for (&slot, &bit) in self.primary_inputs.iter().zip(inputs) {
            self.arena[slot as usize] = bit as u64;
        }
        for op in &self.ops {
            let operands = &self.operands
                [op.first_operand as usize..(op.first_operand + op.operand_count) as usize];
            let value = match op.kind {
                GateKind::And => operands
                    .iter()
                    .fold(!0u64, |acc, &s| acc & self.arena[s as usize]),
                GateKind::Nand => !operands
                    .iter()
                    .fold(!0u64, |acc, &s| acc & self.arena[s as usize]),
                GateKind::Or => operands
                    .iter()
                    .fold(0u64, |acc, &s| acc | self.arena[s as usize]),
                GateKind::Nor => !operands
                    .iter()
                    .fold(0u64, |acc, &s| acc | self.arena[s as usize]),
                GateKind::Xor => operands
                    .iter()
                    .fold(0u64, |acc, &s| acc ^ self.arena[s as usize]),
                GateKind::Xnor => !operands
                    .iter()
                    .fold(0u64, |acc, &s| acc ^ self.arena[s as usize]),
                GateKind::Not => !self.arena[operands[0] as usize],
                GateKind::Buf => self.arena[operands[0] as usize],
                GateKind::Const0 => 0,
                GateKind::Const1 => !0,
                GateKind::Dff => unreachable!("levelize rejects sequential netlists"),
            };
            self.arena[op.dst as usize] = value & 1;
        }
    }

    /// The current value of a net.
    pub fn value(&self, net: NetId) -> bool {
        self.arena[net.index()] & 1 != 0
    }

    /// Snapshot of the current value of every net, indexed by [`NetId`].
    pub fn values(&self) -> Vec<bool> {
        self.arena.iter().map(|&v| v & 1 != 0).collect()
    }

    /// Number of straight-line ops in the compiled program (= gate count).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }
}

/// The zero-delay settled state of each given input vector: one
/// `Vec<bool>` per vector, indexed by [`NetId`], primary inputs
/// included.
///
/// For a combinational (levelizable) netlist this is also the
/// **unit-delay** settled state after simulating that vector — the
/// levelized fixpoint is unique and history-free, so the state a
/// unit-delay engine retains between vectors depends only on the last
/// vector applied. That equivalence is what lets a batched runner cut a
/// vector stream at arbitrary points: seeding a shard's engine with the
/// stable state of the vector *before* the cut reproduces the sequential
/// run bit-for-bit (DESIGN.md's sharding-exactness argument).
///
/// # Errors
///
/// Returns [`ZeroDelayCompileError`] for netlists the zero-delay
/// compiler rejects.
///
/// # Panics
///
/// Panics if a vector's length differs from the primary input count.
pub fn stable_states<'a, I>(
    netlist: &Netlist,
    vectors: I,
) -> Result<Vec<Vec<bool>>, ZeroDelayCompileError>
where
    I: IntoIterator<Item = &'a [bool]>,
{
    let mut compiled = ZeroDelayCompiled::compile(netlist)?;
    Ok(vectors
        .into_iter()
        .map(|vector| {
            compiled.simulate_vector(vector);
            compiled.values()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uds_netlist::generators::iscas::{c17, Iscas85};
    use uds_netlist::generators::random::{layered, LayeredConfig};

    #[test]
    fn interpreted_and_compiled_agree_on_c17() {
        let nl = c17();
        let mut interp = ZeroDelayInterpreted::new(&nl).unwrap();
        let mut compiled = ZeroDelayCompiled::compile(&nl).unwrap();
        for pattern in 0u32..32 {
            let inputs: Vec<bool> = (0..5).map(|i| pattern >> i & 1 != 0).collect();
            interp.simulate_vector(&inputs);
            compiled.simulate_vector(&inputs);
            for net in nl.net_ids() {
                assert_eq!(interp.value(net), compiled.value(net), "pattern {pattern}");
            }
        }
    }

    #[test]
    fn agree_on_random_circuits() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for seed in 0..5 {
            let mut config = LayeredConfig::new("zd", 200, 12);
            config.seed = seed;
            let nl = layered(&config).unwrap();
            let mut interp = ZeroDelayInterpreted::new(&nl).unwrap();
            let mut compiled = ZeroDelayCompiled::compile(&nl).unwrap();
            for _ in 0..20 {
                let inputs: Vec<bool> = (0..nl.primary_inputs().len()).map(|_| rng.gen()).collect();
                interp.simulate_vector(&inputs);
                compiled.simulate_vector(&inputs);
                for &po in nl.primary_outputs() {
                    assert_eq!(interp.value(po), compiled.value(po));
                }
            }
        }
    }

    #[test]
    fn compiled_op_count_equals_gate_count() {
        let nl = Iscas85::C432.build();
        let compiled = ZeroDelayCompiled::compile(&nl).unwrap();
        assert_eq!(compiled.op_count(), nl.gate_count());
    }

    #[test]
    fn constants_evaluate() {
        use uds_netlist::{GateKind, NetlistBuilder};
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let k1 = b.gate(GateKind::Const1, &[], "k1").unwrap();
        let y = b.gate(GateKind::Xor, &[a, k1], "y").unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        let mut compiled = ZeroDelayCompiled::compile(&nl).unwrap();
        compiled.simulate_vector(&[false]);
        assert!(compiled.value(y));
        compiled.simulate_vector(&[true]);
        assert!(!compiled.value(y));
    }

    #[test]
    #[should_panic(expected = "input vector length")]
    fn compiled_checks_input_length() {
        let nl = c17();
        let mut compiled = ZeroDelayCompiled::compile(&nl).unwrap();
        compiled.simulate_vector(&[true]);
    }

    /// The sharding-exactness property [`stable_states`] documents: the
    /// zero-delay state of a vector equals the unit-delay settled state
    /// after that vector, *whatever* was simulated before it.
    #[test]
    fn stable_states_match_unit_delay_settled_values() {
        use rand::{Rng, SeedableRng};
        let nl = Iscas85::C432.build();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED);
        let vectors: Vec<Vec<bool>> = (0..12)
            .map(|_| (0..nl.primary_inputs().len()).map(|_| rng.gen()).collect())
            .collect();
        let states = stable_states(&nl, vectors.iter().map(Vec::as_slice)).unwrap();
        let mut unit_delay = crate::EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        for (vector, state) in vectors.iter().zip(&states) {
            unit_delay.simulate_vector(vector);
            assert_eq!(unit_delay.values(), state.as_slice());
        }
    }

    #[test]
    fn seeded_unit_delay_reproduces_the_sequential_run() {
        use rand::{Rng, SeedableRng};
        let nl = c17();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let vectors: Vec<Vec<bool>> = (0..10)
            .map(|_| (0..5).map(|_| rng.gen()).collect())
            .collect();
        // Sequential reference over all 10 vectors.
        let mut reference = crate::EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        let mut expected = Vec::new();
        for vector in &vectors {
            reference.simulate_vector(vector);
            expected.push(reference.values().to_vec());
        }
        // A "shard" starting at vector 6, seeded from vector 5's stable
        // state, must continue identically.
        let seed = stable_states(&nl, [vectors[5].as_slice()])
            .unwrap()
            .remove(0);
        let mut shard = crate::EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        shard.seed_values(&seed);
        for (vector, expected) in vectors[6..].iter().zip(&expected[6..]) {
            shard.simulate_vector(vector);
            assert_eq!(shard.values(), expected.as_slice());
        }
    }
}
