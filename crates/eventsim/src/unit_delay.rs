//! The interpreted event-driven unit-delay simulator.
//!
//! This is the baseline the paper's compiled techniques are measured
//! against: a conventional selective-trace simulator with an event list.
//! Every gate has a delay of one time unit, so events scheduled at time
//! `t` can only produce events at time `t + 1`; the "event queue" is two
//! buckets swapped each step (a degenerate timing wheel, the efficient
//! implementation for a pure unit-delay model).
//!
//! The per-event costs that compiled simulation eliminates are all here
//! and all deliberate: queue push/pop, fan-out list traversal, per-gate
//! input gathering through the netlist data structures, and dynamic
//! dispatch on the gate kind.

use uds_netlist::{levelize, GateId, LevelProfile, LevelTimer, LevelizeError, NetId, Netlist};

use crate::LogicFamily;

/// Counters describing one simulated vector.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SimStats {
    /// Net-change events processed (events that actually changed a value).
    pub events: usize,
    /// Net toggles: committed changes at time `>= 1`. Primary-input
    /// changes land at time 0 — the vector *starts* there, the net does
    /// not switch mid-settling — so `toggles <= events`, and the count
    /// matches toggles derived from any engine's unit-delay history.
    pub toggles: usize,
    /// Gate evaluations performed.
    pub gate_evaluations: usize,
    /// The last time unit at which anything changed.
    pub settle_time: u32,
}

/// Interpreted event-driven unit-delay simulator.
///
/// Generic over the [`LogicFamily`]: `EventDrivenUnitDelay<bool>` is the
/// paper's two-valued baseline, `EventDrivenUnitDelay<Logic3>` the
/// three-valued one.
///
/// State persists across vectors (as in the paper, where values computed
/// from the previous input vector matter); use [`Self::reset`] to return
/// to the power-up state.
#[derive(Clone, Debug)]
pub struct EventDrivenUnitDelay<L: LogicFamily> {
    netlist: Netlist,
    value: Vec<L>,
    /// The consistent power-up state (circuit settled under
    /// [`LogicFamily::initial`] inputs); [`Self::reset`] restores it.
    initial_state: Vec<L>,
    /// Current / next event buckets: nets whose new value is pending.
    current: Vec<(NetId, L)>,
    next: Vec<(NetId, L)>,
    /// Per-gate stamp to evaluate a gate at most once per time unit.
    gate_stamp: Vec<u64>,
    stamp: u64,
}

impl<L: LogicFamily> EventDrivenUnitDelay<L> {
    /// Builds a simulator for a combinational netlist.
    ///
    /// The power-up state is *consistent*: the circuit is settled once
    /// under all-[`LogicFamily::initial`] primary inputs (all 0 for the
    /// two-valued model, all X for the three-valued one), so constant
    /// generators and inverters hold correct values before the first
    /// vector — exactly the "initialization value of the net" the paper's
    /// compiled code generators assume.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] if the netlist is cyclic or sequential
    /// (the simulator itself would tolerate cycles that settle, but the
    /// paper's model and the compiled comparators require acyclic input,
    /// so it is rejected up front for comparability).
    pub fn new(netlist: &Netlist) -> Result<Self, LevelizeError> {
        let levels = levelize(netlist)?;
        let mut initial_state = vec![L::initial(); netlist.net_count()];
        for &gid in &levels.topo_gates {
            let gate = netlist.gate(gid);
            let inputs: Vec<L> = gate.inputs.iter().map(|&n| initial_state[n]).collect();
            initial_state[gate.output] = L::eval(gate.kind, &inputs);
        }
        Ok(EventDrivenUnitDelay {
            value: initial_state.clone(),
            initial_state,
            current: Vec::new(),
            next: Vec::new(),
            gate_stamp: vec![0; netlist.gate_count()],
            stamp: 0,
            netlist: netlist.clone(),
        })
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The current value of a net.
    pub fn value(&self, net: NetId) -> L {
        self.value[net]
    }

    /// Current values of all nets, indexed by [`NetId`].
    pub fn values(&self) -> &[L] {
        &self.value
    }

    /// Returns every net to the consistent power-up state.
    pub fn reset(&mut self) {
        self.value.copy_from_slice(&self.initial_state);
        self.current.clear();
        self.next.clear();
    }

    /// Overwrites every net's value with `values` (indexed by [`NetId`])
    /// and discards pending events, as if the circuit had settled in
    /// exactly that state. The caller is responsible for `values` being
    /// a consistent (settled) assignment; seeding an unsettled one makes
    /// the next vector's waveform start from it regardless.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the net count.
    pub fn seed_values(&mut self, values: &[L]) {
        assert_eq!(
            values.len(),
            self.value.len(),
            "seed length must match the net count"
        );
        self.value.copy_from_slice(values);
        self.current.clear();
        self.next.clear();
    }

    /// Simulates one input vector to settlement.
    ///
    /// `inputs` is parallel to [`Netlist::primary_inputs`]. Internal nets
    /// keep their values from the previous vector, exactly as the
    /// compiled techniques assume.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary input count.
    pub fn simulate_vector(&mut self, inputs: &[L]) -> SimStats {
        self.simulate_vector_traced(inputs, |_, _, _| {})
    }

    /// Like [`Self::simulate_vector`], invoking `on_change(time, net,
    /// value)` for every committed net change (primary-input changes are
    /// reported at time 0).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary input count.
    pub fn simulate_vector_traced(
        &mut self,
        inputs: &[L],
        mut on_change: impl FnMut(u32, NetId, L),
    ) -> SimStats {
        assert_eq!(
            inputs.len(),
            self.netlist.primary_inputs().len(),
            "input vector length must match the primary input count"
        );
        let mut stats = SimStats::default();

        debug_assert!(self.current.is_empty());
        for (&pi, &bit) in self.netlist.primary_inputs().iter().zip(inputs) {
            if self.value[pi] != bit {
                self.current.push((pi, bit));
            }
        }

        let mut time: u32 = 0;
        while !self.current.is_empty() {
            self.stamp += 1;
            // Commit all changes for this time unit first, so gates see a
            // consistent snapshot of time `time`.
            let mut changed: Vec<NetId> = Vec::with_capacity(self.current.len());
            let events = std::mem::take(&mut self.current);
            for (net, new_value) in events {
                if self.value[net] != new_value {
                    self.value[net] = new_value;
                    changed.push(net);
                    stats.events += 1;
                    stats.toggles += usize::from(time >= 1);
                    stats.settle_time = time;
                    on_change(time, net, new_value);
                }
            }
            // Selective trace: evaluate each affected gate once.
            for net in changed {
                for &gate in self.netlist.fanout(net) {
                    if self.gate_stamp[gate.index()] == self.stamp {
                        continue;
                    }
                    self.gate_stamp[gate.index()] = self.stamp;
                    let new_out = self.evaluate(gate);
                    stats.gate_evaluations += 1;
                    let out_net = self.netlist.gate(gate).output;
                    if new_out != self.value[out_net] {
                        self.next.push((out_net, new_out));
                    }
                }
            }
            std::mem::swap(&mut self.current, &mut self.next);
            time += 1;
        }
        stats
    }

    /// Like [`Self::simulate_vector_traced`], additionally attributing
    /// wall time to `profile` per unit-delay time step: the pre-loop
    /// input scan lands in level 0 and the settling iteration at time
    /// `t` lands in level `t`. For an event-driven simulator the time
    /// step *is* the natural analogue of the compiled engines' netlist
    /// level — events committed at time `t` are toggles of nets at
    /// levels `<= t` — so hotspot reports line up across engines.
    ///
    /// Timing is chunked through [`LevelTimer`], so clock reads are
    /// amortized across steps on large circuits.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary input count.
    pub fn simulate_vector_traced_leveled(
        &mut self,
        inputs: &[L],
        profile: &mut LevelProfile,
        mut on_change: impl FnMut(u32, NetId, L),
    ) -> SimStats {
        assert_eq!(
            inputs.len(),
            self.netlist.primary_inputs().len(),
            "input vector length must match the primary input count"
        );
        let mut stats = SimStats::default();
        let mut timer = LevelTimer::new(profile);
        let value_bytes = std::mem::size_of::<L>() as u64;

        debug_assert!(self.current.is_empty());
        for (&pi, &bit) in self.netlist.primary_inputs().iter().zip(inputs) {
            if self.value[pi] != bit {
                self.current.push((pi, bit));
            }
        }
        let scanned = self.netlist.primary_inputs().len() as u64;
        timer.segment(0, scanned, 0, scanned * value_bytes * 2);

        let mut time: u32 = 0;
        while !self.current.is_empty() {
            self.stamp += 1;
            let step_events_start = stats.events;
            let step_evals_start = stats.gate_evaluations;
            let mut changed: Vec<NetId> = Vec::with_capacity(self.current.len());
            let events = std::mem::take(&mut self.current);
            for (net, new_value) in events {
                if self.value[net] != new_value {
                    self.value[net] = new_value;
                    changed.push(net);
                    stats.events += 1;
                    stats.toggles += usize::from(time >= 1);
                    stats.settle_time = time;
                    on_change(time, net, new_value);
                }
            }
            for net in changed {
                for &gate in self.netlist.fanout(net) {
                    if self.gate_stamp[gate.index()] == self.stamp {
                        continue;
                    }
                    self.gate_stamp[gate.index()] = self.stamp;
                    let new_out = self.evaluate(gate);
                    stats.gate_evaluations += 1;
                    let out_net = self.netlist.gate(gate).output;
                    if new_out != self.value[out_net] {
                        self.next.push((out_net, new_out));
                    }
                }
            }
            std::mem::swap(&mut self.current, &mut self.next);
            let step_events = (stats.events - step_events_start) as u64;
            let step_evals = (stats.gate_evaluations - step_evals_start) as u64;
            // Rough bytes: each event rewrites a value, each evaluation
            // gathers its inputs through the netlist (call it 4 values).
            timer.segment(
                time as usize,
                step_events,
                step_evals,
                (step_events + step_evals * 4) * value_bytes * 2,
            );
            time += 1;
        }
        stats
    }

    fn evaluate(&self, gate: GateId) -> L {
        let gate = self.netlist.gate(gate);
        // Gather through the data structure — the interpretive overhead
        // compiled simulation removes.
        let mut scratch = [L::initial(); 16];
        if gate.inputs.len() <= scratch.len() {
            for (slot, &input) in scratch.iter_mut().zip(&gate.inputs) {
                *slot = self.value[input];
            }
            L::eval(gate.kind, &scratch[..gate.inputs.len()])
        } else {
            let values: Vec<L> = gate.inputs.iter().map(|&n| self.value[n]).collect();
            L::eval(gate.kind, &values)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uds_netlist::generators::iscas::c17;
    use uds_netlist::{GateKind, Logic3, NetlistBuilder};

    fn fig1() -> (Netlist, NetId, NetId) {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let bb = b.input("B");
        let c = b.input("C");
        let d = b.gate(GateKind::And, &[a, bb], "D").unwrap();
        let e = b.gate(GateKind::And, &[c, d], "E").unwrap();
        b.output(e);
        (b.finish().unwrap(), d, e)
    }

    #[test]
    fn settles_to_combinational_values() {
        let (nl, d, e) = fig1();
        let mut sim = EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        sim.simulate_vector(&[true, true, true]);
        assert!(sim.value(d));
        assert!(sim.value(e));
        sim.simulate_vector(&[true, false, true]);
        assert!(!sim.value(d));
        assert!(!sim.value(e));
    }

    #[test]
    fn unit_delay_timing_is_respected() {
        let (nl, d, e) = fig1();
        let mut sim = EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        // Establish steady state 0.
        sim.simulate_vector(&[false, false, false]);
        // A,B,C all rise at time 0: D rises at 1, E at 2.
        let mut changes = Vec::new();
        sim.simulate_vector_traced(&[true, true, true], |t, net, v| changes.push((t, net, v)));
        assert!(changes.contains(&(1, d, true)));
        assert!(changes.contains(&(2, e, true)));
    }

    #[test]
    fn static_hazard_produces_glitch_events() {
        // y = AND(a, NOT a): a 0->1 edge makes y pulse high for one unit
        // in a unit-delay model (the NOT lags the direct path).
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let na = b.gate(GateKind::Not, &[a], "na").unwrap();
        let y = b.gate(GateKind::And, &[a, na], "y").unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        let mut sim = EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        sim.simulate_vector(&[false]);
        let mut y_changes = Vec::new();
        sim.simulate_vector_traced(&[true], |t, net, v| {
            if net == y {
                y_changes.push((t, v));
            }
        });
        // y rises at 1 (a high, na still high) and falls at 2.
        assert_eq!(y_changes, vec![(1, true), (2, false)]);
    }

    #[test]
    fn three_valued_starts_unknown_and_resolves() {
        let (nl, d, e) = fig1();
        let mut sim = EventDrivenUnitDelay::<Logic3>::new(&nl).unwrap();
        assert_eq!(sim.value(e), Logic3::X);
        // AND with a controlling 0 resolves despite X partner.
        sim.simulate_vector(&[Logic3::Zero, Logic3::X, Logic3::One]);
        assert_eq!(sim.value(d), Logic3::Zero);
        assert_eq!(sim.value(e), Logic3::Zero);
    }

    #[test]
    fn stable_vector_causes_no_events() {
        let (nl, _, _) = fig1();
        let mut sim = EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        sim.simulate_vector(&[true, true, true]);
        let stats = sim.simulate_vector(&[true, true, true]);
        assert_eq!(stats.events, 0);
        assert_eq!(stats.gate_evaluations, 0);
    }

    #[test]
    fn reset_returns_to_initial() {
        let (nl, _, e) = fig1();
        let mut sim = EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        sim.simulate_vector(&[true, true, true]);
        assert!(sim.value(e));
        sim.reset();
        assert!(!sim.value(e));
    }

    #[test]
    fn c17_matches_direct_evaluation() {
        let nl = c17();
        let mut sim = EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        for pattern in 0u32..32 {
            let inputs: Vec<bool> = (0..5).map(|i| pattern >> i & 1 != 0).collect();
            sim.simulate_vector(&inputs);
            // Compare against fresh topological evaluation.
            let levels = levelize(&nl).unwrap();
            let mut value = vec![false; nl.net_count()];
            for (&pi, &b) in nl.primary_inputs().iter().zip(&inputs) {
                value[pi] = b;
            }
            for &gid in &levels.topo_gates {
                let gate = nl.gate(gid);
                let bits: Vec<bool> = gate.inputs.iter().map(|&n| value[n]).collect();
                value[gate.output] = gate.kind.eval_bits(&bits);
            }
            for net in nl.net_ids() {
                assert_eq!(sim.value(net), value[net], "net {net} pattern {pattern}");
            }
        }
    }

    #[test]
    fn settle_time_bounded_by_depth() {
        let nl = c17();
        let depth = levelize(&nl).unwrap().depth;
        let mut sim = EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        for pattern in 0u32..32 {
            let inputs: Vec<bool> = (0..5).map(|i| pattern >> i & 1 != 0).collect();
            let stats = sim.simulate_vector(&inputs);
            assert!(stats.settle_time <= depth);
        }
    }

    #[test]
    #[should_panic(expected = "input vector length")]
    fn wrong_input_length_panics() {
        let (nl, _, _) = fig1();
        let mut sim = EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        sim.simulate_vector(&[true]);
    }

    #[test]
    fn cyclic_netlist_is_rejected() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let x = b.fresh_net();
        let y = b.fresh_net();
        b.gate_onto(GateKind::And, &[a, y], x).unwrap();
        b.gate_onto(GateKind::Not, &[x], y).unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        assert!(EventDrivenUnitDelay::<bool>::new(&nl).is_err());
    }
}
