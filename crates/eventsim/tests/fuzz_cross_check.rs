use uds_eventsim::{ConventionalEventDriven, EventDrivenUnitDelay};
use uds_netlist::generators::random::{layered, LayeredConfig};

#[test]
fn fuzz_conventional_vs_optimized_xor_heavy() {
    let mut mismatches = 0;
    for seed in 0..400u64 {
        let mut cfg = LayeredConfig::new("fuzz", 60, 8);
        cfg.primary_inputs = 5;
        cfg.xor_fraction = 0.8;
        cfg.inverter_fraction = 0.2;
        cfg.locality = 0.2;
        cfg.seed = seed;
        let nl = layered(&cfg).unwrap();
        let mut conv = ConventionalEventDriven::<bool>::new(&nl).unwrap();
        let mut opt = EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        'outer: for _ in 0..300 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let p = (state >> 33) as u32;
            let inputs: Vec<bool> = (0..5).map(|i| p >> i & 1 != 0).collect();
            conv.simulate_vector(&inputs);
            opt.simulate_vector(&inputs);
            for net in nl.net_ids() {
                if conv.value(net) != opt.value(net) {
                    mismatches += 1;
                    eprintln!("MISMATCH seed {seed} net {net}");
                    break 'outer;
                }
            }
        }
    }
    assert_eq!(mismatches, 0, "{mismatches} seeds diverged");
}
