//! Property-based tests for the interpreted baselines: the two
//! event-driven engines must agree with each other and with a direct
//! topological oracle on randomized circuits and vector sequences.

use proptest::prelude::*;

use uds_eventsim::zero_delay::{ZeroDelayCompiled, ZeroDelayInterpreted};
use uds_eventsim::{ConventionalEventDriven, EventDrivenUnitDelay};
use uds_netlist::generators::random::{layered, LayeredConfig};
use uds_netlist::{levelize, Logic3, Netlist};

fn circuit_strategy() -> impl Strategy<Value = (Netlist, u64)> {
    (1u32..=12, 0usize..=60, 1usize..=10, any::<u64>()).prop_map(|(depth, extra, pis, seed)| {
        let mut config = LayeredConfig::new("prop", depth as usize + extra, depth);
        config.primary_inputs = pis;
        config.primary_outputs = 3;
        config.seed = seed;
        config.xor_fraction = 0.35;
        (layered(&config).expect("valid config"), seed)
    })
}

fn vectors(width: usize, seed: u64, count: usize) -> Vec<Vec<bool>> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..width).map(|_| rng.gen()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn conventional_and_optimized_agree((nl, seed) in circuit_strategy()) {
        let width = nl.primary_inputs().len();
        let mut conventional = ConventionalEventDriven::<bool>::new(&nl).unwrap();
        let mut optimized = EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        for vector in vectors(width, seed ^ 0xE1, 6) {
            conventional.simulate_vector(&vector);
            optimized.simulate_vector(&vector);
            for net in nl.net_ids() {
                prop_assert_eq!(conventional.value(net), optimized.value(net), "net {}", net);
            }
        }
    }

    #[test]
    fn three_valued_agrees_on_fully_driven_inputs((nl, seed) in circuit_strategy()) {
        // With no X inputs, Kleene logic must coincide with boolean.
        let width = nl.primary_inputs().len();
        let mut two = EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        let mut three = EventDrivenUnitDelay::<Logic3>::new(&nl).unwrap();
        for vector in vectors(width, seed ^ 0xE2, 4) {
            two.simulate_vector(&vector);
            let l3: Vec<Logic3> = vector.iter().map(|&b| Logic3::from_bool(b)).collect();
            three.simulate_vector(&l3);
            for net in nl.net_ids() {
                prop_assert_eq!(
                    three.value(net),
                    Logic3::from_bool(two.value(net)),
                    "net {}", net
                );
            }
        }
    }

    #[test]
    fn settled_values_match_zero_delay((nl, seed) in circuit_strategy()) {
        let width = nl.primary_inputs().len();
        let mut event = EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        let mut zd_interp = ZeroDelayInterpreted::new(&nl).unwrap();
        let mut zd_comp = ZeroDelayCompiled::compile(&nl).unwrap();
        for vector in vectors(width, seed ^ 0xE3, 4) {
            event.simulate_vector(&vector);
            zd_interp.simulate_vector(&vector);
            zd_comp.simulate_vector(&vector);
            for net in nl.net_ids() {
                prop_assert_eq!(event.value(net), zd_interp.value(net), "net {}", net);
                prop_assert_eq!(event.value(net), zd_comp.value(net), "net {}", net);
            }
        }
    }

    #[test]
    fn settle_time_is_bounded_by_depth((nl, seed) in circuit_strategy()) {
        let depth = levelize(&nl).unwrap().depth;
        let width = nl.primary_inputs().len();
        let mut sim = EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        let mut conventional = ConventionalEventDriven::<bool>::new(&nl).unwrap();
        for vector in vectors(width, seed ^ 0xE4, 4) {
            prop_assert!(sim.simulate_vector(&vector).settle_time <= depth);
            prop_assert!(conventional.simulate_vector(&vector).settle_time <= depth);
        }
    }

    #[test]
    fn repeating_a_vector_is_quiescent((nl, seed) in circuit_strategy()) {
        let width = nl.primary_inputs().len();
        let mut sim = ConventionalEventDriven::<bool>::new(&nl).unwrap();
        for vector in vectors(width, seed ^ 0xE5, 3) {
            sim.simulate_vector(&vector);
            let stats = sim.simulate_vector(&vector);
            prop_assert_eq!(stats.events, 0);
            prop_assert_eq!(stats.gate_evaluations, 0);
        }
    }

    #[test]
    fn per_pin_activation_never_under_evaluates((nl, seed) in circuit_strategy()) {
        // The conventional engine re-evaluates per triggering pin, so its
        // evaluation count dominates the memoized engine's.
        let width = nl.primary_inputs().len();
        let mut conventional = ConventionalEventDriven::<bool>::new(&nl).unwrap();
        let mut optimized = EventDrivenUnitDelay::<bool>::new(&nl).unwrap();
        for vector in vectors(width, seed ^ 0xE6, 4) {
            let c = conventional.simulate_vector(&vector);
            let o = optimized.simulate_vector(&vector);
            prop_assert!(c.gate_evaluations >= o.gate_evaluations);
            prop_assert_eq!(c.events, o.events, "committed changes must agree");
        }
    }
}
