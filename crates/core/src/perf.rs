//! Machine perf calibration and the self-reported perf class.
//!
//! The bench tables and the committed `BENCH_*.json` baselines are
//! wall-clock measurements, so they are only comparable across runs if
//! the *machine* is comparable. This module produces a small,
//! deterministic-workload fingerprint of the host — a single-threaded
//! ALU microbenchmark (dependent xorshift rounds, pure register
//! pressure) and a memory microbenchmark (a pointer chase over an
//! 8 MiB Sattolo cycle, pure latency pressure) — folded into one
//! [`Calibration::score`] (geometric mean of both, normalized so the
//! reference CI container scores ≈ 1.0).
//!
//! Two consumers:
//!
//! * the `tables` binary embeds the fingerprint in every
//!   `uds-bench-v1` document, and `tables compare` divides the two
//!   scores out of the throughput delta so a faster replay machine
//!   does not masquerade as a perf win (DESIGN.md §16);
//! * `udsim serve` runs [`measure_perf`] once at startup — the same
//!   microcalibration plus a canonical-netlist warmup (c432 under the
//!   parallel+pt+trim engine) — and [`record_perf_class`] exports the
//!   result as the `uds_perf_class` gauge family in `/metrics` and as
//!   a `build.perf_class` label on `build_info`, so a deployed daemon
//!   self-reports which hardware class it landed on and fleet
//!   dashboards can spot slow hosts without external context.
//!
//! The workload is deterministic; only the clock readings vary by
//! host. Total cost is ~100–200 ms, paid once per process.

use std::hint::black_box;
use std::time::Instant;

use uds_netlist::generators::iscas::Iscas85;

use crate::telemetry::json::Json;
use crate::telemetry::Telemetry;
use crate::{build_simulator, Engine};

/// Dependent xorshift64 rounds per ALU measurement pass. Scaled down
/// in debug builds — a debug fingerprint is never comparable anyway
/// (the `profile` field says so), but test daemons must still start
/// quickly.
const ALU_ROUNDS: u64 = if cfg!(debug_assertions) {
    1 << 20
} else {
    1 << 24
};

/// Entries in the pointer-chase cycle (`u32` each → 8 MiB, past any
/// reasonable L2, so the chase prices the L3/DRAM hierarchy).
const CHASE_ENTRIES: usize = 1 << 21;

/// Dependent loads per memory measurement pass.
const CHASE_STEPS: usize = if cfg!(debug_assertions) {
    1 << 16
} else {
    1 << 19
};

/// Reference throughputs: the scores measured on the project's CI
/// container, so [`Calibration::score`] ≈ 1.0 there by construction.
/// A faster host scores > 1, a throttled one < 1.
const ALU_REF_MROUNDS: f64 = 240.0;
const MEM_REF_MLOADS: f64 = 26.0;

/// Vectors timed by the serve-startup warmup (after engine warmup).
const WARMUP_VECTORS: usize = if cfg!(debug_assertions) { 200 } else { 2000 };

/// The host fingerprint attached to bench documents and exported by
/// the daemon.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Calibration {
    /// Million dependent xorshift64 rounds per second (ALU latency).
    pub alu_mops: f64,
    /// Million dependent pointer-chase loads per second (memory
    /// latency).
    pub mem_mops: f64,
    /// Geometric mean of both throughputs over their reference values
    /// — the single number `tables compare` normalizes by.
    pub score: f64,
    /// Cores the host offers (`available_parallelism`).
    pub cores: usize,
    /// Build profile of the measuring binary: timing a debug build
    /// against a release baseline is never comparable, and the compare
    /// gate rejects it outright.
    pub profile: &'static str,
}

impl Calibration {
    /// The fingerprint as a JSON object (embedded under `calibration`
    /// in `uds-bench-v1` documents; `word_bits` and `timing_reps` are
    /// appended by the bench layer, which knows them).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("score", Json::Float(self.score)),
            ("alu_mops", Json::Float(self.alu_mops)),
            ("mem_mops", Json::Float(self.mem_mops)),
            ("cores", Json::UInt(self.cores as u64)),
            ("profile", Json::Str(self.profile.to_owned())),
        ])
    }
}

/// Discrete hardware classes derived from [`Calibration::score`] —
/// coarse on purpose, so dashboards can aggregate a fleet by class
/// without bucketing floats themselves.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum PerfClass {
    /// Far below reference (heavy throttling, debug build, emulation).
    Degraded,
    /// Noticeably below the reference container.
    Slow,
    /// Within the reference band.
    Baseline,
    /// Meaningfully above reference.
    Fast,
}

impl PerfClass {
    /// Classifies a calibration score.
    pub fn from_score(score: f64) -> PerfClass {
        if score >= 1.5 {
            PerfClass::Fast
        } else if score >= 0.6 {
            PerfClass::Baseline
        } else if score >= 0.25 {
            PerfClass::Slow
        } else {
            PerfClass::Degraded
        }
    }

    /// Stable label (exported as the `build.perf_class` label).
    pub fn name(self) -> &'static str {
        match self {
            PerfClass::Degraded => "degraded",
            PerfClass::Slow => "slow",
            PerfClass::Baseline => "baseline",
            PerfClass::Fast => "fast",
        }
    }

    /// Stable numeric encoding (the `uds_perf_class` gauge value):
    /// 0 degraded, 1 slow, 2 baseline, 3 fast — ordered, so
    /// `min by (class)` over a fleet is meaningful.
    pub fn as_u64(self) -> u64 {
        match self {
            PerfClass::Degraded => 0,
            PerfClass::Slow => 1,
            PerfClass::Baseline => 2,
            PerfClass::Fast => 3,
        }
    }
}

/// What `udsim serve` measures at startup.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PerfReport {
    /// The machine fingerprint.
    pub calibration: Calibration,
    /// Canonical-netlist warmup throughput: c432 vectors/second under
    /// the parallel+pt+trim engine — the daemon's own hot path, so the
    /// number is in the same unit operators reason about.
    pub warmup_vectors_per_s: f64,
    /// The class [`Calibration::score`] maps to.
    pub class: PerfClass,
}

/// One timed ALU pass: `rounds` dependent xorshift64 rounds.
fn alu_pass(rounds: u64) -> u64 {
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..rounds {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

/// Builds the chase cycle: a Sattolo single-cycle permutation from a
/// deterministic xorshift stream, so every index is visited and the
/// hardware prefetcher gets nothing exploitable.
fn build_chase(entries: usize) -> Vec<u32> {
    let mut chase: Vec<u32> = (0..entries as u32).collect();
    let mut rng = 0x1990_5EEDu64 | 1;
    let mut next = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for i in (1..entries).rev() {
        let j = (next() % i as u64) as usize;
        chase.swap(i, j);
    }
    chase
}

/// One timed memory pass: `steps` dependent loads along the cycle.
fn mem_pass(chase: &[u32], steps: usize) -> u32 {
    let mut i = 0u32;
    for _ in 0..steps {
        i = chase[i as usize];
    }
    i
}

/// Times `pass` twice after one warmup at an eighth of the scale and
/// keeps the faster run — the least noise-inflated estimate, matching
/// the bench runner's min-of-reps convention.
fn best_of_two(mut pass: impl FnMut() -> f64) -> f64 {
    let a = pass();
    let b = pass();
    a.min(b)
}

/// Runs the single-threaded microcalibration. Deterministic workload;
/// ~100 ms wall clock.
pub fn calibrate() -> Calibration {
    black_box(alu_pass(ALU_ROUNDS / 8)); // warmup
    let alu_s = best_of_two(|| {
        let start = Instant::now();
        black_box(alu_pass(black_box(ALU_ROUNDS)));
        start.elapsed().as_secs_f64()
    });

    let chase = build_chase(CHASE_ENTRIES);
    black_box(mem_pass(&chase, CHASE_STEPS / 8)); // warmup
    let mem_s = best_of_two(|| {
        let start = Instant::now();
        black_box(mem_pass(black_box(&chase), black_box(CHASE_STEPS)));
        start.elapsed().as_secs_f64()
    });

    let alu_mops = ALU_ROUNDS as f64 / alu_s.max(1e-9) / 1e6;
    let mem_mops = CHASE_STEPS as f64 / mem_s.max(1e-9) / 1e6;
    let score = ((alu_mops / ALU_REF_MROUNDS) * (mem_mops / MEM_REF_MLOADS)).sqrt();
    Calibration {
        alu_mops,
        mem_mops,
        score,
        cores: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        profile: if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
    }
}

/// The full serve-startup measurement: microcalibration plus the
/// canonical-netlist warmup (which also pre-faults the allocator and
/// warms the code paths the first real request would otherwise pay
/// for).
pub fn measure_perf() -> PerfReport {
    let calibration = calibrate();
    let nl = Iscas85::C432.build();
    let mut sim = build_simulator(&nl, Engine::ParallelPathTracingTrimming)
        .expect("canonical warmup circuit compiles");
    let inputs = nl.primary_inputs().len();
    let mut rng = 0xCA11_B7A7u64 | 1;
    let mut vector = vec![false; inputs];
    let mut fill = |vector: &mut Vec<bool>| {
        for slot in vector.iter_mut() {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            *slot = rng & 1 == 1;
        }
    };
    for _ in 0..WARMUP_VECTORS / 10 {
        fill(&mut vector);
        sim.simulate_vector(&vector);
    }
    let start = Instant::now();
    for _ in 0..WARMUP_VECTORS {
        fill(&mut vector);
        sim.simulate_vector(&vector);
    }
    let warmup_vectors_per_s = WARMUP_VECTORS as f64 / start.elapsed().as_secs_f64().max(1e-9);
    PerfReport {
        calibration,
        warmup_vectors_per_s,
        class: PerfClass::from_score(calibration.score),
    }
}

/// Exports a [`PerfReport`] as the `perf_class` gauge family plus the
/// `build.perf_class` label:
///
/// | telemetry name | `/metrics` name | meaning |
/// |---|---|---|
/// | `perf_class` | `uds_perf_class` | class code (0–3) |
/// | `perf_class.score_milli` | `uds_perf_class_score_milli` | calibration score × 1000 |
/// | `perf_class.alu_mops` | `uds_perf_class_alu_mops` | ALU rounds, M/s |
/// | `perf_class.mem_mops` | `uds_perf_class_mem_mops` | chase loads, M/s |
/// | `perf_class.warmup_vectors_per_s` | `uds_perf_class_warmup_vectors_per_s` | c432 warmup throughput |
/// | `perf_class.cores` | `uds_perf_class_cores` | available cores |
///
/// Recorded as level gauges (measurements, not deterministic metrics —
/// re-recording must not trip the gauge-conflict counter).
pub fn record_perf_class(telemetry: &Telemetry, report: &PerfReport) {
    let rounded = |v: f64| v.round().max(0.0) as u64;
    telemetry.set_level("perf_class", report.class.as_u64());
    telemetry.set_level(
        "perf_class.score_milli",
        rounded(report.calibration.score * 1000.0),
    );
    telemetry.set_level("perf_class.alu_mops", rounded(report.calibration.alu_mops));
    telemetry.set_level("perf_class.mem_mops", rounded(report.calibration.mem_mops));
    telemetry.set_level(
        "perf_class.warmup_vectors_per_s",
        rounded(report.warmup_vectors_per_s),
    );
    telemetry.set_level("perf_class.cores", report.calibration.cores as u64);
    telemetry.label("build.perf_class", report.class.name());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::GAUGE_CONFLICTS;

    #[test]
    fn chase_is_a_single_cycle() {
        let chase = build_chase(64);
        let mut seen = [false; 64];
        let mut i = 0u32;
        for _ in 0..64 {
            assert!(!seen[i as usize], "revisited {i} before closing the cycle");
            seen[i as usize] = true;
            i = chase[i as usize];
        }
        assert_eq!(i, 0, "the permutation closes into one cycle");
        assert!(seen.iter().all(|&s| s), "every entry visited");
    }

    #[test]
    fn class_thresholds_are_ordered_and_stable() {
        assert_eq!(PerfClass::from_score(2.0), PerfClass::Fast);
        assert_eq!(PerfClass::from_score(1.0), PerfClass::Baseline);
        assert_eq!(PerfClass::from_score(0.3), PerfClass::Slow);
        assert_eq!(PerfClass::from_score(0.01), PerfClass::Degraded);
        assert!(PerfClass::Degraded < PerfClass::Slow);
        assert!(PerfClass::Slow < PerfClass::Baseline);
        assert!(PerfClass::Baseline < PerfClass::Fast);
        let classes = [
            PerfClass::Degraded,
            PerfClass::Slow,
            PerfClass::Baseline,
            PerfClass::Fast,
        ];
        for (i, class) in classes.iter().enumerate() {
            assert_eq!(class.as_u64(), i as u64, "numeric encodings are 0..=3");
        }
        assert_eq!(PerfClass::Fast.name(), "fast");
        assert_eq!(PerfClass::Degraded.name(), "degraded");
    }

    #[test]
    fn record_exports_the_gauge_family_and_label() {
        let telemetry = Telemetry::new();
        let report = PerfReport {
            calibration: Calibration {
                alu_mops: 310.5,
                mem_mops: 14.2,
                score: 1.08,
                cores: 4,
                profile: "release",
            },
            warmup_vectors_per_s: 123_456.7,
            class: PerfClass::Baseline,
        };
        record_perf_class(&telemetry, &report);
        assert_eq!(telemetry.gauge_value("perf_class"), Some(2));
        assert_eq!(telemetry.gauge_value("perf_class.score_milli"), Some(1080));
        assert_eq!(telemetry.gauge_value("perf_class.alu_mops"), Some(311));
        assert_eq!(telemetry.gauge_value("perf_class.cores"), Some(4));
        assert_eq!(
            telemetry.gauge_value("perf_class.warmup_vectors_per_s"),
            Some(123_457)
        );
        let report2 = telemetry.snapshot();
        assert_eq!(report2.labels["build.perf_class"], "baseline");
        // Re-recording a (possibly different) measurement is not a
        // gauge conflict: these are levels.
        record_perf_class(
            &telemetry,
            &PerfReport {
                warmup_vectors_per_s: 9.0,
                ..report
            },
        );
        assert_eq!(telemetry.counter(GAUGE_CONFLICTS), 0);
    }

    #[test]
    fn calibration_json_carries_the_fingerprint() {
        let calibration = Calibration {
            alu_mops: 300.0,
            mem_mops: 12.0,
            score: 1.0,
            cores: 2,
            profile: "release",
        };
        let doc = calibration.to_json();
        assert_eq!(doc.get("score").unwrap().as_f64(), Some(1.0));
        assert_eq!(doc.get("cores").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("profile").unwrap().as_str(), Some("release"));
    }
}
