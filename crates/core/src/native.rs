//! The native engine: emitted C, actually compiled and executed.
//!
//! Both technique crates emit the paper's C output; this module closes
//! the loop at runtime. [`build_native`] compiles the chosen engine's
//! interpreted twin, emits its C translation unit
//! (`codegen_c::emit_native`), invokes the host C compiler (`cc
//! -shared -fPIC -O2`), `dlopen`s the shared object, and wraps both in
//! a [`UnitDelaySimulator`] whose `simulate_one_vector` is machine
//! code.
//!
//! # State handshake
//!
//! A shared object's `static word` variables are process-global, and
//! `dlopen` of the same path returns one handle — two simulators
//! loading the same artifact would trample each other's retained
//! state. The authoritative state therefore lives in the interpreted
//! twin's arena: every vector, under the library's call lock, the
//! wrapper copies the arena *into* the object (`uds_state_set`), runs
//! `simulate_one_vector`, and copies it back out (`uds_state_get`).
//! Two memcpys per vector buy full correctness for clones, seeding,
//! reset, history readback, and fallback replay — every query path
//! simply reads the twin.
//!
//! # Artifact cache
//!
//! Compiled objects land in [`cache_dir`] (`$UDS_NATIVE_CACHE`, or
//! `uds-native-cache` under the system temp dir) named
//! `{netlist_hash:016x}-{flavor}-w{bits}.so`, where the hash is the
//! same canonical-netlist FNV the serve LRU keys on
//! ([`crate::cache::netlist_hash`]). A fresh process finds the
//! artifact on disk and skips the `cc` invocation entirely; within a
//! process an additional registry shares one loaded library per path.
//! Cache traffic is reported through the build probe as the monotonic
//! counters `native.cache.memory_hit`, `native.cache.disk_hit`, and
//! `native.cache.compile`.
//!
//! # Degradation
//!
//! Every toolchain problem — no `cc` on `PATH`, a compile error, a
//! `dlopen` failure — is a typed [`SimErrorKind::Toolchain`] (exit
//! code 8 in the CLI), which the guarded fallback chain treats like
//! any other compile failure: the run degrades to the interpreted
//! engines and still exits 0.

// SimError deliberately carries full context and only travels on cold
// failure paths; see guard.rs for the same trade.
#![allow(clippy::result_large_err)]

use uds_netlist::{Netlist, Probe, ResourceLimits};

use crate::error::{SimError, SimErrorKind, SimPhase};
use crate::{Engine, UnitDelaySimulator, WordWidth};

/// A toolchain failure attributed to the native engine.
fn toolchain_error(message: impl Into<String>) -> SimError {
    SimError::new(
        SimErrorKind::Toolchain {
            message: message.into(),
        },
        SimPhase::Compile,
    )
    .with_engine(Engine::Native)
}

/// Builds a native simulator for `flavor` (the engine whose emitted C
/// is compiled): [`Engine::PcSet`] or any parallel-family engine.
/// [`Engine::Native`] itself maps to the pt+trim parallel program —
/// the default chain head. `word` selects the parallel arena width;
/// the PC-set emitter is always 64-bit.
///
/// # Errors
///
/// Structural and budget failures surface exactly as the interpreted
/// twin would report them; toolchain failures (no compiler, compile
/// error, load error) are [`SimErrorKind::Toolchain`].
pub fn build_native(
    netlist: &Netlist,
    flavor: Engine,
    word: WordWidth,
    limits: &ResourceLimits,
    probe: &dyn Probe,
) -> Result<Box<dyn UnitDelaySimulator>, SimError> {
    imp::build(netlist, flavor, word, limits, probe, false)
}

/// [`build_native`] with **all nets monitored** on the twin (the
/// activity profiler's variant). Monitoring changes the compiled
/// program, so these artifacts are cached under a distinct flavor key.
pub fn build_native_monitoring(
    netlist: &Netlist,
    flavor: Engine,
    word: WordWidth,
    limits: &ResourceLimits,
    probe: &dyn Probe,
) -> Result<Box<dyn UnitDelaySimulator>, SimError> {
    imp::build(netlist, flavor, word, limits, probe, true)
}

/// `true` when the host C compiler (`$UDS_CC`, default `cc`) answers
/// `--version` — probed once per process. Tests and benches use this
/// to skip with a visible notice instead of failing on toolchain-free
/// hosts.
pub fn compiler_available() -> bool {
    imp::compiler_available()
}

/// The on-disk artifact cache directory: `$UDS_NATIVE_CACHE` when set,
/// otherwise `uds-native-cache` under the system temp dir.
pub fn cache_dir() -> std::path::PathBuf {
    match std::env::var_os("UDS_NATIVE_CACHE") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::temp_dir().join("uds-native-cache"),
    }
}

#[cfg(unix)]
mod imp {
    use std::collections::HashMap;
    use std::ffi::CString;
    use std::os::raw::c_void;
    use std::path::{Path, PathBuf};
    use std::process::Command;
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

    use uds_netlist::{NetId, Netlist, Probe, ResourceLimits};
    use uds_parallel::{Optimization, ParallelSim, Word};
    use uds_pcset::PcSetSimulator;

    use super::{cache_dir, toolchain_error};
    use crate::cache::netlist_hash;
    use crate::error::SimError;
    use crate::{Engine, UnitDelaySimulator, WordWidth};

    /// The raw loader interface. glibc ships `dlopen` in libc proper,
    /// so no link flags are needed; the declarations stay local to keep
    /// the workspace dependency-free.
    mod dl {
        use std::os::raw::{c_char, c_int, c_void};

        pub const RTLD_NOW: c_int = 2;

        extern "C" {
            pub fn dlopen(filename: *const c_char, flags: c_int) -> *mut c_void;
            pub fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
            pub fn dlerror() -> *mut c_char;
        }
    }

    /// The last loader error as text (clears the error state).
    fn dl_error() -> String {
        // Safety: dlerror returns a static, thread-local buffer or null.
        unsafe {
            let msg = dl::dlerror();
            if msg.is_null() {
                "unknown dlopen error".to_owned()
            } else {
                std::ffi::CStr::from_ptr(msg).to_string_lossy().into_owned()
            }
        }
    }

    /// One loaded shared object: the `dlopen` handle's three exported
    /// functions plus the call lock that serializes the state
    /// handshake. The handle is never `dlclose`d — the process-wide
    /// registry keeps every loaded artifact alive, which is exactly
    /// the amortization a long-lived daemon wants.
    pub struct NativeLib {
        simulate: *mut c_void,
        state_set: *mut c_void,
        state_get: *mut c_void,
        call_lock: Mutex<()>,
    }

    // Safety: the raw pointers are immutable code addresses; all calls
    // through them go through `call_lock`.
    unsafe impl Send for NativeLib {}
    unsafe impl Sync for NativeLib {}

    fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
        mutex
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    impl NativeLib {
        fn open(path: &Path) -> Result<NativeLib, SimError> {
            use std::os::unix::ffi::OsStrExt;
            let cpath = CString::new(path.as_os_str().as_bytes())
                .map_err(|_| toolchain_error("artifact path contains a NUL byte"))?;
            // Safety: dlopen/dlsym on a path we just compiled; symbol
            // names are static NUL-terminated literals.
            unsafe {
                dl::dlerror();
                let handle = dl::dlopen(cpath.as_ptr(), dl::RTLD_NOW);
                if handle.is_null() {
                    return Err(toolchain_error(format!(
                        "dlopen of {} failed: {}",
                        path.display(),
                        dl_error()
                    )));
                }
                let sym = |name: &'static str| -> Result<*mut c_void, SimError> {
                    let cname = CString::new(name).expect("static symbol name");
                    let ptr = dl::dlsym(handle, cname.as_ptr());
                    if ptr.is_null() {
                        return Err(toolchain_error(format!(
                            "{} does not export `{name}`: {}",
                            path.display(),
                            dl_error()
                        )));
                    }
                    Ok(ptr)
                };
                Ok(NativeLib {
                    simulate: sym("simulate_one_vector")?,
                    state_set: sym("uds_state_set")?,
                    state_get: sym("uds_state_get")?,
                    call_lock: Mutex::new(()),
                })
            }
        }

        /// One parallel-flavor vector: state in, simulate, state out,
        /// atomically with respect to every other user of this object.
        fn call_parallel<W: Word>(&self, arena: &mut [W], pi: &[W]) {
            let _guard = lock(&self.call_lock);
            // Safety: the shared object was compiled from this twin's
            // program, so its arena order and input count match; the
            // signatures are fixed by the emitter.
            unsafe {
                let set: unsafe extern "C" fn(*const W) = std::mem::transmute(self.state_set);
                let sim: unsafe extern "C" fn(*const W) = std::mem::transmute(self.simulate);
                let get: unsafe extern "C" fn(*mut W) = std::mem::transmute(self.state_get);
                set(arena.as_ptr());
                sim(pi.as_ptr());
                get(arena.as_mut_ptr());
            }
        }

        /// One PC-set-flavor vector (inputs pre-broadcast to stream
        /// words, monitored finals written to `po`).
        fn call_pcset(&self, arena: &mut [u64], pi: &[u64], po: &mut [u64]) {
            let _guard = lock(&self.call_lock);
            // Safety: as in `call_parallel`; the PC-set emitter's
            // signature additionally takes the output buffer.
            unsafe {
                let set: unsafe extern "C" fn(*const u64) = std::mem::transmute(self.state_set);
                let sim: unsafe extern "C" fn(*const u64, *mut u64) =
                    std::mem::transmute(self.simulate);
                let get: unsafe extern "C" fn(*mut u64) = std::mem::transmute(self.state_get);
                set(arena.as_ptr());
                sim(pi.as_ptr(), po.as_mut_ptr());
                get(arena.as_mut_ptr());
            }
        }
    }

    /// One loaded library per artifact path, process-wide. Shared
    /// statics make two independent loads of one path hazardous; the
    /// registry guarantees a single [`NativeLib`] (and so a single
    /// call lock) per artifact.
    fn registry() -> &'static Mutex<HashMap<PathBuf, Arc<NativeLib>>> {
        static REGISTRY: OnceLock<Mutex<HashMap<PathBuf, Arc<NativeLib>>>> = OnceLock::new();
        REGISTRY.get_or_init(Mutex::default)
    }

    fn compiler() -> String {
        std::env::var("UDS_CC").unwrap_or_else(|_| "cc".to_owned())
    }

    pub fn compiler_available() -> bool {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            Command::new(compiler())
                .arg("--version")
                .output()
                .map(|out| out.status.success())
                .unwrap_or(false)
        })
    }

    /// Compiles `source` into `dest` atomically: write the C and the
    /// object under temp names, `rename` into place, so a concurrent
    /// process never observes a half-written artifact.
    fn compile_so(source: &str, dest: &Path) -> Result<(), SimError> {
        let dir = dest.parent().expect("artifact paths live in the cache dir");
        std::fs::create_dir_all(dir)
            .map_err(|e| toolchain_error(format!("cannot create {}: {e}", dir.display())))?;
        let stem = dest
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("artifact names are ascii");
        let pid = std::process::id();
        let c_path = dir.join(format!(".{stem}.{pid}.c"));
        let so_tmp = dir.join(format!(".{stem}.{pid}.so"));
        let cleanup = || {
            let _ = std::fs::remove_file(&c_path);
            let _ = std::fs::remove_file(&so_tmp);
        };
        std::fs::write(&c_path, source)
            .map_err(|e| toolchain_error(format!("cannot write {}: {e}", c_path.display())))?;
        let cc = compiler();
        let output = Command::new(&cc)
            .args(["-shared", "-fPIC", "-O2", "-o"])
            .arg(&so_tmp)
            .arg(&c_path)
            .output();
        let output = match output {
            Ok(output) => output,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                cleanup();
                return Err(toolchain_error(format!(
                    "no C compiler: `{cc}` is not on PATH (set $UDS_CC to override)"
                )));
            }
            Err(e) => {
                cleanup();
                return Err(toolchain_error(format!("cannot run `{cc}`: {e}")));
            }
        };
        if !output.status.success() {
            let stderr = String::from_utf8_lossy(&output.stderr);
            let excerpt: Vec<&str> = stderr.lines().take(8).collect();
            cleanup();
            return Err(toolchain_error(format!(
                "`{cc}` failed ({}): {}",
                output.status,
                excerpt.join("; ")
            )));
        }
        let renamed = std::fs::rename(&so_tmp, dest);
        let _ = std::fs::remove_file(&c_path);
        renamed.map_err(|e| {
            let _ = std::fs::remove_file(&so_tmp);
            toolchain_error(format!("cannot move artifact into {}: {e}", dest.display()))
        })
    }

    /// The loaded library for `path`, from (in order) the in-process
    /// registry, the on-disk artifact cache, or a fresh `cc` run over
    /// `source`. Reports which tier answered through `probe`.
    fn get_or_load(
        path: &Path,
        source: &str,
        probe: &dyn Probe,
    ) -> Result<Arc<NativeLib>, SimError> {
        // The registry lock is held across compile: a daemon taking
        // many concurrent requests for one netlist must run `cc` once,
        // not once per worker.
        let mut libs = lock(registry());
        if let Some(lib) = libs.get(path) {
            probe.count("native.cache.memory_hit", 1);
            return Ok(Arc::clone(lib));
        }
        if path.exists() {
            probe.count("native.cache.disk_hit", 1);
        } else {
            compile_so(source, path)?;
            probe.count("native.cache.compile", 1);
        }
        let lib = Arc::new(NativeLib::open(path)?);
        libs.insert(path.to_path_buf(), Arc::clone(&lib));
        Ok(lib)
    }

    fn artifact_path(hash: u64, flavor: &str, bits: u32, monitoring: bool) -> PathBuf {
        let mon = if monitoring { "-mon" } else { "" };
        cache_dir().join(format!("{hash:016x}-{flavor}{mon}-w{bits}.so"))
    }

    fn flavor_key(optimization: Optimization) -> &'static str {
        match optimization {
            Optimization::None => "par-none",
            Optimization::Trimming => "par-trim",
            Optimization::PathTracing => "par-pt",
            Optimization::PathTracingTrimming => "par-pt-trim",
            Optimization::CycleBreaking => "par-cb",
            Optimization::CycleBreakingTrimming => "par-cb-trim",
        }
    }

    /// The parallel twin + its compiled shared object.
    struct NativeParallelSim<W: Word> {
        twin: ParallelSim<W>,
        lib: Arc<NativeLib>,
    }

    impl<W: Word> UnitDelaySimulator for NativeParallelSim<W> {
        fn engine_name(&self) -> &'static str {
            "native"
        }

        fn simulate_vector(&mut self, inputs: &[bool]) {
            let pi: Vec<W> = inputs
                .iter()
                .map(|&b| if b { W::ONE } else { W::ZERO })
                .collect();
            let lib = &self.lib;
            self.twin
                .simulate_vector_with(inputs, |arena| lib.call_parallel(arena, &pi));
        }

        fn final_value(&self, net: NetId) -> bool {
            self.twin.final_value(net)
        }

        fn history(&self, net: NetId) -> Option<Vec<bool>> {
            self.twin.history(net)
        }

        fn depth(&self) -> u32 {
            self.twin.depth()
        }

        fn reset(&mut self) {
            self.twin.reset();
        }

        fn seed_stable(&mut self, stable: &[bool]) {
            self.twin.seed_stable(stable);
        }

        fn clone_box(&self) -> Box<dyn UnitDelaySimulator> {
            Box::new(NativeParallelSim {
                twin: self.twin.clone(),
                lib: Arc::clone(&self.lib),
            })
        }

        fn for_each_toggle(&self, net: NetId, visit: &mut dyn FnMut(u32)) -> Option<u32> {
            self.twin.for_each_toggle_in_field(net, visit)
        }

        fn simulate_vector_leveled(
            &mut self,
            inputs: &[bool],
            profile: &mut uds_netlist::LevelProfile,
        ) {
            // Per-level attribution needs the segmented interpreter, so
            // the profiled path runs the twin (same program, same
            // state) instead of the opaque machine-code loop. Hotspot
            // reports for `native` therefore describe the interpreted
            // twin's cost shape — which shares the native code's
            // per-level structure, just not its constant factor.
            self.twin.simulate_vector_leveled(inputs, profile);
        }

        fn level_static_profile(&self) -> Option<uds_netlist::LevelProfile> {
            Some(self.twin.level_static_profile())
        }
    }

    /// The PC-set twin + its compiled shared object.
    struct NativePcSetSim {
        twin: PcSetSimulator,
        lib: Arc<NativeLib>,
        /// Scratch for the emitted `po` buffer (monitored finals) —
        /// the wrapper reads results from the twin's arena instead.
        po: Vec<u64>,
    }

    impl UnitDelaySimulator for NativePcSetSim {
        fn engine_name(&self) -> &'static str {
            "native"
        }

        fn simulate_vector(&mut self, inputs: &[bool]) {
            let lib = &self.lib;
            let po = &mut self.po;
            self.twin
                .simulate_vector_with(inputs, |arena, words| lib.call_pcset(arena, words, po));
        }

        fn final_value(&self, net: NetId) -> bool {
            self.twin.final_value(net)
        }

        fn history(&self, net: NetId) -> Option<Vec<bool>> {
            self.twin.history(net)
        }

        fn depth(&self) -> u32 {
            self.twin.depth()
        }

        fn reset(&mut self) {
            self.twin.reset();
        }

        fn seed_stable(&mut self, stable: &[bool]) {
            self.twin.seed_stable(stable);
        }

        fn clone_box(&self) -> Box<dyn UnitDelaySimulator> {
            Box::new(NativePcSetSim {
                twin: self.twin.clone(),
                lib: Arc::clone(&self.lib),
                po: self.po.clone(),
            })
        }

        fn simulate_vector_leveled(
            &mut self,
            inputs: &[bool],
            profile: &mut uds_netlist::LevelProfile,
        ) {
            // As in the parallel wrapper: the profiled path runs the
            // interpreted twin, whose per-level segments mirror the
            // emitted C's statement order.
            self.twin.simulate_vector_leveled(inputs, profile);
        }

        fn level_static_profile(&self) -> Option<uds_netlist::LevelProfile> {
            Some(self.twin.level_static_profile())
        }
    }

    pub fn build(
        netlist: &Netlist,
        flavor: Engine,
        word: WordWidth,
        limits: &ResourceLimits,
        probe: &dyn Probe,
        monitoring: bool,
    ) -> Result<Box<dyn UnitDelaySimulator>, SimError> {
        let hash = netlist_hash(netlist);
        let optimization = match flavor {
            Engine::EventDriven => {
                return Err(toolchain_error(
                    "the event-driven baseline has no C emitter",
                ))
            }
            Engine::Native => Optimization::PathTracingTrimming,
            Engine::PcSet => {
                let twin = if monitoring {
                    let all: Vec<NetId> = netlist.net_ids().collect();
                    PcSetSimulator::compile_probed_with_monitors(netlist, &all, limits, probe)?
                } else {
                    PcSetSimulator::compile_probed(netlist, limits, probe)?
                };
                let source = uds_pcset::codegen_c::emit_native(netlist, &twin)
                    .map_err(|e| toolchain_error(format!("emit: {e}")))?;
                let path = artifact_path(hash, "pcset", 64, monitoring);
                let lib = get_or_load(&path, &source, probe)?;
                let po = vec![0u64; twin.monitored().len()];
                return Ok(Box::new(NativePcSetSim { twin, lib, po }));
            }
            Engine::Parallel => Optimization::None,
            Engine::ParallelTrimming => Optimization::Trimming,
            Engine::ParallelPathTracing => Optimization::PathTracing,
            Engine::ParallelPathTracingTrimming => Optimization::PathTracingTrimming,
            Engine::ParallelCycleBreaking => Optimization::CycleBreaking,
        };
        fn parallel<W: Word>(
            netlist: &Netlist,
            optimization: Optimization,
            limits: &ResourceLimits,
            probe: &dyn Probe,
            hash: u64,
            monitoring: bool,
        ) -> Result<Box<dyn UnitDelaySimulator>, SimError> {
            let twin = if monitoring {
                ParallelSim::<W>::compile_monitoring_all_probed(
                    netlist,
                    optimization,
                    limits,
                    probe,
                )?
            } else {
                ParallelSim::<W>::compile_probed(netlist, optimization, limits, probe)?
            };
            let source = uds_parallel::codegen_c::emit_native(netlist, &twin)
                .map_err(|e| toolchain_error(format!("emit: {e}")))?;
            let path = artifact_path(hash, flavor_key(optimization), W::BITS, monitoring);
            let lib = get_or_load(&path, &source, probe)?;
            Ok(Box::new(NativeParallelSim { twin, lib }))
        }
        match word {
            WordWidth::W32 => {
                parallel::<u32>(netlist, optimization, limits, probe, hash, monitoring)
            }
            WordWidth::W64 => {
                parallel::<u64>(netlist, optimization, limits, probe, hash, monitoring)
            }
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use uds_netlist::{Netlist, Probe, ResourceLimits};

    use super::toolchain_error;
    use crate::error::SimError;
    use crate::{Engine, UnitDelaySimulator, WordWidth};

    pub fn build(
        _netlist: &Netlist,
        _flavor: Engine,
        _word: WordWidth,
        _limits: &ResourceLimits,
        _probe: &dyn Probe,
        _monitoring: bool,
    ) -> Result<Box<dyn UnitDelaySimulator>, SimError> {
        Err(toolchain_error(
            "runtime loading of compiled C requires a Unix host",
        ))
    }

    pub fn compiler_available() -> bool {
        false
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use crate::TracedEventSim;
    use uds_netlist::generators::iscas::c17;
    use uds_netlist::NoopProbe;

    /// The missing-compiler test overrides `$UDS_CC`, which every
    /// native build reads live — hold this across any test that
    /// touches the toolchain so they cannot interleave.
    fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn skip_notice() -> bool {
        if compiler_available() {
            return false;
        }
        eprintln!("SKIP: no C compiler on PATH; native-engine test not exercised");
        true
    }

    #[test]
    fn native_matches_the_baseline_on_c17() {
        let _env = env_lock();
        if skip_notice() {
            return;
        }
        let nl = c17();
        let mut native = build_native(
            &nl,
            Engine::Native,
            WordWidth::W32,
            &ResourceLimits::unlimited(),
            &NoopProbe,
        )
        .unwrap();
        let mut baseline = TracedEventSim::new(&nl).unwrap();
        for pattern in 0u32..32 {
            let inputs: Vec<bool> = (0..5).map(|i| pattern >> i & 1 != 0).collect();
            native.simulate_vector(&inputs);
            crate::UnitDelaySimulator::simulate_vector(&mut baseline, &inputs);
            for &po in nl.primary_outputs() {
                assert_eq!(
                    native.final_value(po),
                    baseline.final_value(po),
                    "native diverged on {pattern:05b}"
                );
            }
        }
    }

    #[test]
    fn missing_compiler_is_a_typed_toolchain_error() {
        // Point $UDS_CC at a nonexistent binary via a scoped override:
        // the error must be the toolchain class, never a panic. The
        // artifact cache would mask the compile step, so use a unique
        // cache dir.
        let _env = env_lock();
        if std::env::var_os("UDS_CC").is_some() {
            eprintln!("SKIP: $UDS_CC is set; not overriding the toolchain");
            return;
        }
        let dir = std::env::temp_dir().join(format!("uds-native-missing-{}", std::process::id()));
        std::env::set_var("UDS_NATIVE_CACHE", &dir);
        std::env::set_var("UDS_CC", "uds-no-such-compiler");
        let result = build_native(
            &c17(),
            Engine::Native,
            WordWidth::W64,
            &ResourceLimits::unlimited(),
            &NoopProbe,
        );
        std::env::remove_var("UDS_CC");
        std::env::remove_var("UDS_NATIVE_CACHE");
        let _ = std::fs::remove_dir_all(&dir);
        let err = match result {
            Ok(_) => panic!("a missing compiler cannot build"),
            Err(err) => err,
        };
        assert_eq!(err.class(), crate::FailureClass::Toolchain);
        assert!(err.to_string().contains("uds-no-such-compiler"), "{err}");
    }
}
