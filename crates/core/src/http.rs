//! A hand-rolled HTTP/1.1 server core for the simulation daemon.
//!
//! The workspace builds fully offline, so the service layer gets the
//! same treatment as the JSON, VCD, and trace writers: a small,
//! dependency-free implementation of exactly the subset we serve.
//! [`read_request`] parses one request (request line, headers, and a
//! `Content-Length`-delimited body) off any [`Read`]; [`Response`]
//! renders one `Content-Length`-framed response whose `Connection`
//! header the caller picks at write time. Connections are persistent
//! by HTTP/1.1 default — scrapers poll `/metrics` every few seconds
//! and batch submitters page job results, so reusing the connection
//! skips a TCP handshake per request — and the explicit
//! `Content-Length` framing makes responses self-delimiting, so
//! keep-alive needs no chunked encoding.
//!
//! Hard limits make the parser safe on untrusted sockets: the request
//! head (request line + headers) is capped at [`MAX_HEAD_BYTES`], the
//! body at a caller-chosen ceiling, and both reject early with a typed
//! [`HttpError`] that maps onto a 4xx status. Socket timeouts surface
//! as their own variants so the connection loop can tell an idle peer
//! (reap silently) from a slowloris mid-head stall (answer 408).

use std::io::{self, Read, Write};

/// Maximum bytes of request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// The request/response trace-correlation header: clients may send one
/// to stamp their own id on a request; the daemon echoes it (or a
/// generated id) on every response and in its request log and trace
/// stream.
pub const TRACE_ID_HEADER: &str = "x-uds-trace-id";

/// Maximum characters of an inbound trace id kept after sanitization.
pub const TRACE_ID_MAX_LEN: usize = 64;

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path plus any query string).
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection may serve another request after this
    /// one: HTTP/1.1 defaults to keep-alive unless the client sent
    /// `Connection: close`; HTTP/1.0 requires an explicit
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The inbound [`TRACE_ID_HEADER`], sanitized for safe echoing:
    /// only `[A-Za-z0-9._-]` survives (anything else drops), capped at
    /// [`TRACE_ID_MAX_LEN`] characters. `None` when the header is
    /// absent or nothing survives — the server then mints its own id.
    pub fn trace_id(&self) -> Option<String> {
        let raw = self.header(TRACE_ID_HEADER)?;
        let id: String = raw
            .chars()
            .filter(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
            .take(TRACE_ID_MAX_LEN)
            .collect();
        (!id.is_empty()).then_some(id)
    }
}

/// Why a request could not be read. Each variant maps onto the 4xx
/// status the server should answer with.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or framing.
    Bad(String),
    /// Request head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// Declared body length exceeded the server's ceiling.
    BodyTooLarge { declared: u64, limit: u64 },
    /// A body-bearing method arrived without `Content-Length`.
    LengthRequired,
    /// The peer closed the connection cleanly before sending any
    /// byte of a request — the normal end of a keep-alive exchange,
    /// not a protocol violation. No response is owed.
    Closed,
    /// The socket read timed out. `mid_request` distinguishes a
    /// slowloris-style stall (bytes arrived, then silence — answer
    /// 408) from a connection that simply sat idle between requests
    /// (reap silently).
    TimedOut {
        /// Whether any bytes of the request had arrived.
        mid_request: bool,
    },
    /// The socket failed or closed mid-request.
    Io(io::Error),
}

impl HttpError {
    /// The HTTP status this error answers with. [`HttpError::Closed`]
    /// and an idle [`HttpError::TimedOut`] owe no response at all —
    /// the connection loop checks [`HttpError::deserves_response`]
    /// first.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Bad(_) => 400,
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::LengthRequired => 411,
            HttpError::Closed => 400,
            HttpError::TimedOut { .. } => 408,
            HttpError::Io(_) => 400,
        }
    }

    /// Whether the peer should be sent an error response before the
    /// connection closes. A clean close or an idle timeout means the
    /// peer walked away — writing to it is wasted (or impossible).
    pub fn deserves_response(&self) -> bool {
        !matches!(
            self,
            HttpError::Closed | HttpError::TimedOut { mid_request: false } | HttpError::Io(_)
        )
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Bad(what) => write!(f, "bad request: {what}"),
            HttpError::HeadTooLarge => {
                write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::LengthRequired => write!(f, "Content-Length required"),
            HttpError::Closed => write!(f, "connection closed between requests"),
            HttpError::TimedOut { mid_request: true } => write!(f, "read timed out mid-request"),
            HttpError::TimedOut { mid_request: false } => write!(f, "connection idled out"),
            HttpError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads the request head byte-by-byte until the blank line. One-byte
/// reads are fine here: callers hand in a buffered stream, and the head
/// is at most [`MAX_HEAD_BYTES`]. A clean close or a timeout before
/// the first byte is the peer idling out, not a malformed request.
fn read_head(stream: &mut impl Read) -> Result<String, HttpError> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    loop {
        let n = match stream.read(&mut byte) {
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                ) =>
            {
                return Err(HttpError::TimedOut {
                    mid_request: !head.is_empty(),
                })
            }
            Err(e) => return Err(HttpError::Io(e)),
        };
        if n == 0 {
            if head.is_empty() {
                return Err(HttpError::Closed);
            }
            return Err(HttpError::Bad("connection closed mid-head".to_owned()));
        }
        head.push(byte[0]);
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
    }
    String::from_utf8(head).map_err(|_| HttpError::Bad("head is not UTF-8".to_owned()))
}

/// Reads one HTTP/1.x request from `stream`. Bodies are accepted only
/// with `Content-Length` (no chunked encoding) and only up to
/// `max_body` bytes.
///
/// # Errors
///
/// Any framing violation, over-limit head or body, or socket failure.
pub fn read_request(stream: &mut impl Read, max_body: u64) -> Result<Request, HttpError> {
    let head = read_head(stream)?;
    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Bad("empty request".to_owned()))?;
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => {
            return Err(HttpError::Bad(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad(format!("unsupported version `{version}`")));
    }

    let mut headers = Vec::new();
    for line in lines.take_while(|l| !l.is_empty()) {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Bad(format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut request = Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body: Vec::new(),
        keep_alive: false,
    };
    request.keep_alive = match request.header("connection") {
        Some(v) if v.eq_ignore_ascii_case("close") => false,
        Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
        _ => version != "HTTP/1.0", // 1.1+ is persistent by default
    };
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::Bad(
            "chunked bodies are not supported".to_owned(),
        ));
    }
    let declared = match request.header("content-length") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| HttpError::Bad(format!("bad Content-Length `{v}`")))?,
        None if request.method == "POST" || request.method == "PUT" => {
            return Err(HttpError::LengthRequired)
        }
        None => 0,
    };
    if declared > max_body {
        return Err(HttpError::BodyTooLarge {
            declared,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; declared as usize];
    stream.read_exact(&mut body).map_err(|e| {
        if matches!(
            e.kind(),
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
        ) {
            HttpError::TimedOut { mid_request: true }
        } else {
            HttpError::Io(e)
        }
    })?;
    Ok(Request { body, ..request })
}

/// One response, rendered with explicit `Content-Length` framing and
/// the `Connection` disposition the caller picks at write time.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra headers beyond the framing set (`Retry-After`,
    /// `Location`, …), in write order.
    pub extra_headers: Vec<(&'static str, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Adds one extra header (builder style). The value must already
    /// be a legal header value — no folding or escaping happens here.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// Writes the response (status line, headers, body) to `stream`,
    /// announcing `Connection: keep-alive` or `close` per the caller's
    /// decision — the caller, not the response, knows whether the
    /// connection loop will read another request.
    ///
    /// # Errors
    ///
    /// Socket write failures pass through.
    pub fn write_to(&self, stream: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        for (name, value) in &self.extra_headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        stream.write_all(b"\r\n")?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The canonical reason phrase for the status codes the daemon uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        410 => "Gone",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()), 1024)
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_content_length() {
        let req = parse("POST /simulate HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn trace_ids_sanitize_and_cap() {
        let req = parse("GET / HTTP/1.1\r\nX-Uds-Trace-Id: load-42.b\r\n\r\n").unwrap();
        assert_eq!(req.trace_id().as_deref(), Some("load-42.b"));
        // Hostile characters drop; what remains is still usable.
        let req = parse("GET / HTTP/1.1\r\nx-uds-trace-id: a\"b{c}d\r\n\r\n").unwrap();
        assert_eq!(req.trace_id().as_deref(), Some("abcd"));
        // Nothing left after sanitizing → no id at all.
        let req = parse("GET / HTTP/1.1\r\nx-uds-trace-id: \"{}\"\r\n\r\n").unwrap();
        assert_eq!(req.trace_id(), None);
        let req = parse("GET / HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.trace_id(), None);
        // Over-long ids truncate to the cap.
        let raw = format!(
            "GET / HTTP/1.1\r\nx-uds-trace-id: {}\r\n\r\n",
            "x".repeat(200)
        );
        assert_eq!(
            parse(&raw).unwrap().trace_id().unwrap().len(),
            TRACE_ID_MAX_LEN
        );
    }

    #[test]
    fn post_without_length_is_411() {
        let err = parse("POST /simulate HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 411);
    }

    #[test]
    fn oversized_body_is_413_before_reading_it() {
        let err = parse("POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn oversized_head_is_431() {
        let raw = format!(
            "GET /x HTTP/1.1\r\nX-Junk: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        let err = read_request(&mut Cursor::new(raw.into_bytes()), 1024).unwrap_err();
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.status(), 400, "{raw:?}");
        }
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let req = parse("GET /metrics HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.path, "/metrics");
    }

    #[test]
    fn keep_alive_follows_version_defaults_and_connection_header() {
        let cases = [
            ("GET / HTTP/1.1\r\n\r\n", true),
            ("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false),
            ("GET / HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n", true),
            ("GET / HTTP/1.0\r\n\r\n", false),
            ("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true),
        ];
        for (raw, expected) in cases {
            assert_eq!(parse(raw).unwrap().keep_alive, expected, "{raw:?}");
        }
    }

    #[test]
    fn clean_eof_before_any_byte_is_closed_not_bad() {
        let err = parse("").unwrap_err();
        assert!(matches!(err, HttpError::Closed), "{err:?}");
        assert!(!err.deserves_response());
        // But EOF after a partial head is a protocol violation.
        let err = parse("GET / HT").unwrap_err();
        assert!(matches!(err, HttpError::Bad(_)), "{err:?}");
        assert!(err.deserves_response());
    }

    #[test]
    fn timeouts_split_idle_from_slowloris() {
        struct TimesOut(Vec<u8>);
        impl Read for TimesOut {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() {
                    return Err(io::Error::from(io::ErrorKind::WouldBlock));
                }
                buf[0] = self.0.remove(0);
                Ok(1)
            }
        }
        let idle = read_request(&mut TimesOut(Vec::new()), 1024).unwrap_err();
        assert!(
            matches!(idle, HttpError::TimedOut { mid_request: false }),
            "{idle:?}"
        );
        assert!(!idle.deserves_response(), "idle peers are reaped silently");
        let stalled = read_request(&mut TimesOut(b"GET / H".to_vec()), 1024).unwrap_err();
        assert!(
            matches!(stalled, HttpError::TimedOut { mid_request: true }),
            "{stalled:?}"
        );
        assert_eq!(stalled.status(), 408);
        assert!(stalled.deserves_response());
    }

    #[test]
    fn response_renders_status_line_headers_and_body() {
        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn response_can_keep_alive_and_carry_extra_headers() {
        let mut out = Vec::new();
        Response::text(429, "busy")
            .with_header("Retry-After", "1")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\nbusy"));
    }
}
