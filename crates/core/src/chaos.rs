//! Deterministic fault injection for the guarded execution layer.
//!
//! A [`FaultPlan`] names exactly which faults to inject — an engine
//! build failing inside a named compile phase, a budget tripping, a
//! panic at vector N, silent output corruption from vector N, a
//! poisoned stimulus bit, a truncated `.bench` source. Nothing is
//! random: the same plan injects the same faults every run, so the
//! chaos suite's invariant ("no injected fault ever yields silently
//! wrong outputs") is reproducible.
//!
//! The harness plugs in through [`crate::guard::EngineFactory`]:
//! [`ChaosFactory`] builds real engines and sabotages the ones the plan
//! names, wrapping them in [`ChaosSimulator`] for runtime faults.

use std::panic::{self, AssertUnwindSafe};

use uds_netlist::{LimitExceeded, NetId, Netlist, Resource, ResourceLimits};

use crate::error::{SimError, SimErrorKind, SimPhase};
use crate::guard::{DefaultEngineFactory, EngineFactory};
use crate::{Engine, UnitDelaySimulator};

/// One injected fault.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Building `engine` panics inside the named compile phase (the
    /// panic is injected for real and contained with `catch_unwind`).
    CompilePhasePanic {
        /// The engine whose build is sabotaged.
        engine: Engine,
        /// The compile phase named in the panic message.
        phase: &'static str,
    },
    /// Building `engine` reports an exhausted budget.
    CompileBudget {
        /// The engine whose budget trips.
        engine: Engine,
    },
    /// `engine` panics while simulating vector `vector` (0-based).
    RunPanicAt {
        /// The engine that panics.
        engine: Engine,
        /// Which vector triggers the panic.
        vector: usize,
    },
    /// `engine` silently inverts every reported value once vector
    /// `vector` has run — the fault only cross-checking can catch.
    SilentCorruptionFrom {
        /// The engine that corrupts.
        engine: Engine,
        /// First vector after which outputs lie.
        vector: usize,
    },
    /// Stimulus bit `bit` of vector `vector` is flipped before it
    /// reaches any engine (apply with [`FaultPlan::poison_stimulus`]).
    PoisonInput {
        /// Which vector is poisoned.
        vector: usize,
        /// Which input bit flips.
        bit: usize,
    },
}

/// A named, fully deterministic set of faults to inject.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// Plan name, for reports.
    pub name: String,
    /// The faults, all injected.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan injecting a single fault.
    pub fn single(name: impl Into<String>, fault: Fault) -> Self {
        FaultPlan {
            name: name.into(),
            faults: vec![fault],
        }
    }

    /// Faults targeting `engine`'s build, if any.
    fn compile_fault(&self, engine: Engine) -> Option<&Fault> {
        self.faults.iter().find(|f| {
            matches!(f,
                Fault::CompilePhasePanic { engine: e, .. } | Fault::CompileBudget { engine: e }
                if *e == engine
            )
        })
    }

    /// Runtime faults targeting `engine`, if any.
    fn run_faults(&self, engine: Engine) -> (Option<usize>, Option<usize>) {
        let mut panic_at = None;
        let mut corrupt_from = None;
        for fault in &self.faults {
            match *fault {
                Fault::RunPanicAt { engine: e, vector } if e == engine => {
                    panic_at = Some(vector);
                }
                Fault::SilentCorruptionFrom { engine: e, vector } if e == engine => {
                    corrupt_from = Some(vector);
                }
                _ => {}
            }
        }
        (panic_at, corrupt_from)
    }

    /// Applies every [`Fault::PoisonInput`] to a stimulus, in place.
    /// Out-of-range coordinates are ignored (a poison that misses is
    /// still deterministic).
    pub fn poison_stimulus(&self, stimulus: &mut [Vec<bool>]) {
        for fault in &self.faults {
            if let Fault::PoisonInput { vector, bit } = *fault {
                if let Some(v) = stimulus.get_mut(vector) {
                    if let Some(b) = v.get_mut(bit) {
                        *b = !*b;
                    }
                }
            }
        }
    }
}

/// Deterministically truncates `.bench` source to its first
/// `keep_bytes` bytes, respecting UTF-8 boundaries — the "input cut off
/// mid-write" fault. Feed the result to the parser; it must answer with
/// a netlist or a typed parse error, never a panic.
pub fn truncate_bench(text: &str, keep_bytes: usize) -> &str {
    if keep_bytes >= text.len() {
        return text;
    }
    let mut end = keep_bytes;
    while end > 0 && !text.is_char_boundary(end) {
        end -= 1;
    }
    &text[..end]
}

/// An engine wrapper that injects runtime faults: a panic at a chosen
/// vector, or silent output inversion after one.
pub struct ChaosSimulator {
    inner: Box<dyn UnitDelaySimulator>,
    vectors_seen: usize,
    panic_at: Option<usize>,
    corrupt_from: Option<usize>,
}

impl ChaosSimulator {
    /// Wraps an engine with the given faults.
    pub fn new(
        inner: Box<dyn UnitDelaySimulator>,
        panic_at: Option<usize>,
        corrupt_from: Option<usize>,
    ) -> Self {
        ChaosSimulator {
            inner,
            vectors_seen: 0,
            panic_at,
            corrupt_from,
        }
    }

    fn corrupting(&self) -> bool {
        self.corrupt_from
            .is_some_and(|from| self.vectors_seen > from)
    }
}

impl UnitDelaySimulator for ChaosSimulator {
    fn engine_name(&self) -> &'static str {
        self.inner.engine_name()
    }

    fn simulate_vector(&mut self, inputs: &[bool]) {
        if self.panic_at == Some(self.vectors_seen) {
            panic!(
                "injected fault: engine panic at vector {}",
                self.vectors_seen
            );
        }
        self.inner.simulate_vector(inputs);
        self.vectors_seen += 1;
    }

    fn final_value(&self, net: NetId) -> bool {
        let value = self.inner.final_value(net);
        if self.corrupting() {
            !value
        } else {
            value
        }
    }

    fn history(&self, net: NetId) -> Option<Vec<bool>> {
        let history = self.inner.history(net)?;
        Some(if self.corrupting() {
            history.into_iter().map(|b| !b).collect()
        } else {
            history
        })
    }

    fn depth(&self) -> u32 {
        self.inner.depth()
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.vectors_seen = 0;
    }

    fn seed_stable(&mut self, stable: &[bool]) {
        // Fault coordinates stay relative to this wrapper's own vector
        // count — a seed moves the *state*, not the sabotage schedule.
        self.inner.seed_stable(stable);
    }

    fn clone_box(&self) -> Box<dyn UnitDelaySimulator> {
        Box::new(ChaosSimulator {
            inner: self.inner.clone_box(),
            vectors_seen: self.vectors_seen,
            panic_at: self.panic_at,
            corrupt_from: self.corrupt_from,
        })
    }
}

/// An [`EngineFactory`] executing a [`FaultPlan`]: engines the plan
/// names come up sabotaged; everything else builds normally.
#[derive(Clone)]
pub struct ChaosFactory {
    plan: FaultPlan,
    inner: DefaultEngineFactory,
}

impl ChaosFactory {
    /// A factory injecting `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        ChaosFactory {
            plan,
            inner: DefaultEngineFactory::default(),
        }
    }
}

impl EngineFactory for ChaosFactory {
    fn build(
        &self,
        netlist: &Netlist,
        engine: Engine,
        limits: &ResourceLimits,
    ) -> Result<Box<dyn UnitDelaySimulator>, SimError> {
        match self.plan.compile_fault(engine) {
            Some(&Fault::CompilePhasePanic { phase, .. }) => {
                // Panic for real and contain it, exercising the same
                // path a genuine compiler bug would take.
                let payload = panic::catch_unwind(AssertUnwindSafe(|| -> () {
                    panic!("injected fault: compile phase '{phase}' failed");
                }))
                .expect_err("the injected panic always fires");
                let message = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .unwrap_or_else(|| "injected compile panic".to_owned());
                return Err(SimError::new(
                    SimErrorKind::EnginePanicked { message },
                    SimPhase::Compile,
                )
                .with_engine(engine));
            }
            Some(&Fault::CompileBudget { .. }) => {
                return Err(SimError::new(
                    SimErrorKind::Budget(LimitExceeded {
                        resource: Resource::MemoryBytes,
                        needed: u64::MAX,
                        allowed: 0,
                    }),
                    SimPhase::Compile,
                )
                .with_engine(engine));
            }
            _ => {}
        }
        let sim = self.inner.build(netlist, engine, limits)?;
        let (panic_at, corrupt_from) = self.plan.run_faults(engine);
        if panic_at.is_some() || corrupt_from.is_some() {
            Ok(Box::new(ChaosSimulator::new(sim, panic_at, corrupt_from)))
        } else {
            Ok(sim)
        }
    }

    fn clone_box(&self) -> Box<dyn EngineFactory> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_is_utf8_safe() {
        let text = "INPUT(é)\n";
        for keep in 0..=text.len() {
            let cut = truncate_bench(text, keep);
            assert!(cut.len() <= keep);
            assert!(text.starts_with(cut));
        }
        assert_eq!(truncate_bench("abc", 10), "abc");
    }

    #[test]
    fn poison_flips_exactly_one_bit() {
        let plan = FaultPlan::single("poison", Fault::PoisonInput { vector: 1, bit: 2 });
        let mut stimulus = vec![vec![false; 4], vec![false; 4]];
        plan.poison_stimulus(&mut stimulus);
        assert_eq!(stimulus[0], vec![false; 4]);
        assert_eq!(stimulus[1], vec![false, false, true, false]);
        // Out-of-range poison is a no-op, not a panic.
        let oob = FaultPlan::single("oob", Fault::PoisonInput { vector: 9, bit: 9 });
        oob.poison_stimulus(&mut stimulus);
    }
}
