//! Dense per-net time histories and transition queries.

use uds_netlist::NetId;

/// The unit-delay history of one net for one input vector: entry `t` is
/// the net's value at time `t` (gate delays after the inputs changed).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Waveform {
    /// The net this history belongs to.
    pub net: NetId,
    /// Values at times `0..=depth`.
    pub values: Vec<bool>,
}

impl Waveform {
    /// Wraps a history.
    pub fn new(net: NetId, values: Vec<bool>) -> Self {
        Waveform { net, values }
    }

    /// The settled (final) value.
    ///
    /// # Panics
    ///
    /// Panics on an empty history (histories always have depth+1 ≥ 1
    /// entries).
    pub fn final_value(&self) -> bool {
        *self.values.last().expect("histories are nonempty")
    }

    /// The value before the vector was applied (time 0 holds the
    /// retained previous value for non-input nets).
    ///
    /// # Panics
    ///
    /// Panics on an empty history.
    pub fn initial_value(&self) -> bool {
        self.values[0]
    }

    /// Invokes `visit(t)` for every time `t` at which the value differs
    /// from `t - 1`, in ascending order, and returns how many there were
    /// — the streaming form of [`Waveform::transitions`] the activity
    /// profiler folds into its histograms without allocating.
    pub fn for_each_transition(&self, visit: &mut dyn FnMut(u32)) -> usize {
        let mut count = 0;
        for (i, pair) in self.values.windows(2).enumerate() {
            if pair[0] != pair[1] {
                count += 1;
                visit(i as u32 + 1);
            }
        }
        count
    }

    /// Times `t` at which the value differs from `t - 1`.
    pub fn transitions(&self) -> Vec<u32> {
        let mut times = Vec::new();
        self.for_each_transition(&mut |t| times.push(t));
        times
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.for_each_transition(&mut |_| {})
    }

    /// `true` if the net never changed during this vector.
    pub fn is_stable(&self) -> bool {
        self.transition_count() == 0
    }
}

impl std::fmt::Display for Waveform {
    /// Renders as a compact trace like `0011101`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for &v in &self.values {
            write!(f, "{}", v as u8)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf(bits: &[u8]) -> Waveform {
        Waveform::new(NetId::from_index(0), bits.iter().map(|&b| b != 0).collect())
    }

    #[test]
    fn transitions_are_found() {
        let w = wf(&[0, 0, 1, 1, 0, 1]);
        assert_eq!(w.transitions(), vec![2, 4, 5]);
        assert_eq!(w.transition_count(), 3);
        assert!(!w.is_stable());
        assert!(!w.initial_value());
        assert!(w.final_value());
    }

    #[test]
    fn stable_waveform() {
        let w = wf(&[1, 1, 1]);
        assert!(w.is_stable());
        assert_eq!(w.transitions(), Vec::<u32>::new());
    }

    #[test]
    fn display_is_bit_string() {
        assert_eq!(wf(&[0, 1, 1, 0]).to_string(), "0110");
    }
}
