//! The stdout contract shared by every `-` stream flag.
//!
//! Several CLI flags can stream a machine-readable report to a path or
//! to stdout (`--stats -`, `--trace -`, `--progress -`, the bench
//! tables' `--json -`). The contract is uniform:
//!
//! * at most **one** flag per invocation may claim stdout — a second
//!   `-` is a usage error, not silently interleaved JSON;
//! * when any flag claims stdout, the human-readable output moves to
//!   stderr, so `udsim … --trace - | jq .` always parses.
//!
//! [`StreamContract`] tracks the claim while flags parse; [`HumanOut`]
//! is the resulting human-output sink; [`open_sink`] / [`write_text`]
//! resolve a destination (`-` or a path) consistently.

use std::io::{self, Write};

/// Tracks which stream flag, if any, has claimed stdout.
#[derive(Clone, Debug, Default)]
pub struct StreamContract {
    claimed: Option<String>,
}

impl StreamContract {
    /// No stream flag seen yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `flag` (e.g. `"--trace"`) writing to `dest`. A `dest`
    /// of `-` claims stdout; claiming it twice is an error whose
    /// message names both flags.
    ///
    /// # Errors
    ///
    /// When `dest` is `-` and another flag already claimed stdout.
    pub fn claim(&mut self, flag: &str, dest: &str) -> Result<(), String> {
        if dest != "-" {
            return Ok(());
        }
        if let Some(previous) = &self.claimed {
            return Err(format!(
                "{flag} -: stdout is already claimed by `{previous} -` \
                 (at most one stream flag may write to stdout)"
            ));
        }
        self.claimed = Some(flag.to_owned());
        Ok(())
    }

    /// `true` once some flag claimed stdout.
    pub fn stdout_claimed(&self) -> bool {
        self.claimed.is_some()
    }

    /// The matching human-output sink: stderr when stdout is claimed.
    pub fn human(&self) -> HumanOut {
        HumanOut {
            to_stderr: self.stdout_claimed(),
        }
    }
}

/// Routes human-readable output: stdout normally, stderr when a stream
/// flag owns stdout.
#[derive(Clone, Copy, Debug, Default)]
pub struct HumanOut {
    /// `true` when human output must yield stdout to a machine stream.
    pub to_stderr: bool,
}

impl HumanOut {
    /// Prints one line to the routed stream.
    pub fn line(&self, text: impl std::fmt::Display) {
        if self.to_stderr {
            eprintln!("{text}");
        } else {
            println!("{text}");
        }
    }
}

/// Opens `dest` as a writable sink: `-` is stdout, anything else is a
/// (created or truncated) file.
///
/// # Errors
///
/// File creation errors pass through.
pub fn open_sink(dest: &str) -> io::Result<Box<dyn Write + Send>> {
    if dest == "-" {
        Ok(Box::new(io::stdout()))
    } else {
        Ok(Box::new(std::fs::File::create(dest)?))
    }
}

/// Writes a fully rendered report to `dest`: `-` prints to stdout, a
/// path writes the file and notes `wrote <dest>` on stderr.
///
/// # Errors
///
/// File write errors pass through.
pub fn write_text(dest: &str, text: &str) -> io::Result<()> {
    if dest == "-" {
        let mut out = io::stdout();
        out.write_all(text.as_bytes())?;
        out.flush()
    } else {
        std::fs::write(dest, text)?;
        eprintln!("wrote {dest}");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_destinations_never_conflict() {
        let mut contract = StreamContract::new();
        contract.claim("--stats", "a.json").unwrap();
        contract.claim("--trace", "b.json").unwrap();
        contract.claim("--progress", "c.ndjson").unwrap();
        assert!(!contract.stdout_claimed());
        assert!(!contract.human().to_stderr);
    }

    #[test]
    fn one_stdout_claim_moves_human_output_to_stderr() {
        let mut contract = StreamContract::new();
        contract.claim("--trace", "-").unwrap();
        assert!(contract.stdout_claimed());
        assert!(contract.human().to_stderr);
        contract.claim("--stats", "out.json").unwrap();
    }

    #[test]
    fn second_stdout_claim_is_an_error_naming_both_flags() {
        let mut contract = StreamContract::new();
        contract.claim("--stats", "-").unwrap();
        let err = contract.claim("--trace", "-").unwrap_err();
        assert!(err.contains("--stats"), "{err}");
        assert!(err.contains("--trace"), "{err}");
    }
}
