//! Deterministic stimulus generators.
//!
//! The paper's evaluation drives each circuit with "5,000 randomly
//! generated vectors"; [`RandomVectors`] reproduces that (seeded, so
//! every run and every engine sees the same stream). The structured
//! generators are useful in tests and examples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Endless stream of uniformly random vectors of a fixed width.
///
/// # Example
///
/// ```
/// use uds_core::vectors::RandomVectors;
///
/// let first: Vec<Vec<bool>> = RandomVectors::new(3, 7).take(2).collect();
/// let again: Vec<Vec<bool>> = RandomVectors::new(3, 7).take(2).collect();
/// assert_eq!(first, again, "seeded: reproducible");
/// ```
#[derive(Clone, Debug)]
pub struct RandomVectors {
    width: usize,
    rng: StdRng,
}

impl RandomVectors {
    /// A stream of `width`-bit vectors from `seed`.
    pub fn new(width: usize, seed: u64) -> Self {
        RandomVectors {
            width,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Iterator for RandomVectors {
    type Item = Vec<bool>;

    fn next(&mut self) -> Option<Vec<bool>> {
        Some((0..self.width).map(|_| self.rng.gen()).collect())
    }
}

/// Walking-ones: vector `k` has exactly bit `k % width` set. Exercises
/// one-input-at-a-time sensitivities.
#[derive(Clone, Debug)]
pub struct WalkingOnes {
    width: usize,
    position: usize,
}

impl WalkingOnes {
    /// A walking-ones stream of `width`-bit vectors.
    pub fn new(width: usize) -> Self {
        WalkingOnes { width, position: 0 }
    }
}

impl Iterator for WalkingOnes {
    type Item = Vec<bool>;

    fn next(&mut self) -> Option<Vec<bool>> {
        if self.width == 0 {
            return None;
        }
        let vector = (0..self.width).map(|i| i == self.position).collect();
        self.position = (self.position + 1) % self.width;
        Some(vector)
    }
}

/// All `2^width` vectors in binary counting order (bit 0 of the counter
/// is input 0). Finite; `None` after the last pattern.
#[derive(Clone, Debug)]
pub struct Exhaustive {
    width: usize,
    next: Option<u64>,
}

impl Exhaustive {
    /// Exhaustive stimulus for up to 63 inputs.
    ///
    /// # Panics
    ///
    /// Panics if `width > 63` (the pattern space would not fit a `u64`).
    pub fn new(width: usize) -> Self {
        assert!(width <= 63, "exhaustive stimulus is limited to 63 inputs");
        Exhaustive {
            width,
            next: Some(0),
        }
    }
}

impl Iterator for Exhaustive {
    type Item = Vec<bool>;

    fn next(&mut self) -> Option<Vec<bool>> {
        let current = self.next?;
        self.next = if current + 1 < (1u64 << self.width) {
            Some(current + 1)
        } else {
            None
        };
        Some((0..self.width).map(|i| current >> i & 1 != 0).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_reproducible_and_seed_sensitive() {
        let a: Vec<_> = RandomVectors::new(8, 1).take(5).collect();
        let b: Vec<_> = RandomVectors::new(8, 1).take(5).collect();
        let c: Vec<_> = RandomVectors::new(8, 2).take(5).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|v| v.len() == 8));
    }

    #[test]
    fn walking_ones_walks() {
        let vs: Vec<_> = WalkingOnes::new(3).take(4).collect();
        assert_eq!(vs[0], vec![true, false, false]);
        assert_eq!(vs[1], vec![false, true, false]);
        assert_eq!(vs[2], vec![false, false, true]);
        assert_eq!(vs[3], vec![true, false, false], "wraps");
    }

    #[test]
    fn exhaustive_covers_everything_once() {
        let vs: Vec<_> = Exhaustive::new(3).collect();
        assert_eq!(vs.len(), 8);
        let as_numbers: Vec<u32> = vs
            .iter()
            .map(|v| v.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum())
            .collect();
        assert_eq!(as_numbers, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn exhaustive_zero_width_is_single_empty_vector() {
        let vs: Vec<_> = Exhaustive::new(0).collect();
        assert_eq!(vs, vec![Vec::<bool>::new()]);
    }

    #[test]
    #[should_panic(expected = "63")]
    fn exhaustive_rejects_wide_circuits() {
        let _ = Exhaustive::new(64);
    }
}
