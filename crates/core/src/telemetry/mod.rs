//! The telemetry registry: hierarchical spans, counters, gauges,
//! distributions, and a schema-stable JSON report.
//!
//! Maurer's results are *static* code metrics (PC-set sizes,
//! instructions generated, words trimmed, shifts retained) plus run
//! times; the engines compute all of those internally. [`Telemetry`]
//! is the measurement substrate that keeps them: it implements
//! [`uds_netlist::Probe`], so the pc-set and parallel compilers report
//! their phases and paper metrics into it, while callers add their own
//! spans (parse → compile → simulate) and runtime counters around it.
//! [`Telemetry::snapshot`] freezes everything into a
//! [`TelemetryReport`] that renders as JSON ([`json::Json`], written
//! by hand — the workspace builds offline, so no serde).
//!
//! Determinism contract: for a fixed netlist, engine, and seed, every
//! metric in the report is byte-identical across runs *except* the
//! wall-clock fields, which are exactly the object keys listed in
//! [`TIMING_KEYS`]. Strip those (see [`json::Json::without_keys`]) and
//! two identical runs compare equal — the property the harness uses
//! to diff perf PRs. DESIGN.md §11 documents the span and metric
//! names.
//!
//! Thread safety: the registry is `Clone` (shared handle) and every
//! method takes `&self` behind a mutex. Span nesting uses one shared
//! stack, so concurrent spans from *different* threads interleave into
//! one tree; the workspace's compilers are single-threaded, which
//! keeps the tree well-formed. Counters, gauges, and distributions
//! are safe from any thread.

pub mod json;
pub mod prom;
pub mod rolling;
pub mod trace;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use uds_netlist::Probe;

use json::Json;

/// Schema identifier embedded in every report.
pub const SCHEMA: &str = "uds-telemetry-v1";

/// Object keys holding wall-clock measurements — the only fields that
/// may differ between two identical runs.
pub const TIMING_KEYS: &[&str] = &["wall_ns", "start_ns"];

/// Warning counter bumped when a gauge is re-registered under a
/// different value (see [`Telemetry::set_gauge`]).
pub const GAUGE_CONFLICTS: &str = "telemetry.gauge_conflicts";

/// One finished span: a named wall-clock phase with nested children.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpanNode {
    /// Phase name (e.g. `"compile"`, `"pcset.codegen"`).
    pub name: String,
    /// Start time in nanoseconds since the registry's [`Telemetry::epoch`].
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub wall_ns: u64,
    /// Logical thread id for timeline export: 0 for the registry's own
    /// span stack, nonzero for spans attached from worker threads.
    pub tid: u64,
    /// Phases that ran nested inside this one, in start order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("start_ns", Json::UInt(self.start_ns)),
            ("wall_ns", Json::UInt(self.wall_ns)),
            ("tid", Json::UInt(self.tid)),
            (
                "children",
                Json::Arr(self.children.iter().map(SpanNode::to_json).collect()),
            ),
        ])
    }

    /// Depth-first search for a span by name.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Running summary of a sampled quantity.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Distribution {
    /// Samples recorded.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl Distribution {
    /// Folds one sample in.
    pub fn record(&mut self, sample: u64) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.count += 1;
        self.sum += sample;
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("min", Json::UInt(self.min)),
            ("max", Json::UInt(self.max)),
            ("sum", Json::UInt(self.sum)),
            ("mean", Json::Float(self.mean())),
        ])
    }
}

/// Fixed-bucket latency histogram with cumulative Prometheus
/// semantics: `bounds` are inclusive upper bucket edges (strictly
/// increasing), `counts[i]` holds the samples with
/// `sample <= bounds[i]` that fell in no earlier bucket, and the final
/// slot of `counts` is the `+Inf` overflow bucket. Unlike
/// [`Distribution`] (a running min/max/sum summary), a histogram keeps
/// enough shape to read SLO percentiles off a scrape.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    /// Inclusive upper bucket edges, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts; `bounds.len() + 1` entries, the last
    /// being the overflow (`+Inf`) bucket.
    pub counts: Vec<u64>,
    /// Sum of all samples.
    pub sum: u64,
    /// Samples recorded.
    pub count: u64,
}

impl Histogram {
    /// An empty histogram over the given upper bounds. Bounds are
    /// sorted and deduplicated, so any bucket layout is accepted.
    pub fn new(bounds: &[u64]) -> Self {
        let mut bounds = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            bounds,
            counts,
            sum: 0,
            count: 0,
        }
    }

    /// Folds one sample into its bucket.
    pub fn observe(&mut self, sample: u64) {
        let bucket = self.bounds.partition_point(|&bound| bound < sample);
        self.counts[bucket] += 1;
        self.sum = self.sum.saturating_add(sample);
        self.count += 1;
    }

    /// Cumulative count of samples at or under each bound, ending with
    /// the total — the exact `_bucket{le=...}` series Prometheus
    /// expects, `+Inf` last.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut running = 0;
        self.counts
            .iter()
            .map(|&c| {
                running += c;
                running
            })
            .collect()
    }

    fn to_json(&self) -> Json {
        Json::obj([
            (
                "bounds",
                Json::Arr(self.bounds.iter().map(|&b| Json::UInt(b)).collect()),
            ),
            (
                "counts",
                Json::Arr(self.counts.iter().map(|&c| Json::UInt(c)).collect()),
            ),
            ("sum", Json::UInt(self.sum)),
            ("count", Json::UInt(self.count)),
        ])
    }
}

/// An in-flight span (still on the stack).
#[derive(Debug)]
struct OpenSpan {
    name: String,
    start: Instant,
    children: Vec<SpanNode>,
}

#[derive(Debug)]
struct Inner {
    /// Time zero for every `start_ns` in the registry (creation time).
    epoch: Instant,
    labels: BTreeMap<String, String>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    distributions: BTreeMap<String, Distribution>,
    histograms: BTreeMap<String, Histogram>,
    finished: Vec<SpanNode>,
    stack: Vec<OpenSpan>,
    rolling: rolling::RollingState,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            epoch: Instant::now(),
            labels: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            distributions: BTreeMap::new(),
            histograms: BTreeMap::new(),
            finished: Vec::new(),
            stack: Vec::new(),
            rolling: rolling::RollingState::default(),
        }
    }
}

/// The shared telemetry registry. Cheap to clone (all clones share
/// state); see the module docs for semantics and determinism.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Arc<Mutex<Inner>>,
}

impl Telemetry {
    /// An empty registry.
    pub fn new() -> Self {
        Telemetry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panicking engine is contained by the guard layer; its
        // poisoned lock must not take the telemetry down with it.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attaches a key/value label (circuit name, engine, command).
    pub fn label(&self, key: impl Into<String>, value: impl Into<String>) {
        self.lock().labels.insert(key.into(), value.into());
    }

    /// Opens a span; it closes (and is recorded) when the guard drops.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        let name = name.into();
        self.span_start_impl(name.clone());
        SpanGuard {
            telemetry: self.clone(),
            name,
        }
    }

    fn span_start_impl(&self, name: String) {
        self.lock().stack.push(OpenSpan {
            name,
            start: Instant::now(),
            children: Vec::new(),
        });
    }

    fn span_end_impl(&self, name: &str) {
        let mut inner = self.lock();
        let Some(open) = inner.stack.pop() else {
            debug_assert!(false, "span_end(`{name}`) with no open span");
            return;
        };
        debug_assert_eq!(open.name, name, "span_end out of order");
        let start_ns = u64::try_from(open.start.saturating_duration_since(inner.epoch).as_nanos())
            .unwrap_or(u64::MAX);
        let node = SpanNode {
            name: open.name,
            start_ns,
            wall_ns: u64::try_from(open.start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            tid: 0,
            children: open.children,
        };
        match inner.stack.last_mut() {
            Some(parent) => parent.children.push(node),
            None => inner.finished.push(node),
        }
    }

    /// Time zero of the registry: every [`SpanNode::start_ns`] counts
    /// nanoseconds from this instant. Worker threads timing spans with
    /// their own [`Instant`]s use it to place [`attach_span`] nodes on
    /// the same timeline.
    ///
    /// [`attach_span`]: Telemetry::attach_span
    pub fn epoch(&self) -> Instant {
        self.lock().epoch
    }

    /// Attaches an already-finished span tree under the currently open
    /// span (or at the top level when none is open). Lets work timed
    /// off-thread — batch workers time their shards with plain
    /// [`Instant`]s — appear in the single-threaded span hierarchy.
    pub fn attach_span(&self, node: SpanNode) {
        let mut inner = self.lock();
        match inner.stack.last_mut() {
            Some(parent) => parent.children.push(node),
            None => inner.finished.push(node),
        }
    }

    /// Adds `delta` to a monotonic counter (created at 0). Saturates at
    /// `u64::MAX` — a pegged counter is visible, a wrapped one lies.
    pub fn add(&self, name: impl Into<String>, delta: u64) {
        let mut inner = self.lock();
        let slot = inner.counters.entry(name.into()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Sets a gauge (idempotent; deterministic static metrics).
    ///
    /// Re-registering a gauge under a *different* value is a contract
    /// violation (two writers disagree about a supposedly deterministic
    /// metric): the last write wins, but the conflict is surfaced by
    /// bumping the [`GAUGE_CONFLICTS`] counter so reports show it.
    pub fn set_gauge(&self, name: impl Into<String>, value: u64) {
        let mut inner = self.lock();
        let previous = inner.gauges.insert(name.into(), value);
        if previous.is_some_and(|p| p != value) {
            let warn = inner
                .counters
                .entry(GAUGE_CONFLICTS.to_owned())
                .or_insert(0);
            *warn = warn.saturating_add(1);
        }
    }

    /// Updates a *level* gauge: a quantity that legitimately moves over
    /// a process's lifetime (resident cache entries, in-flight
    /// requests). Unlike [`Telemetry::set_gauge`], changing the value
    /// is not a conflict — level gauges are expected to change — so
    /// [`GAUGE_CONFLICTS`] is never bumped. Levels share the gauge
    /// namespace and render identically in reports.
    pub fn set_level(&self, name: impl Into<String>, value: u64) {
        self.lock().gauges.insert(name.into(), value);
    }

    /// Folds one completed simulate into the rolling throughput
    /// sampler: `vectors` results produced in `wall_ns` by `engine` at
    /// `word_bits`. Snapshots export the per-key window rate and EWMA
    /// as the labeled gauge families `engine.vectors_per_s` and
    /// `engine.vectors_per_s.ewma` (see [`rolling`]).
    pub fn record_throughput(&self, engine: &str, word_bits: u32, vectors: u64, wall_ns: u64) {
        let mut inner = self.lock();
        let now_s = inner.epoch.elapsed().as_secs();
        inner
            .rolling
            .record_throughput(engine, word_bits, vectors, wall_ns, now_s);
    }

    /// Samples a moving level (queue depth, in-flight requests) into
    /// the rolling sampler. Unlike [`Telemetry::set_level`] — which
    /// keeps only the latest value — the rolling view exports the
    /// last-60s mean and an EWMA as the labeled family
    /// `<name>.rolling{stat}`.
    pub fn observe_rolling(&self, name: &str, value: u64) {
        let mut inner = self.lock();
        let now_s = inner.epoch.elapsed().as_secs();
        inner.rolling.observe_level(name, value, now_s);
    }

    /// Folds a sample into a named distribution.
    pub fn record(&self, name: impl Into<String>, sample: u64) {
        self.lock()
            .distributions
            .entry(name.into())
            .or_default()
            .record(sample);
    }

    /// Folds a sample into a named fixed-bucket histogram. The first
    /// observation fixes the bucket layout; `bounds` is ignored on
    /// every later call, so one call site's layout wins and samples
    /// from all writers land in the same buckets.
    pub fn observe_histogram(&self, name: impl Into<String>, bounds: &[u64], sample: u64) {
        self.lock()
            .histograms
            .entry(name.into())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(sample);
    }

    /// A snapshot of a named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        self.lock().gauges.get(name).copied()
    }

    /// Freezes the registry into a report. Spans still open (guards
    /// alive) are not included — drop them first. Rolling samplers are
    /// folded into labeled gauges at this moment, so every snapshot
    /// reads a fresh window.
    pub fn snapshot(&self) -> TelemetryReport {
        let inner = self.lock();
        debug_assert!(
            inner.stack.is_empty(),
            "snapshot with {} span(s) still open",
            inner.stack.len()
        );
        let mut labeled_gauges: BTreeMap<String, Vec<LabeledGauge>> = BTreeMap::new();
        if !inner.rolling.is_empty() {
            let now_s = inner.epoch.elapsed().as_secs();
            for ((engine, word), stat) in inner.rolling.throughput_stats(now_s) {
                let labels = vec![
                    ("engine".to_owned(), engine),
                    ("word".to_owned(), word.to_string()),
                ];
                labeled_gauges
                    .entry("engine.vectors_per_s".to_owned())
                    .or_default()
                    .push(LabeledGauge {
                        labels: labels.clone(),
                        value: stat.window,
                    });
                labeled_gauges
                    .entry("engine.vectors_per_s.ewma".to_owned())
                    .or_default()
                    .push(LabeledGauge {
                        labels,
                        value: stat.ewma,
                    });
            }
            for (name, stat) in inner.rolling.level_stats(now_s) {
                labeled_gauges
                    .entry(format!("{name}.rolling"))
                    .or_default()
                    .extend([
                        LabeledGauge {
                            labels: vec![("stat".to_owned(), "window_avg".to_owned())],
                            value: stat.window,
                        },
                        LabeledGauge {
                            labels: vec![("stat".to_owned(), "ewma".to_owned())],
                            value: stat.ewma,
                        },
                    ]);
            }
        }
        TelemetryReport {
            labels: inner.labels.clone(),
            spans: inner.finished.clone(),
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            labeled_gauges,
            distributions: inner.distributions.clone(),
            histograms: inner.histograms.clone(),
        }
    }
}

/// One sample of a labeled gauge family: its label pairs (in render
/// order) plus a floating-point value. Only the rolling samplers
/// produce these today; plain gauges stay unlabeled integers.
#[derive(Clone, PartialEq, Debug)]
pub struct LabeledGauge {
    /// Label key/value pairs, rendered in this order.
    pub labels: Vec<(String, String)>,
    /// The gauge value at snapshot time.
    pub value: f64,
}

/// Name of the build-information gauge (value is always 1; the build
/// facts ride as `build.*` labels — the standard Prometheus
/// `*_build_info` idiom, which [`prom`] renders as labels on
/// `uds_build_info`).
pub const BUILD_INFO_GAUGE: &str = "build_info";

/// Registers the standard build-info gauge: `build_info = 1` plus
/// `build.version` / `build.word_bits` / `build.profile` labels, so
/// every `--stats` report and `/metrics` scrape identifies the binary
/// that produced it.
pub fn record_build_info(telemetry: &Telemetry, word_bits: u32) {
    telemetry.set_gauge(BUILD_INFO_GAUGE, 1);
    telemetry.label("build.version", env!("CARGO_PKG_VERSION"));
    telemetry.label("build.word_bits", word_bits.to_string());
    telemetry.label(
        "build.profile",
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
    );
}

/// The compilers see [`Telemetry`] through the base crate's
/// [`Probe`] trait; counters map to add semantics, gauges to set.
impl Probe for Telemetry {
    fn span_start(&self, name: &str) {
        self.span_start_impl(name.to_owned());
    }

    fn span_end(&self, name: &str) {
        self.span_end_impl(name);
    }

    fn count(&self, name: &str, delta: u64) {
        self.add(name, delta);
    }

    fn gauge(&self, name: &str, value: u64) {
        self.set_gauge(name, value);
    }

    fn record(&self, name: &str, sample: u64) {
        Telemetry::record(self, name, sample);
    }
}

/// RAII guard returned by [`Telemetry::span`].
#[must_use = "dropping the guard immediately would close the span at once"]
pub struct SpanGuard {
    telemetry: Telemetry,
    name: String,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.telemetry.span_end_impl(&self.name);
    }
}

/// A frozen snapshot of a [`Telemetry`] registry, renderable as JSON.
#[derive(Clone, PartialEq, Debug)]
pub struct TelemetryReport {
    /// Free-form labels (circuit, engine, command, seed…).
    pub labels: BTreeMap<String, String>,
    /// Top-level finished spans in start order.
    pub spans: Vec<SpanNode>,
    /// Monotonic runtime counters.
    pub counters: BTreeMap<String, u64>,
    /// Deterministic static metrics.
    pub gauges: BTreeMap<String, u64>,
    /// Labeled gauge families from the rolling samplers, keyed by
    /// family name. Empty (and omitted from JSON) unless live traffic
    /// was sampled.
    pub labeled_gauges: BTreeMap<String, Vec<LabeledGauge>>,
    /// Sampled distributions.
    pub distributions: BTreeMap<String, Distribution>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

impl TelemetryReport {
    /// Depth-first search across all top-level spans.
    pub fn find_span(&self, name: &str) -> Option<&SpanNode> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// The report as a JSON document (see DESIGN.md §11 for the
    /// schema). Key order is fixed: `BTreeMap` sources make the
    /// rendering byte-stable for identical runs.
    pub fn to_json(&self) -> Json {
        let string_map = |map: &BTreeMap<String, String>| {
            Json::Obj(
                map.iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            )
        };
        let uint_map = |map: &BTreeMap<String, u64>| {
            Json::Obj(
                map.iter()
                    .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                    .collect(),
            )
        };
        let mut members = vec![
            ("schema".to_owned(), Json::Str(SCHEMA.to_owned())),
            ("labels".to_owned(), string_map(&self.labels)),
            (
                "spans".to_owned(),
                Json::Arr(self.spans.iter().map(SpanNode::to_json).collect()),
            ),
            ("counters".to_owned(), uint_map(&self.counters)),
            ("gauges".to_owned(), uint_map(&self.gauges)),
        ];
        // Additive: the member exists only when a rolling sampler has
        // live data, so reports from one-shot runs stay byte-stable.
        if !self.labeled_gauges.is_empty() {
            members.push((
                "labeled_gauges".to_owned(),
                Json::Obj(
                    self.labeled_gauges
                        .iter()
                        .map(|(family, samples)| {
                            (
                                family.clone(),
                                Json::Arr(
                                    samples
                                        .iter()
                                        .map(|s| {
                                            Json::obj([
                                                (
                                                    "labels",
                                                    Json::Obj(
                                                        s.labels
                                                            .iter()
                                                            .map(|(k, v)| {
                                                                (k.clone(), Json::Str(v.clone()))
                                                            })
                                                            .collect(),
                                                    ),
                                                ),
                                                ("value", Json::Float(s.value)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            )
                        })
                        .collect(),
                ),
            ));
        }
        members.extend([
            (
                "distributions".to_owned(),
                Json::Obj(
                    self.distributions
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "histograms".to_owned(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ]);
        Json::Obj(members)
    }

    /// Renders the JSON report with a trailing newline.
    pub fn render_json(&self) -> String {
        let mut out = self.to_json().render();
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_by_guard_scope() {
        let telemetry = Telemetry::new();
        {
            let _outer = telemetry.span("compile");
            {
                let _inner = telemetry.span("levelize");
            }
            let _sibling = telemetry.span("codegen");
        }
        let report = telemetry.snapshot();
        assert_eq!(report.spans.len(), 1);
        let compile = &report.spans[0];
        assert_eq!(compile.name, "compile");
        let names: Vec<&str> = compile.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["levelize", "codegen"]);
        assert!(report.find_span("levelize").is_some());
    }

    #[test]
    fn counters_gauges_and_distributions() {
        let telemetry = Telemetry::new();
        telemetry.add("vectors", 3);
        telemetry.add("vectors", 2);
        assert_eq!(telemetry.counter("vectors"), 5);
        telemetry.set_gauge("word_ops", 10);
        telemetry.set_gauge("word_ops", 10); // idempotent
        assert_eq!(telemetry.gauge_value("word_ops"), Some(10));
        telemetry.record("settle", 4);
        telemetry.record("settle", 2);
        let report = telemetry.snapshot();
        let dist = report.distributions["settle"];
        assert_eq!((dist.count, dist.min, dist.max, dist.sum), (2, 2, 4, 6));
        assert_eq!(dist.mean(), 3.0);
    }

    #[test]
    fn histograms_bucket_cumulatively() {
        let telemetry = Telemetry::new();
        let bounds = [5, 10, 50];
        telemetry.observe_histogram("req_ms", &bounds, 3);
        telemetry.observe_histogram("req_ms", &bounds, 5); // inclusive edge
        telemetry.observe_histogram("req_ms", &bounds, 7);
        telemetry.observe_histogram("req_ms", &bounds, 999); // overflow
        let histo = telemetry.histogram("req_ms").unwrap();
        assert_eq!(histo.counts, vec![2, 1, 0, 1]);
        assert_eq!(histo.cumulative(), vec![2, 3, 3, 4]);
        assert_eq!((histo.sum, histo.count), (1014, 4));
        // Later callers cannot re-shape the buckets.
        telemetry.observe_histogram("req_ms", &[1], 2);
        let histo = telemetry.histogram("req_ms").unwrap();
        assert_eq!(histo.bounds, vec![5, 10, 50]);
        assert_eq!(histo.count, 5);
        // Unsorted bounds with duplicates normalize.
        assert_eq!(Histogram::new(&[10, 5, 10]).bounds, vec![5, 10]);
    }

    #[test]
    fn clones_share_state() {
        let telemetry = Telemetry::new();
        let handle = telemetry.clone();
        handle.add("n", 1);
        assert_eq!(telemetry.counter("n"), 1);
    }

    #[test]
    fn report_json_parses_and_is_stable_modulo_timing() {
        let build = || {
            let telemetry = Telemetry::new();
            telemetry.label("circuit", "c17");
            {
                let _span = telemetry.span("compile");
                telemetry.set_gauge("word_ops", 7);
            }
            telemetry.add("vectors", 2);
            telemetry.snapshot().render_json()
        };
        let (a, b) = (build(), build());
        let ja = Json::parse(&a).unwrap().without_keys(TIMING_KEYS);
        let jb = Json::parse(&b).unwrap().without_keys(TIMING_KEYS);
        assert_eq!(ja, jb);
        let doc = Json::parse(&a).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert!(doc.get("spans").unwrap().as_arr().is_some());
    }

    #[test]
    fn level_gauges_move_without_conflict() {
        let telemetry = Telemetry::new();
        telemetry.set_level("cache.entries", 1);
        telemetry.set_level("cache.entries", 5);
        telemetry.set_level("cache.entries", 2);
        assert_eq!(telemetry.gauge_value("cache.entries"), Some(2));
        assert_eq!(telemetry.counter(GAUGE_CONFLICTS), 0);
    }

    #[test]
    fn build_info_gauge_and_labels() {
        let telemetry = Telemetry::new();
        record_build_info(&telemetry, 64);
        assert_eq!(telemetry.gauge_value(BUILD_INFO_GAUGE), Some(1));
        let report = telemetry.snapshot();
        assert_eq!(report.labels["build.word_bits"], "64");
        assert!(!report.labels["build.version"].is_empty());
        assert!(matches!(
            report.labels["build.profile"].as_str(),
            "debug" | "release"
        ));
        // Registering twice is idempotent — no gauge conflict.
        record_build_info(&telemetry, 64);
        assert_eq!(telemetry.counter(GAUGE_CONFLICTS), 0);
    }

    #[test]
    fn rolling_samples_export_as_labeled_gauges() {
        let telemetry = Telemetry::new();
        // Nothing sampled → no member in the JSON at all.
        let report = telemetry.snapshot();
        assert!(report.labeled_gauges.is_empty());
        assert!(report.to_json().get("labeled_gauges").is_none());

        telemetry.record_throughput("parallel-pt-trim", 32, 640, 1_000_000);
        telemetry.observe_rolling("serve.queue_depth", 3);
        let report = telemetry.snapshot();
        let vps = &report.labeled_gauges["engine.vectors_per_s"];
        assert_eq!(vps.len(), 1);
        assert_eq!(
            vps[0].labels,
            vec![
                ("engine".to_owned(), "parallel-pt-trim".to_owned()),
                ("word".to_owned(), "32".to_owned()),
            ]
        );
        assert!(vps[0].value > 0.0);
        assert!(report
            .labeled_gauges
            .contains_key("engine.vectors_per_s.ewma"));
        let depth = &report.labeled_gauges["serve.queue_depth.rolling"];
        let stats: Vec<&str> = depth.iter().map(|s| s.labels[0].1.as_str()).collect();
        assert_eq!(stats, ["window_avg", "ewma"]);
        let doc = Json::parse(&report.render_json()).unwrap();
        assert!(doc.get("labeled_gauges").is_some());
    }

    #[test]
    fn probe_impl_maps_to_registry() {
        let telemetry = Telemetry::new();
        let probe: &dyn Probe = &telemetry;
        probe.span_start("phase");
        probe.count("c", 2);
        probe.gauge("g", 9);
        probe.span_end("phase");
        assert_eq!(telemetry.counter("c"), 2);
        assert_eq!(telemetry.gauge_value("g"), Some(9));
        assert!(telemetry.snapshot().find_span("phase").is_some());
    }
}
