//! Chrome `trace_event` timeline export for the telemetry span tree.
//!
//! Converts a [`TelemetryReport`]'s spans into the Trace Event Format
//! that `chrome://tracing` and Perfetto load: one `ph:"X"` (complete)
//! event per span with microsecond `ts`/`dur`, plus `ph:"M"` metadata
//! events naming the process and each logical thread. Spans recorded on
//! the registry's own stack carry `tid` 0 ("main"); spans attached from
//! worker threads ([`Telemetry::attach_span`]) keep their own `tid`, so
//! `batch.shard.<k>` timelines render as separate rows.
//!
//! Zero dependencies: the document is built from [`Json`] and rendered
//! by the same hand-rolled writer as `uds-telemetry-v1` reports.
//!
//! [`Telemetry::attach_span`]: super::Telemetry::attach_span

use super::json::Json;
use super::{SpanNode, TelemetryReport};

/// Nanoseconds → the format's microsecond unit, keeping sub-µs detail.
fn micros(ns: u64) -> Json {
    Json::Float(ns as f64 / 1_000.0)
}

/// A `ph:"M"` metadata event (process or thread naming).
fn metadata(name: &str, tid: u64, value: &str) -> Json {
    Json::obj([
        ("name", Json::Str(name.to_owned())),
        ("ph", Json::Str("M".to_owned())),
        ("pid", Json::UInt(1)),
        ("tid", Json::UInt(tid)),
        ("args", Json::obj([("name", Json::Str(value.to_owned()))])),
    ])
}

/// Emits `span` and its children as `ph:"X"` complete events.
///
/// Children inherit the parent's `tid` unless they carry their own
/// nonzero one (attached worker spans keep their thread).
fn emit(span: &SpanNode, inherited_tid: u64, events: &mut Vec<Json>) {
    let tid = if span.tid != 0 {
        span.tid
    } else {
        inherited_tid
    };
    events.push(Json::obj([
        ("name", Json::Str(span.name.clone())),
        ("ph", Json::Str("X".to_owned())),
        ("ts", micros(span.start_ns)),
        ("dur", micros(span.wall_ns)),
        ("pid", Json::UInt(1)),
        ("tid", Json::UInt(tid)),
    ]));
    for child in &span.children {
        emit(child, tid, events);
    }
}

/// Renders `span`'s subtree as `ph:"X"` complete events, for exporters
/// that stream events incrementally instead of snapshotting a whole
/// report (the serve daemon writes each finished request's tree as it
/// completes). Children inherit `span.tid` unless they carry their own
/// nonzero one.
pub fn span_events(span: &SpanNode, events: &mut Vec<Json>) {
    emit(span, span.tid, events);
}

/// A `ph:"M"` metadata event naming a process (`tid` 0, name
/// `process_name`) or thread lane (`thread_name`), for streaming
/// exporters that build their own preamble.
pub fn metadata_event(name: &str, tid: u64, value: &str) -> Json {
    metadata(name, tid, value)
}

/// First span name carried by `tid` in depth-first order — the thread's
/// display name in the timeline.
fn first_name_with_tid(spans: &[SpanNode], tid: u64) -> Option<&str> {
    for span in spans {
        if span.tid == tid {
            return Some(&span.name);
        }
        if let Some(name) = first_name_with_tid(&span.children, tid) {
            return Some(name);
        }
    }
    None
}

/// Collects every distinct `tid` in the tree (sorted, deduplicated).
fn collect_tids(spans: &[SpanNode], tids: &mut Vec<u64>) {
    for span in spans {
        if !tids.contains(&span.tid) {
            tids.push(span.tid);
        }
        collect_tids(&span.children, tids);
    }
}

/// Builds the Chrome trace document for a frozen report.
///
/// The result is the Trace Event Format's object form:
/// `{"traceEvents": [...], "displayTimeUnit": "ms"}`, with metadata
/// events first and span events in depth-first start order.
pub fn chrome_trace(report: &TelemetryReport) -> Json {
    let mut events = Vec::new();
    let process = report.labels.get("command").map_or("udsim", String::as_str);
    events.push(metadata("process_name", 0, process));
    let mut tids = Vec::new();
    collect_tids(&report.spans, &mut tids);
    tids.sort_unstable();
    for &tid in &tids {
        let thread = if tid == 0 {
            "main".to_owned()
        } else {
            first_name_with_tid(&report.spans, tid)
                .map_or_else(|| format!("worker {tid}"), str::to_owned)
        };
        events.push(metadata("thread_name", tid, &thread));
    }
    for span in &report.spans {
        emit(span, 0, &mut events);
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".to_owned())),
    ])
}

/// Renders the Chrome trace as a JSON string with a trailing newline.
pub fn render_chrome_trace(report: &TelemetryReport) -> String {
    let mut out = chrome_trace(report).render();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::super::Telemetry;
    use super::*;

    #[test]
    fn spans_become_complete_events_with_thread_metadata() {
        let telemetry = Telemetry::new();
        {
            let _outer = telemetry.span("simulate");
            let _inner = telemetry.span("compile");
        }
        telemetry.attach_span(SpanNode {
            name: "batch.shard.0".to_owned(),
            start_ns: 10,
            wall_ns: 5,
            tid: 1,
            children: Vec::new(),
        });
        let doc = chrome_trace(&telemetry.snapshot());
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let of_phase = |ph: &str| -> Vec<&Json> {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .collect()
        };
        assert_eq!(of_phase("X").len(), 3);
        let names: Vec<&str> = of_phase("M")
            .iter()
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert!(names.contains(&"main"));
        assert!(names.contains(&"batch.shard.0"));
        let shard = of_phase("X")
            .into_iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("batch.shard.0"))
            .unwrap();
        assert_eq!(shard.get("tid").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn children_inherit_the_parent_tid() {
        let telemetry = Telemetry::new();
        telemetry.attach_span(SpanNode {
            name: "batch.shard.2".to_owned(),
            start_ns: 0,
            wall_ns: 9,
            tid: 3,
            children: vec![SpanNode {
                name: "inner".to_owned(),
                start_ns: 1,
                wall_ns: 2,
                tid: 0,
                children: Vec::new(),
            }],
        });
        let doc = chrome_trace(&telemetry.snapshot());
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let inner = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("inner"))
            .unwrap();
        assert_eq!(inner.get("tid").and_then(Json::as_u64), Some(3));
    }
}
