//! Rolling (windowed) samplers for live-traffic telemetry.
//!
//! The startup warmup measures throughput once, on an idle process;
//! a loaded daemon needs the same number sampled from real traffic.
//! [`RollingState`] keeps a ring of one-second slots per key — 60 of
//! them, so a sample ages out exactly [`WINDOW_SECS`] seconds after it
//! landed — plus an exponentially weighted moving average that reacts
//! faster than the window but never forgets more than `1 - ALPHA` per
//! sample. Two kinds of keys live here:
//!
//! - **throughput** keys `(engine, word_bits)`: each completed
//!   simulate folds `vectors` into the current slot; the window rate
//!   is total vectors over the seconds the window actually covers,
//!   and the EWMA tracks each completion's instantaneous
//!   `vectors / wall` rate.
//! - **level** keys (queue depth, in-flight): each observation folds
//!   the sampled value in; the window statistic is the mean of the
//!   observations still inside the window.
//!
//! The state is plain data — the [`Telemetry`] registry owns one
//! behind its existing mutex and folds it into labeled gauges at
//! snapshot time, so a `/metrics` scrape always reads a fresh rate.
//!
//! [`Telemetry`]: super::Telemetry

/// Width of the sampling window, in seconds (and ring slots).
pub const WINDOW_SECS: u64 = 60;

/// EWMA smoothing factor: each new sample contributes 20%.
const ALPHA: f64 = 0.2;

/// One second-aligned accumulator slot. A slot is live only while
/// `second` matches the second it was last written for; a ring index
/// reached again 60 seconds later sees a stale `second` and resets.
#[derive(Clone, Copy, Debug, Default)]
struct Slot {
    second: u64,
    sum: u64,
    count: u64,
}

/// A 60-slot ring of one-second accumulators plus the running EWMA.
#[derive(Clone, Debug)]
pub(super) struct Ring {
    slots: [Slot; WINDOW_SECS as usize],
    ewma: Option<f64>,
}

impl Default for Ring {
    fn default() -> Self {
        Ring {
            slots: [Slot::default(); WINDOW_SECS as usize],
            ewma: None,
        }
    }
}

/// A windowed statistic read off a ring: the per-window aggregate and
/// the EWMA, both `None`-free (a ring only exists once it has a
/// sample).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowStat {
    /// Window aggregate: vectors/sec for throughput rings, mean
    /// observation for level rings.
    pub window: f64,
    /// Exponentially weighted moving average of the same quantity.
    pub ewma: f64,
}

impl Ring {
    /// Folds `value` into the slot for `now_s`, evicting anything the
    /// ring index last held 60+ seconds ago.
    fn fold(&mut self, now_s: u64, value: u64) {
        let slot = &mut self.slots[(now_s % WINDOW_SECS) as usize];
        if slot.second != now_s || slot.count == 0 {
            *slot = Slot {
                second: now_s,
                sum: 0,
                count: 0,
            };
        }
        slot.sum = slot.sum.saturating_add(value);
        slot.count += 1;
    }

    /// Folds an instantaneous sample into the EWMA.
    fn smooth(&mut self, sample: f64) {
        self.ewma = Some(match self.ewma {
            Some(previous) => ALPHA * sample + (1.0 - ALPHA) * previous,
            None => sample,
        });
    }

    /// Live slots as seen from `now_s`: written within the last
    /// [`WINDOW_SECS`] seconds and holding at least one sample.
    fn live(&self, now_s: u64) -> impl Iterator<Item = &Slot> {
        self.slots
            .iter()
            .filter(move |s| s.count > 0 && s.second <= now_s && now_s - s.second < WINDOW_SECS)
    }

    /// Window rate: total across live slots divided by the seconds the
    /// window actually covers (so a 3-second-old daemon reports its
    /// 3-second rate, not a 60th of it).
    fn rate(&self, now_s: u64) -> Option<WindowStat> {
        let oldest = self.live(now_s).map(|s| s.second).min()?;
        let total: u64 = self.live(now_s).map(|s| s.sum).sum();
        let covered = (now_s - oldest + 1).max(1) as f64;
        Some(WindowStat {
            window: total as f64 / covered,
            ewma: self.ewma.unwrap_or(0.0),
        })
    }

    /// Window mean: average observation across live slots.
    fn mean(&self, now_s: u64) -> Option<WindowStat> {
        let (mut sum, mut count) = (0u64, 0u64);
        for slot in self.live(now_s) {
            sum = sum.saturating_add(slot.sum);
            count += slot.count;
        }
        if count == 0 {
            return None;
        }
        Some(WindowStat {
            window: sum as f64 / count as f64,
            ewma: self.ewma.unwrap_or(0.0),
        })
    }
}

/// All rolling samplers owned by one registry. Keys are created on
/// first sample, so an idle process exports nothing.
#[derive(Clone, Debug, Default)]
pub(super) struct RollingState {
    /// `(engine, word_bits)` → vectors-throughput ring.
    throughput: std::collections::BTreeMap<(String, u32), Ring>,
    /// Level name → sampled-value ring.
    levels: std::collections::BTreeMap<String, Ring>,
}

impl RollingState {
    /// Folds one completed simulate: `vectors` results produced in
    /// `wall_ns` by `engine` at `word_bits`.
    pub(super) fn record_throughput(
        &mut self,
        engine: &str,
        word_bits: u32,
        vectors: u64,
        wall_ns: u64,
        now_s: u64,
    ) {
        let ring = self
            .throughput
            .entry((engine.to_owned(), word_bits))
            .or_default();
        ring.fold(now_s, vectors);
        let seconds = wall_ns.max(1) as f64 / 1e9;
        ring.smooth(vectors as f64 / seconds);
    }

    /// Folds one observation of a moving level (queue depth,
    /// in-flight requests).
    pub(super) fn observe_level(&mut self, name: &str, value: u64, now_s: u64) {
        let ring = self.levels.entry(name.to_owned()).or_default();
        ring.fold(now_s, value);
        ring.smooth(value as f64);
    }

    /// Current throughput stats per `(engine, word_bits)` key, in key
    /// order. Keys whose window has fully aged out are omitted.
    pub(super) fn throughput_stats(&self, now_s: u64) -> Vec<((String, u32), WindowStat)> {
        self.throughput
            .iter()
            .filter_map(|(key, ring)| Some((key.clone(), ring.rate(now_s)?)))
            .collect()
    }

    /// Current level stats per name, in name order.
    pub(super) fn level_stats(&self, now_s: u64) -> Vec<(String, WindowStat)> {
        self.levels
            .iter()
            .filter_map(|(name, ring)| Some((name.clone(), ring.mean(now_s)?)))
            .collect()
    }

    /// True when no key has ever been sampled.
    pub(super) fn is_empty(&self) -> bool {
        self.throughput.is_empty() && self.levels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_window_rate_covers_elapsed_seconds() {
        let mut state = RollingState::default();
        // 1000 vectors in each of seconds 10, 11, 12.
        for s in 10..13 {
            state.record_throughput("parallel", 32, 1000, 1_000_000, s);
        }
        let stats = state.throughput_stats(12);
        assert_eq!(stats.len(), 1);
        let (key, stat) = &stats[0];
        assert_eq!(key, &("parallel".to_owned(), 32));
        // 3000 vectors over 3 covered seconds.
        assert!((stat.window - 1000.0).abs() < 1e-9, "{stat:?}");
        // Each completion's instantaneous rate was 1000 / 1ms = 1M/s.
        assert!((stat.ewma - 1e9 / 1e3).abs() < 1e-3, "{stat:?}");
    }

    #[test]
    fn samples_age_out_after_the_window() {
        let mut state = RollingState::default();
        state.record_throughput("parallel", 32, 500, 1_000, 5);
        assert_eq!(state.throughput_stats(5).len(), 1);
        // 60 seconds later the slot is stale.
        assert!(state.throughput_stats(5 + WINDOW_SECS).is_empty());
        // …but the key comes back with fresh samples.
        state.record_throughput("parallel", 32, 250, 1_000, 100);
        let stats = state.throughput_stats(100);
        assert!((stats[0].1.window - 250.0).abs() < 1e-9);
    }

    #[test]
    fn ring_index_reuse_resets_stale_slot() {
        let mut state = RollingState::default();
        state.record_throughput("e", 64, 100, 1_000, 3);
        // Second 63 maps to the same ring index as second 3.
        state.record_throughput("e", 64, 7, 1_000, 3 + WINDOW_SECS);
        let stats = state.throughput_stats(3 + WINDOW_SECS);
        assert!((stats[0].1.window - 7.0).abs() < 1e-9, "{stats:?}");
    }

    #[test]
    fn levels_average_observations_in_window() {
        let mut state = RollingState::default();
        state.observe_level("serve.queue_depth", 2, 1);
        state.observe_level("serve.queue_depth", 4, 1);
        state.observe_level("serve.queue_depth", 6, 2);
        let stats = state.level_stats(2);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].0, "serve.queue_depth");
        assert!((stats[0].1.window - 4.0).abs() < 1e-9, "{stats:?}");
    }

    #[test]
    fn ewma_tracks_recent_samples() {
        let mut ring = Ring::default();
        ring.smooth(100.0);
        assert_eq!(ring.ewma, Some(100.0));
        ring.smooth(0.0);
        assert!((ring.ewma.unwrap() - 80.0).abs() < 1e-9);
        for _ in 0..100 {
            ring.smooth(0.0);
        }
        assert!(ring.ewma.unwrap() < 1e-6);
    }

    #[test]
    fn empty_state_exports_nothing() {
        let state = RollingState::default();
        assert!(state.is_empty());
        assert!(state.throughput_stats(0).is_empty());
        assert!(state.level_stats(0).is_empty());
    }
}
