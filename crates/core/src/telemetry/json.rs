//! A hand-rolled JSON value type, writer, and parser.
//!
//! The workspace builds fully offline with no registry access, so
//! `serde` is not an option; the telemetry reports need only a small,
//! deterministic subset of JSON. [`Json`] keeps object keys in
//! insertion order (the telemetry registry feeds it from `BTreeMap`s,
//! so rendered output is byte-stable across runs), the writer escapes
//! per RFC 8259, and the parser exists so tests and CI can parse a
//! report back and assert on its structure instead of grepping text.

use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (every telemetry metric is a `u64`).
    UInt(u64),
    /// Any other number. Non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is a `UInt`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value of a `UInt` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// A copy with every object member named in `keys` removed, at any
    /// depth. Used to compare reports modulo wall-clock fields.
    pub fn without_keys(&self, keys: &[&str]) -> Json {
        match self {
            Json::Arr(items) => Json::Arr(items.iter().map(|v| v.without_keys(keys)).collect()),
            Json::Obj(members) => Json::Obj(
                members
                    .iter()
                    .filter(|(k, _)| !keys.contains(&k.as_str()))
                    .map(|(k, v)| (k.clone(), v.without_keys(keys)))
                    .collect(),
            ),
            other => other.clone(),
        }
    }

    /// Renders the document as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    let digits = format!("{v}");
                    out.push_str(&digits);
                    // `Display` for a whole float omits the point; keep
                    // floats recognizably floats so parse round-trips.
                    if !digits.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (trailing whitespace allowed, nothing
    /// else after the value).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing data after the document"));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with its byte offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected byte `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            members.push((key, self.value()?));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for telemetry
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(self.error(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                None => return Err(self.error("unterminated string")),
                Some(_) => unreachable!("loop above stops only on quote/backslash/end"),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.error(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: &Json) -> Json {
        Json::parse(&value.render()).expect("rendered JSON parses")
    }

    #[test]
    fn renders_and_parses_nested_documents() {
        let doc = Json::obj([
            ("name", Json::Str("c17 \"quoted\"\n".into())),
            ("count", Json::UInt(42)),
            ("ratio", Json::Float(1.5)),
            ("flag", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "children",
                Json::Arr(vec![Json::UInt(1), Json::Str("two".into())]),
            ),
        ]);
        assert_eq!(round_trip(&doc), doc);
    }

    #[test]
    fn escapes_control_characters() {
        let doc = Json::Str("a\u{1}b".into());
        assert_eq!(doc.render(), "\"a\\u0001b\"");
        assert_eq!(round_trip(&doc), doc);
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(Json::parse("0").unwrap(), Json::UInt(0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("-3").unwrap(), Json::Float(-3.0));
        assert_eq!(Json::parse("2.5e2").unwrap(), Json::Float(250.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\"1}", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn without_keys_strips_recursively() {
        let doc = Json::obj([
            ("wall_ns", Json::UInt(1)),
            (
                "children",
                Json::Arr(vec![Json::obj([
                    ("wall_ns", Json::UInt(2)),
                    ("name", Json::Str("x".into())),
                ])]),
            ),
        ]);
        let stripped = doc.without_keys(&["wall_ns"]);
        assert_eq!(stripped.get("wall_ns"), None);
        let child = &stripped.get("children").unwrap().as_arr().unwrap()[0];
        assert_eq!(child.get("wall_ns"), None);
        assert_eq!(child.get("name").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn object_lookup_and_accessors() {
        let doc = Json::obj([("k", Json::UInt(7))]);
        assert_eq!(doc.get("k").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("absent"), None);
        assert_eq!(Json::UInt(7).as_f64(), Some(7.0));
        assert_eq!(Json::Str("s".into()).as_str(), Some("s"));
    }
}
