//! Prometheus text-exposition bridge for [`TelemetryReport`].
//!
//! `GET /metrics` on the simulation daemon renders the live registry in
//! the Prometheus text format (version 0.0.4): counters as `counter`,
//! gauges as `gauge`, distributions as `summary` (min and max exposed
//! as the 0 and 1 quantiles, which a running min/max tracks exactly),
//! and fixed-bucket histograms as `histogram` (cumulative
//! `_bucket{le=...}` series ending at `+Inf`, plus `_sum`/`_count` —
//! the shape `histogram_quantile()` consumes for SLO math).
//! Hand-rolled like the JSON and trace writers — the workspace builds
//! offline, so no client library.
//!
//! Naming: every metric is prefixed `uds_` and sanitized to the legal
//! charset `[a-zA-Z0-9_:]` (dots and dashes in telemetry names become
//! underscores, so `guard.fallbacks` scrapes as `uds_guard_fallbacks`).
//! Should two telemetry names sanitize to the same metric name, the
//! first one exported wins (counters, then gauges, then histograms,
//! then distributions, alphabetical within each) and the rest drop — a metric
//! name must not repeat its `# TYPE` line — and the drop is surfaced
//! through the `uds_prom_name_collisions` counter.
//!
//! The [`BUILD_INFO_GAUGE`] gets the standard treatment: its `build.*`
//! labels render as label pairs on `uds_build_info` (value 1), e.g.
//! `uds_build_info{profile="release",version="0.1.0",word_bits="32"} 1`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use super::{TelemetryReport, BUILD_INFO_GAUGE};

/// Content-Type of the rendered exposition, for HTTP responses.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Prefix applied to every exported metric name.
pub const METRIC_PREFIX: &str = "uds_";

/// Maps a telemetry name onto the Prometheus metric-name charset:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, prefixed with [`METRIC_PREFIX`].
pub fn metric_name(telemetry_name: &str) -> String {
    let mut out = String::with_capacity(METRIC_PREFIX.len() + telemetry_name.len());
    out.push_str(METRIC_PREFIX);
    for c in telemetry_name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a HELP line: backslash and newline (per the exposition
/// format, HELP text does not escape quotes).
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, newline, and double quote.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '"' => out.push_str("\\\""),
            c => out.push(c),
        }
    }
    out
}

/// One exported metric family, fully rendered except for its name.
struct Family {
    kind: &'static str,
    help: String,
    /// `(label-block-or-empty, suffix, value)` sample lines.
    samples: Vec<(String, &'static str, String)>,
}

/// Renders a frozen report in the Prometheus text exposition format.
/// Deterministic for a deterministic report: families sort by metric
/// name, and within a family samples keep their natural order.
pub fn render(report: &TelemetryReport) -> String {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    let mut collisions = 0u64;
    let mut insert = |name: String, family: Family, collisions: &mut u64| {
        use std::collections::btree_map::Entry;
        match families.entry(name) {
            Entry::Occupied(_) => *collisions += 1,
            Entry::Vacant(slot) => {
                slot.insert(family);
            }
        }
    };

    for (name, value) in &report.counters {
        insert(
            metric_name(name),
            Family {
                kind: "counter",
                help: format!("telemetry counter `{}`", escape_help(name)),
                samples: vec![(String::new(), "", value.to_string())],
            },
            &mut collisions,
        );
    }
    for (name, value) in &report.gauges {
        if name == BUILD_INFO_GAUGE {
            continue; // rendered with labels below
        }
        insert(
            metric_name(name),
            Family {
                kind: "gauge",
                help: format!("telemetry gauge `{}`", escape_help(name)),
                samples: vec![(String::new(), "", value.to_string())],
            },
            &mut collisions,
        );
    }
    for (name, samples) in &report.labeled_gauges {
        insert(
            metric_name(name),
            Family {
                kind: "gauge",
                help: format!("rolling telemetry gauge `{}`", escape_help(name)),
                samples: samples
                    .iter()
                    .map(|sample| {
                        let labels: Vec<String> = sample
                            .labels
                            .iter()
                            .map(|(key, value)| format!("{key}=\"{}\"", escape_label_value(value)))
                            .collect();
                        let block = if labels.is_empty() {
                            String::new()
                        } else {
                            format!("{{{}}}", labels.join(","))
                        };
                        (block, "", format!("{}", sample.value))
                    })
                    .collect(),
            },
            &mut collisions,
        );
    }
    for (name, histo) in &report.histograms {
        let mut samples: Vec<(String, &'static str, String)> = histo
            .bounds
            .iter()
            .zip(histo.cumulative())
            .map(|(bound, cum)| (format!("{{le=\"{bound}\"}}"), "_bucket", cum.to_string()))
            .collect();
        samples.push((
            "{le=\"+Inf\"}".to_owned(),
            "_bucket",
            histo.count.to_string(),
        ));
        samples.push((String::new(), "_sum", histo.sum.to_string()));
        samples.push((String::new(), "_count", histo.count.to_string()));
        insert(
            metric_name(name),
            Family {
                kind: "histogram",
                help: format!("telemetry histogram `{}`", escape_help(name)),
                samples,
            },
            &mut collisions,
        );
    }
    for (name, dist) in &report.distributions {
        insert(
            metric_name(name),
            Family {
                kind: "summary",
                help: format!("telemetry distribution `{}`", escape_help(name)),
                samples: vec![
                    ("{quantile=\"0\"}".to_owned(), "", dist.min.to_string()),
                    ("{quantile=\"1\"}".to_owned(), "", dist.max.to_string()),
                    (String::new(), "_sum", dist.sum.to_string()),
                    (String::new(), "_count", dist.count.to_string()),
                ],
            },
            &mut collisions,
        );
    }
    if report.gauges.contains_key(BUILD_INFO_GAUGE) {
        let labels: Vec<String> = report
            .labels
            .iter()
            .filter_map(|(key, value)| {
                let fact = key.strip_prefix("build.")?;
                Some(format!("{fact}=\"{}\"", escape_label_value(value)))
            })
            .collect();
        let block = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", labels.join(","))
        };
        insert(
            metric_name(BUILD_INFO_GAUGE),
            Family {
                kind: "gauge",
                help: "build facts of the serving binary (value is always 1)".to_owned(),
                samples: vec![(block, "", "1".to_owned())],
            },
            &mut collisions,
        );
    }
    if collisions > 0 {
        families.insert(
            format!("{METRIC_PREFIX}prom_name_collisions"),
            Family {
                kind: "counter",
                help: "telemetry names dropped because they sanitized to an already-exported \
                       metric name"
                    .to_owned(),
                samples: vec![(String::new(), "", collisions.to_string())],
            },
        );
    }

    let mut out = String::new();
    for (name, family) in &families {
        let _ = writeln!(out, "# HELP {name} {}", family.help);
        let _ = writeln!(out, "# TYPE {name} {}", family.kind);
        for (labels, suffix, value) in &family.samples {
            let _ = writeln!(out, "{name}{suffix}{labels} {value}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{record_build_info, Telemetry};

    #[test]
    fn sanitizes_names_to_the_legal_charset() {
        assert_eq!(metric_name("guard.fallbacks"), "uds_guard_fallbacks");
        assert_eq!(
            metric_name("parallel.pt-trim.word_ops"),
            "uds_parallel_pt_trim_word_ops"
        );
        assert_eq!(metric_name("a b/c"), "uds_a_b_c");
    }

    #[test]
    fn renders_counters_gauges_and_summaries() {
        let telemetry = Telemetry::new();
        telemetry.add("cache.hits", 3);
        telemetry.set_gauge("batch.shards", 4);
        telemetry.record("serve.wall_ns", 10);
        telemetry.record("serve.wall_ns", 30);
        let text = render(&telemetry.snapshot());
        assert!(text.contains("# TYPE uds_cache_hits counter\nuds_cache_hits 3\n"));
        assert!(text.contains("# TYPE uds_batch_shards gauge\nuds_batch_shards 4\n"));
        assert!(text.contains("# TYPE uds_serve_wall_ns summary\n"));
        assert!(text.contains("uds_serve_wall_ns{quantile=\"0\"} 10\n"));
        assert!(text.contains("uds_serve_wall_ns{quantile=\"1\"} 30\n"));
        assert!(text.contains("uds_serve_wall_ns_sum 40\n"));
        assert!(text.contains("uds_serve_wall_ns_count 2\n"));
    }

    #[test]
    fn renders_histograms_with_cumulative_buckets() {
        let telemetry = Telemetry::new();
        let bounds = [5, 50];
        telemetry.observe_histogram("serve.request_ms", &bounds, 2);
        telemetry.observe_histogram("serve.request_ms", &bounds, 40);
        telemetry.observe_histogram("serve.request_ms", &bounds, 900);
        let text = render(&telemetry.snapshot());
        assert!(text.contains("# TYPE uds_serve_request_ms histogram\n"));
        assert!(text.contains("uds_serve_request_ms_bucket{le=\"5\"} 1\n"));
        assert!(text.contains("uds_serve_request_ms_bucket{le=\"50\"} 2\n"));
        assert!(text.contains("uds_serve_request_ms_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("uds_serve_request_ms_sum 942\n"));
        assert!(text.contains("uds_serve_request_ms_count 3\n"));
    }

    #[test]
    fn build_info_renders_with_labels() {
        let telemetry = Telemetry::new();
        record_build_info(&telemetry, 32);
        let text = render(&telemetry.snapshot());
        let line = text
            .lines()
            .find(|l| l.starts_with("uds_build_info{"))
            .expect("build info sample");
        assert!(line.contains("word_bits=\"32\""), "{line}");
        assert!(line.contains("profile="), "{line}");
        assert!(line.contains("version="), "{line}");
        assert!(line.ends_with("} 1"), "{line}");
    }

    #[test]
    fn rolling_gauges_render_as_labeled_families() {
        let telemetry = Telemetry::new();
        telemetry.record_throughput("native", 64, 4096, 2_000_000);
        telemetry.observe_rolling("serve.in_flight", 2);
        let text = render(&telemetry.snapshot());
        assert!(
            text.contains("# TYPE uds_engine_vectors_per_s gauge\n"),
            "{text}"
        );
        let line = text
            .lines()
            .find(|l| l.starts_with("uds_engine_vectors_per_s{"))
            .expect("throughput sample");
        assert!(line.contains("engine=\"native\""), "{line}");
        assert!(line.contains("word=\"64\""), "{line}");
        assert!(text.contains("uds_engine_vectors_per_s_ewma{"), "{text}");
        assert!(
            text.contains("uds_serve_in_flight_rolling{stat=\"window_avg\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("uds_serve_in_flight_rolling{stat=\"ewma\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn label_values_escape_quotes_backslashes_and_newlines() {
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
    }

    #[test]
    fn colliding_names_are_dropped_and_counted() {
        let telemetry = Telemetry::new();
        telemetry.add("cache.hits", 1);
        telemetry.add("cache-hits", 2);
        let text = render(&telemetry.snapshot());
        let samples: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("uds_cache_hits "))
            .collect();
        // `cache-hits` sorts before `cache.hits`, so it exports first
        // and wins; the later name drops.
        assert_eq!(samples, ["uds_cache_hits 2"], "first exported name wins");
        assert!(text.contains("uds_prom_name_collisions 1\n"));
    }

    #[test]
    fn exposition_ends_every_line_with_newline() {
        let telemetry = Telemetry::new();
        telemetry.add("n", 1);
        let text = render(&telemetry.snapshot());
        assert!(text.ends_with('\n'));
        assert!(!text.contains("\n\n"), "no blank lines");
    }
}
