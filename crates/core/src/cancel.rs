//! Cooperative cancellation for long-running simulation work.
//!
//! A [`CancelToken`] is a cheap, clonable handle that batch workers
//! poll between vectors. It trips for one of two reasons:
//!
//! * **explicit cancellation** — someone called [`CancelToken::cancel`]
//!   (the serve daemon's `DELETE /jobs/:id`, a dropped client);
//! * **a deadline** — the token was built with
//!   [`CancelToken::with_deadline`] and the wall clock passed it (the
//!   daemon's per-request timeout).
//!
//! Polling costs one relaxed atomic load plus, when a deadline is set,
//! one `Instant::now()` — cheap enough to check every vector, which
//! bounds how much work survives a cancellation to a single vector per
//! worker. A tripped token stays tripped; tokens are one-shot by
//! design so a cancelled job can never resume.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a [`CancelToken`] tripped.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The token's deadline passed.
    DeadlineExceeded,
}

impl std::fmt::Display for CancelCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CancelCause::Cancelled => "cancelled",
            CancelCause::DeadlineExceeded => "deadline exceeded",
        })
    }
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A clonable cancellation handle; all clones share one trip state.
///
/// The default token never trips on its own and is free to poll — the
/// "no cancellation" case threads it through unconditionally.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that only trips on an explicit [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that also trips once the wall clock passes `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Trips the token. Idempotent; every clone observes it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Why the token has tripped, or `None` while work may continue.
    ///
    /// An explicit [`CancelToken::cancel`] wins over a passed deadline
    /// when both hold — the explicit signal is the intentional one.
    pub fn cause(&self) -> Option<CancelCause> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Some(CancelCause::Cancelled);
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => Some(CancelCause::DeadlineExceeded),
            _ => None,
        }
    }

    /// `true` once the token has tripped for any cause.
    pub fn is_cancelled(&self) -> bool {
        self.cause().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_token_is_live() {
        let token = CancelToken::new();
        assert_eq!(token.cause(), None);
        assert!(!token.is_cancelled());
    }

    #[test]
    fn cancel_trips_every_clone() {
        let token = CancelToken::new();
        let clone = token.clone();
        token.cancel();
        assert_eq!(clone.cause(), Some(CancelCause::Cancelled));
        assert!(token.is_cancelled());
    }

    #[test]
    fn passed_deadline_trips() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(token.cause(), Some(CancelCause::DeadlineExceeded));
    }

    #[test]
    fn future_deadline_stays_live_and_cancel_wins() {
        let token = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert_eq!(token.cause(), None);
        token.cancel();
        assert_eq!(token.cause(), Some(CancelCause::Cancelled));
    }
}
