//! Vector-batched multi-core execution.
//!
//! Unit-delay simulation of a vector stream looks inherently
//! sequential: vector *i* starts from the settled state vector *i - 1*
//! left behind (retention). The batch runner breaks that dependency
//! with a cheap **zero-delay prepass**: for a combinational circuit the
//! unit-delay settled state after vector *i* is exactly the zero-delay
//! (levelized) evaluation of vector *i* alone — the fixpoint is unique
//! and history-free (see
//! [`stable_states`](uds_eventsim::zero_delay::stable_states)). So the
//! stream splits into contiguous shards, each worker seeds its engine
//! with the zero-delay state of the vector just before its shard, and
//! all shards simulate independently — bit-exact with the sequential
//! run for *any* shard count.
//!
//! Each worker owns a [`GuardedSimulator`] fork, so a panicking or
//! budget-blowing engine degrades only its own shard; the others keep
//! their fast engines. Shard timings surface as `batch.shard.<k>`
//! telemetry spans with `batch.shards` / `batch.vectors_per_shard`
//! gauges.

// SimError is large but cold; see guard.rs.
#![allow(clippy::result_large_err)]

use std::panic::{self, AssertUnwindSafe};
use std::time::Instant;

use uds_eventsim::zero_delay::stable_states;
use uds_netlist::Netlist;

use crate::cancel::CancelToken;
use crate::error::{SimError, SimErrorKind, SimPhase};
use crate::guard::GuardedSimulator;
use crate::progress::{BatchProbe, Heartbeat, NoopBatchProbe};
use crate::telemetry::{SpanNode, Telemetry};
use crate::Engine;

/// What one shard did: its slice of the stream, wall-clock time, and
/// how its fallback chain fared.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Shard index (shards partition the stream in order).
    pub index: usize,
    /// First vector of the shard (index into the full stream).
    pub start: usize,
    /// Vectors the shard simulated.
    pub vectors: usize,
    /// When the shard started, in nanoseconds since the telemetry
    /// registry's epoch (0 when the run carried no telemetry) — what
    /// places `batch.shard.<k>` spans on the exported timeline.
    pub start_ns: u64,
    /// Wall-clock simulation time, excluding the prepass.
    pub wall_ns: u64,
    /// The engine that survived the shard.
    pub engine: Engine,
    /// Fallbacks fired inside this shard alone.
    pub fallbacks: usize,
}

/// The assembled result of a batch run.
#[derive(Clone, Debug)]
pub struct BatchOutput {
    /// Per-vector primary-output settled values, in stream order —
    /// bit-identical to a sequential run regardless of shard count.
    pub rows: Vec<Vec<bool>>,
    /// Per-shard execution reports, in shard order.
    pub shards: Vec<ShardReport>,
}

/// What a worker hands back: its output rows and report, or the error
/// that felled the shard.
type ShardResult = Result<(Vec<Vec<bool>>, ShardReport), SimError>;

/// Splits `total` vectors into `jobs` contiguous, near-equal shards
/// (the first `total % jobs` shards get one extra vector). Returns
/// `(start, len)` pairs; empty shards are dropped. Public so batch
/// observers (the activity profiler) can size per-shard state to the
/// exact partition the runner will use.
pub fn shard_bounds(total: usize, jobs: usize) -> Vec<(usize, usize)> {
    let jobs = jobs.clamp(1, total.max(1));
    let base = total / jobs;
    let extra = total % jobs;
    let mut bounds = Vec::with_capacity(jobs);
    let mut start = 0;
    for k in 0..jobs {
        let len = base + usize::from(k < extra);
        if len > 0 {
            bounds.push((start, len));
            start += len;
        }
    }
    bounds
}

/// Runs `vectors` through forks of `prototype`, sharded across `jobs`
/// worker threads, and returns per-vector primary-output rows exactly
/// as a sequential run would produce them.
///
/// `prototype` should be freshly built (its current engine state is the
/// power-up state shard 0 starts from). Pass the session's [`Telemetry`]
/// to collect per-shard spans and gauges.
///
/// # Errors
///
/// Any vector of the wrong width is a usage error; a zero-delay prepass
/// failure surfaces as its structural class; a shard whose entire
/// fallback chain dies returns that shard's [`SimError`].
pub fn run_batch(
    netlist: &Netlist,
    prototype: &GuardedSimulator,
    vectors: &[Vec<bool>],
    jobs: usize,
    telemetry: Option<&Telemetry>,
) -> Result<BatchOutput, SimError> {
    run_batch_observed(
        netlist,
        prototype,
        vectors,
        jobs,
        telemetry,
        &NoopBatchProbe,
    )
}

/// [`run_batch`] with a [`BatchProbe`] observing the workers: periodic
/// per-shard heartbeats (`--progress` in the CLI) and/or a borrow of
/// each shard's engine after every vector (the activity profiler).
/// Both hooks are capability-gated, so a probe that wants neither costs
/// nothing in the per-vector loop.
///
/// # Errors
///
/// As [`run_batch`].
pub fn run_batch_observed(
    netlist: &Netlist,
    prototype: &GuardedSimulator,
    vectors: &[Vec<bool>],
    jobs: usize,
    telemetry: Option<&Telemetry>,
    probe: &dyn BatchProbe,
) -> Result<BatchOutput, SimError> {
    run_batch_cancellable(
        netlist,
        prototype,
        vectors,
        jobs,
        telemetry,
        probe,
        &CancelToken::new(),
    )
}

/// [`run_batch_observed`] with cooperative cancellation: every worker
/// polls `cancel` between vectors, so a tripped token (an explicit
/// cancel or a passed deadline) stops the batch within one vector per
/// shard. The interrupted run returns [`SimErrorKind::Cancelled`]
/// carrying how many vectors the reporting worker had finished — the
/// partial-work figure the serve daemon's timeout telemetry records.
///
/// # Errors
///
/// As [`run_batch`], plus [`SimErrorKind::Cancelled`] when the token
/// trips mid-run.
pub fn run_batch_cancellable(
    netlist: &Netlist,
    prototype: &GuardedSimulator,
    vectors: &[Vec<bool>],
    jobs: usize,
    telemetry: Option<&Telemetry>,
    probe: &dyn BatchProbe,
    cancel: &CancelToken,
) -> Result<BatchOutput, SimError> {
    let expected = netlist.primary_inputs().len();
    for vector in vectors {
        if vector.len() != expected {
            return Err(SimError::new(
                SimErrorKind::VectorWidth {
                    expected,
                    got: vector.len(),
                },
                SimPhase::Run,
            ));
        }
    }
    let bounds = shard_bounds(vectors.len(), jobs);
    if let Some(telemetry) = telemetry {
        telemetry.set_gauge("batch.shards", bounds.len() as u64);
        telemetry.set_gauge(
            "batch.vectors_per_shard",
            bounds.iter().map(|&(_, len)| len as u64).max().unwrap_or(0),
        );
    }
    if vectors.is_empty() {
        // Even a degenerate batch announces completion: consumers keyed
        // on `finished` (progress bars, the NDJSON stream) must never
        // wait on a batch that will say nothing.
        if probe.wants_heartbeats() {
            probe.heartbeat(&Heartbeat {
                shard: 0,
                done: 0,
                total: 0,
                wall_ns: 0,
                engine: prototype.active_engine(),
                fallbacks: 0,
                finished: true,
            });
        }
        return Ok(BatchOutput {
            rows: Vec::new(),
            shards: Vec::new(),
        });
    }

    // Zero-delay prepass: the stable state at each shard boundary.
    // Shard 0 starts from power-up; shard k > 0 from the settled state
    // of the vector just before it — one levelized evaluation each.
    let boundary_vectors: Vec<&[bool]> = bounds[1..]
        .iter()
        .map(|&(start, _)| vectors[start - 1].as_slice())
        .collect();
    let seeds = {
        let _span = telemetry.map(|t| t.span("batch.prepass"));
        stable_states(netlist, boundary_vectors)?
    };

    let outputs = netlist.primary_outputs().to_vec();
    let epoch = telemetry.map(Telemetry::epoch);
    let heartbeats = probe.wants_heartbeats();
    let observe_vectors = probe.wants_vectors();
    let interval = probe.heartbeat_interval();
    let mut results: Vec<Option<ShardResult>> = (0..bounds.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(bounds.len());
        for (shard, &(start, len)) in bounds.iter().enumerate() {
            let mut guard = prototype.fork();
            let seed = (shard > 0).then(|| seeds[shard - 1].as_slice());
            let slice = &vectors[start..start + len];
            let outputs = &outputs;
            handles.push(scope.spawn(move || {
                let clock = Instant::now();
                let start_ns = epoch
                    .map(|epoch| {
                        u64::try_from(clock.saturating_duration_since(epoch).as_nanos())
                            .unwrap_or(u64::MAX)
                    })
                    .unwrap_or(0);
                let beat = |guard: &GuardedSimulator, done: usize, finished: bool| {
                    probe.heartbeat(&Heartbeat {
                        shard,
                        done,
                        total: len,
                        wall_ns: u64::try_from(clock.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        engine: guard.active_engine(),
                        fallbacks: guard.fallbacks().len(),
                        finished,
                    });
                };
                let body = || -> Result<Vec<Vec<bool>>, SimError> {
                    if let Some(seed) = seed {
                        guard.seed_stable(seed);
                    }
                    if heartbeats {
                        beat(&guard, 0, false);
                    }
                    let mut last_beat = Instant::now();
                    let mut rows = Vec::with_capacity(slice.len());
                    for (done, vector) in slice.iter().enumerate() {
                        if let Some(cause) = cancel.cause() {
                            return Err(SimError::new(
                                SimErrorKind::Cancelled {
                                    cause,
                                    vectors_done: done,
                                },
                                SimPhase::Run,
                            ));
                        }
                        guard.simulate_vector(vector)?;
                        rows.push(outputs.iter().map(|&po| guard.final_value(po)).collect());
                        if observe_vectors {
                            probe.vector_done(shard, guard.active_simulator());
                        }
                        if heartbeats {
                            let finished = done + 1 == slice.len();
                            let now = Instant::now();
                            if finished || now.duration_since(last_beat) >= interval {
                                last_beat = now;
                                beat(&guard, done + 1, finished);
                            }
                        }
                    }
                    Ok(rows)
                };
                // The guard contains engine panics itself; this outer
                // net catches anything above the engine layer so one
                // shard cannot abort its siblings.
                let rows = match panic::catch_unwind(AssertUnwindSafe(body)) {
                    Ok(result) => result?,
                    Err(payload) => {
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_owned())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_owned());
                        return Err(SimError::new(
                            SimErrorKind::EnginePanicked { message },
                            SimPhase::Run,
                        ));
                    }
                };
                Ok((
                    rows,
                    ShardReport {
                        index: shard,
                        start,
                        vectors: len,
                        start_ns,
                        wall_ns: u64::try_from(clock.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        engine: guard.active_engine(),
                        fallbacks: guard.fallbacks().len(),
                    },
                ))
            }));
        }
        for (slot, handle) in results.iter_mut().zip(handles) {
            *slot = Some(handle.join().unwrap_or_else(|payload| {
                panic::resume_unwind(payload);
            }));
        }
    });

    let mut rows = Vec::with_capacity(vectors.len());
    let mut shards = Vec::with_capacity(bounds.len());
    for result in results.into_iter().flatten() {
        let (shard_rows, report) = result?;
        rows.extend(shard_rows);
        if let Some(telemetry) = telemetry {
            telemetry.attach_span(SpanNode {
                name: format!("batch.shard.{}", report.index),
                start_ns: report.start_ns,
                wall_ns: report.wall_ns,
                // Worker spans get their own timeline lane: tid 0 is
                // the coordinating thread's span stack.
                tid: report.index as u64 + 1,
                children: Vec::new(),
            });
            telemetry.add("batch.shard_fallbacks", report.fallbacks as u64);
        }
        shards.push(report);
    }
    Ok(BatchOutput { rows, shards })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::GuardedSimulator;
    use uds_netlist::generators::iscas::c17;
    use uds_netlist::ResourceLimits;

    fn stimulus(vectors: usize) -> Vec<Vec<bool>> {
        // A fixed LCG keeps the stream deterministic without rand.
        let mut state = 0x5EED_1990_u64;
        (0..vectors)
            .map(|_| {
                (0..5)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        state >> 63 != 0
                    })
                    .collect()
            })
            .collect()
    }

    fn sequential_rows(vectors: &[Vec<bool>]) -> Vec<Vec<bool>> {
        let nl = c17();
        let mut guard = GuardedSimulator::new(&nl, ResourceLimits::production()).unwrap();
        vectors
            .iter()
            .map(|v| {
                guard.simulate_vector(v).unwrap();
                nl.primary_outputs()
                    .iter()
                    .map(|&po| guard.final_value(po))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn shard_bounds_partition_the_stream() {
        for total in [0usize, 1, 2, 7, 100] {
            for jobs in [1usize, 2, 3, 8, 200] {
                let bounds = shard_bounds(total, jobs);
                let mut next = 0;
                for &(start, len) in &bounds {
                    assert_eq!(start, next, "contiguous");
                    assert!(len > 0, "no empty shards");
                    next += len;
                }
                assert_eq!(next, total, "total={total} jobs={jobs}");
                if total > 0 {
                    let max = bounds.iter().map(|&(_, l)| l).max().unwrap();
                    let min = bounds.iter().map(|&(_, l)| l).min().unwrap();
                    assert!(max - min <= 1, "near-equal: total={total} jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn batch_rows_match_sequential_for_any_shard_count() {
        let nl = c17();
        let vectors = stimulus(23);
        let expected = sequential_rows(&vectors);
        for jobs in [1usize, 2, 5, 23, 64] {
            let guard = GuardedSimulator::new(&nl, ResourceLimits::production()).unwrap();
            let out = run_batch(&nl, &guard, &vectors, jobs, None).unwrap();
            assert_eq!(out.rows, expected, "jobs={jobs}");
            assert_eq!(
                out.shards.iter().map(|s| s.vectors).sum::<usize>(),
                vectors.len()
            );
        }
    }

    #[test]
    fn empty_stream_is_a_noop() {
        let nl = c17();
        let guard = GuardedSimulator::new(&nl, ResourceLimits::production()).unwrap();
        let out = run_batch(&nl, &guard, &[], 4, None).unwrap();
        assert!(out.rows.is_empty());
        assert!(out.shards.is_empty());
    }

    #[test]
    fn empty_stream_still_announces_completion() {
        use crate::progress::{BatchProbe, Heartbeat};
        use std::sync::Mutex;

        #[derive(Default)]
        struct Recorder(Mutex<Vec<Heartbeat>>);
        impl BatchProbe for Recorder {
            fn wants_heartbeats(&self) -> bool {
                true
            }
            fn heartbeat(&self, beat: &Heartbeat) {
                self.0.lock().unwrap().push(*beat);
            }
        }

        let nl = c17();
        let guard = GuardedSimulator::new(&nl, ResourceLimits::production()).unwrap();
        let recorder = Recorder::default();
        run_batch_observed(&nl, &guard, &[], 4, None, &recorder).unwrap();
        let beats = recorder.0.lock().unwrap();
        assert_eq!(beats.len(), 1, "exactly one completion record");
        assert!(beats[0].finished);
        assert_eq!((beats[0].done, beats[0].total), (0, 0));
    }

    #[test]
    fn wrong_width_vector_is_a_usage_error_before_any_thread_spawns() {
        let nl = c17();
        let guard = GuardedSimulator::new(&nl, ResourceLimits::production()).unwrap();
        let err = run_batch(&nl, &guard, &[vec![true; 3]], 2, None).unwrap_err();
        assert_eq!(err.class(), crate::FailureClass::Usage);
    }

    #[test]
    fn observed_batch_fires_heartbeats_and_vector_hooks() {
        use crate::progress::{BatchProbe, Heartbeat};
        use std::sync::Mutex;

        #[derive(Default)]
        struct Recorder {
            beats: Mutex<Vec<Heartbeat>>,
            vectors: Mutex<Vec<usize>>,
        }
        impl BatchProbe for Recorder {
            fn wants_heartbeats(&self) -> bool {
                true
            }
            fn heartbeat(&self, beat: &Heartbeat) {
                self.beats.lock().unwrap().push(*beat);
            }
            fn wants_vectors(&self) -> bool {
                true
            }
            fn vector_done(&self, shard: usize, _sim: &dyn crate::UnitDelaySimulator) {
                self.vectors.lock().unwrap().push(shard);
            }
        }

        let nl = c17();
        let vectors = stimulus(10);
        let guard = GuardedSimulator::new(&nl, ResourceLimits::production()).unwrap();
        let recorder = Recorder::default();
        let out = run_batch_observed(&nl, &guard, &vectors, 3, None, &recorder).unwrap();
        assert_eq!(
            out.rows,
            sequential_rows(&vectors),
            "probe must not perturb"
        );
        let beats = recorder.beats.lock().unwrap();
        for shard in 0..3 {
            assert!(
                beats
                    .iter()
                    .any(|b| b.shard == shard && b.finished && b.done == b.total),
                "shard {shard} must emit a final heartbeat"
            );
        }
        assert_eq!(
            recorder.vectors.lock().unwrap().len(),
            vectors.len(),
            "one vector_done per vector"
        );
    }

    #[test]
    fn tripped_token_stops_the_batch_as_budget_class() {
        use crate::cancel::{CancelCause, CancelToken};
        use crate::progress::NoopBatchProbe;

        let nl = c17();
        let vectors = stimulus(40);
        let guard = GuardedSimulator::new(&nl, ResourceLimits::production()).unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = run_batch_cancellable(&nl, &guard, &vectors, 2, None, &NoopBatchProbe, &cancel)
            .unwrap_err();
        assert_eq!(err.class(), crate::FailureClass::Budget);
        match err.kind {
            SimErrorKind::Cancelled {
                cause,
                vectors_done,
            } => {
                assert_eq!(cause, CancelCause::Cancelled);
                assert_eq!(vectors_done, 0, "tripped before the first vector");
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn live_token_leaves_the_batch_bit_exact() {
        use crate::cancel::CancelToken;
        use crate::progress::NoopBatchProbe;

        let nl = c17();
        let vectors = stimulus(23);
        let guard = GuardedSimulator::new(&nl, ResourceLimits::production()).unwrap();
        let out = run_batch_cancellable(
            &nl,
            &guard,
            &vectors,
            3,
            None,
            &NoopBatchProbe,
            &CancelToken::new(),
        )
        .unwrap();
        assert_eq!(out.rows, sequential_rows(&vectors));
    }

    #[test]
    fn shard_spans_carry_distinct_thread_ids() {
        let nl = c17();
        let vectors = stimulus(10);
        let telemetry = Telemetry::new();
        let guard = GuardedSimulator::new(&nl, ResourceLimits::production()).unwrap();
        run_batch(&nl, &guard, &vectors, 2, Some(&telemetry)).unwrap();
        let report = telemetry.snapshot();
        let mut tids: Vec<u64> = (0..2)
            .map(|shard| {
                report
                    .find_span(&format!("batch.shard.{shard}"))
                    .expect("shard span")
                    .tid
            })
            .collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids, vec![1, 2], "each shard on its own timeline lane");
    }

    #[test]
    fn telemetry_gains_shard_spans_and_gauges() {
        let nl = c17();
        let vectors = stimulus(10);
        let telemetry = Telemetry::new();
        let guard = GuardedSimulator::new(&nl, ResourceLimits::production()).unwrap();
        run_batch(&nl, &guard, &vectors, 3, Some(&telemetry)).unwrap();
        assert_eq!(telemetry.gauge_value("batch.shards"), Some(3));
        assert_eq!(telemetry.gauge_value("batch.vectors_per_shard"), Some(4));
        let report = telemetry.snapshot();
        for shard in 0..3 {
            assert!(
                report.find_span(&format!("batch.shard.{shard}")).is_some(),
                "missing span for shard {shard}"
            );
        }
        assert!(report.find_span("batch.prepass").is_some());
    }
}
