//! The unified error taxonomy for guarded simulation.
//!
//! Every way a simulation can fail — unparsable input, a structurally
//! unusable netlist, a blown resource budget, an engine panic, or a
//! cross-check divergence — maps into one [`SimError`], carrying the
//! engine and compile/run phase it happened in. Callers route on the
//! coarse [`FailureClass`] (the CLI turns it into a process exit code);
//! the full typed cause stays available through [`SimError::kind`].

use std::fmt;

use uds_netlist::bench_format::ParseError;
use uds_netlist::{BuildError, LevelizeError, LimitExceeded};

use crate::cancel::CancelCause;
use crate::crosscheck::Mismatch;
use crate::Engine;

/// Where in the pipeline an error arose.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SimPhase {
    /// Reading `.bench` text.
    Parse,
    /// Programmatic netlist construction.
    Build,
    /// Levelization / structural analysis.
    Levelize,
    /// Engine compilation.
    Compile,
    /// Vector execution.
    Run,
    /// Lockstep verification against a reference engine.
    CrossCheck,
}

impl fmt::Display for SimPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SimPhase::Parse => "parse",
            SimPhase::Build => "build",
            SimPhase::Levelize => "levelize",
            SimPhase::Compile => "compile",
            SimPhase::Run => "run",
            SimPhase::CrossCheck => "cross-check",
        })
    }
}

/// The typed cause of a [`SimError`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimErrorKind {
    /// `.bench` text was rejected.
    Parse(ParseError),
    /// Netlist construction was rejected.
    Build(BuildError),
    /// The netlist is structurally unusable for compiled simulation
    /// (combinational cycle, or sequential without cutting).
    Structural(LevelizeError),
    /// A monitored net does not exist (PC-set method).
    UnknownMonitor,
    /// The netlist has more gate pins than a compiled program can
    /// address — structurally too large, not a bug (exit 4, not 6).
    PinCountOverflow {
        /// How many pins the netlist has.
        pins: usize,
    },
    /// A resource budget was exceeded.
    Budget(LimitExceeded),
    /// An engine panicked; the payload is the panic message. The panic
    /// was contained — no state of other engines was affected.
    EnginePanicked {
        /// Panic payload rendered to text.
        message: String,
    },
    /// An input vector's length does not match the primary-input count.
    VectorWidth {
        /// What the circuit expects.
        expected: usize,
        /// What the vector supplied.
        got: usize,
    },
    /// The run was stopped cooperatively before finishing — an explicit
    /// cancellation or a passed deadline ([`crate::cancel`]). Work up
    /// to `vectors_done` completed and is accounted for; nothing after
    /// it ran.
    Cancelled {
        /// Why the token tripped.
        cause: CancelCause,
        /// Vectors the interrupted worker finished before stopping.
        vectors_done: usize,
    },
    /// Two engines disagreed on a value or history.
    Mismatch(Mismatch),
    /// The native engine's toolchain is unavailable or failed: no C
    /// compiler on `PATH`, `cc` rejected the emitted translation unit,
    /// or the compiled shared object could not be loaded. The guarded
    /// chain treats this like any other compile failure and degrades
    /// to an interpreted engine.
    Toolchain {
        /// What the toolchain step reported.
        message: String,
    },
    /// Every engine in a fallback chain failed; the payload holds the
    /// per-engine errors in chain order.
    ChainExhausted(Vec<SimError>),
}

/// Coarse failure classes, one per CLI exit code.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FailureClass {
    /// Bad invocation or malformed stimulus (exit 2).
    Usage,
    /// Input could not be parsed or read (exit 3).
    Parse,
    /// The netlist is structurally unusable (exit 4).
    Structural,
    /// A resource budget was exceeded (exit 5).
    Budget,
    /// An engine panicked (exit 6).
    Panic,
    /// Engines disagreed — a correctness failure (exit 7).
    Mismatch,
    /// The native engine's C toolchain is missing or failed (exit 8).
    Toolchain,
}

impl FailureClass {
    /// The process exit code the CLI uses for this class.
    pub fn exit_code(self) -> i32 {
        match self {
            FailureClass::Usage => 2,
            FailureClass::Parse => 3,
            FailureClass::Structural => 4,
            FailureClass::Budget => 5,
            FailureClass::Panic => 6,
            FailureClass::Mismatch => 7,
            FailureClass::Toolchain => 8,
        }
    }
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FailureClass::Usage => "usage",
            FailureClass::Parse => "parse",
            FailureClass::Structural => "structural",
            FailureClass::Budget => "budget",
            FailureClass::Panic => "panic",
            FailureClass::Mismatch => "mismatch",
            FailureClass::Toolchain => "toolchain",
        })
    }
}

/// One simulation failure: a typed cause plus where it happened.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimError {
    /// The typed cause.
    pub kind: SimErrorKind,
    /// The pipeline phase.
    pub phase: SimPhase,
    /// The engine involved, when one was selected.
    pub engine: Option<Engine>,
    /// The circuit's name, when known.
    pub circuit: Option<String>,
}

impl SimError {
    /// Wraps a cause with its phase; engine/circuit attach via
    /// [`SimError::with_engine`] / [`SimError::with_circuit`].
    pub fn new(kind: SimErrorKind, phase: SimPhase) -> Self {
        SimError {
            kind,
            phase,
            engine: None,
            circuit: None,
        }
    }

    /// Attaches the engine the error arose in.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Attaches the circuit name.
    pub fn with_circuit(mut self, circuit: impl Into<String>) -> Self {
        self.circuit = Some(circuit.into());
        self
    }

    /// The coarse class this error routes to. A chain-exhausted error
    /// takes the class of its *last* failure — the event-driven baseline
    /// is last in the default chain, so whatever stopped even the
    /// baseline is the story worth telling.
    pub fn class(&self) -> FailureClass {
        match &self.kind {
            SimErrorKind::Parse(_) => FailureClass::Parse,
            SimErrorKind::Build(_) => FailureClass::Parse,
            SimErrorKind::Structural(_) => FailureClass::Structural,
            SimErrorKind::UnknownMonitor => FailureClass::Usage,
            SimErrorKind::PinCountOverflow { .. } => FailureClass::Structural,
            SimErrorKind::Budget(_) => FailureClass::Budget,
            SimErrorKind::EnginePanicked { .. } => FailureClass::Panic,
            SimErrorKind::VectorWidth { .. } => FailureClass::Usage,
            // A tripped deadline is a blown time budget; an explicit
            // cancel routes the same way (the caller asked, exit 5).
            SimErrorKind::Cancelled { .. } => FailureClass::Budget,
            SimErrorKind::Mismatch(_) => FailureClass::Mismatch,
            SimErrorKind::Toolchain { .. } => FailureClass::Toolchain,
            SimErrorKind::ChainExhausted(errors) => errors
                .last()
                .map(SimError::class)
                .unwrap_or(FailureClass::Structural),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}", self.phase)?;
        if let Some(engine) = self.engine {
            write!(f, "/{engine}")?;
        }
        if let Some(circuit) = &self.circuit {
            write!(f, " on {circuit}")?;
        }
        write!(f, "] ")?;
        match &self.kind {
            SimErrorKind::Parse(err) => write!(f, "{err}"),
            SimErrorKind::Build(err) => write!(f, "{err}"),
            SimErrorKind::Structural(err) => write!(f, "{err}"),
            SimErrorKind::UnknownMonitor => write!(f, "monitored net does not exist"),
            SimErrorKind::PinCountOverflow { pins } => write!(
                f,
                "netlist has {pins} gate pins, more than a compiled program can address"
            ),
            SimErrorKind::Budget(err) => write!(f, "{err}"),
            SimErrorKind::EnginePanicked { message } => {
                write!(f, "engine panicked (contained): {message}")
            }
            SimErrorKind::VectorWidth { expected, got } => write!(
                f,
                "input vector has {got} bits but the circuit has {expected} primary inputs"
            ),
            SimErrorKind::Cancelled {
                cause,
                vectors_done,
            } => write!(f, "run stopped ({cause}) after {vectors_done} vectors"),
            SimErrorKind::Mismatch(err) => write!(f, "{err}"),
            SimErrorKind::Toolchain { message } => {
                write!(f, "native toolchain unavailable or failed: {message}")
            }
            SimErrorKind::ChainExhausted(errors) => {
                write!(f, "every engine in the fallback chain failed:")?;
                for err in errors {
                    write!(f, "\n  {err}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<ParseError> for SimError {
    fn from(err: ParseError) -> Self {
        SimError::new(SimErrorKind::Parse(err), SimPhase::Parse)
    }
}

impl From<BuildError> for SimError {
    fn from(err: BuildError) -> Self {
        SimError::new(SimErrorKind::Build(err), SimPhase::Build)
    }
}

impl From<LevelizeError> for SimError {
    fn from(err: LevelizeError) -> Self {
        SimError::new(SimErrorKind::Structural(err), SimPhase::Levelize)
    }
}

impl From<LimitExceeded> for SimError {
    fn from(err: LimitExceeded) -> Self {
        SimError::new(SimErrorKind::Budget(err), SimPhase::Compile)
    }
}

impl From<Mismatch> for SimError {
    fn from(err: Mismatch) -> Self {
        SimError::new(SimErrorKind::Mismatch(err), SimPhase::CrossCheck)
    }
}

impl From<uds_pcset::CompileError> for SimError {
    fn from(err: uds_pcset::CompileError) -> Self {
        let kind = match err {
            uds_pcset::CompileError::Levelize(e) => SimErrorKind::Structural(e),
            uds_pcset::CompileError::UnknownMonitor => SimErrorKind::UnknownMonitor,
            uds_pcset::CompileError::Limit(e) => SimErrorKind::Budget(e),
        };
        SimError::new(kind, SimPhase::Compile).with_engine(Engine::PcSet)
    }
}

impl From<uds_eventsim::ZeroDelayCompileError> for SimError {
    fn from(err: uds_eventsim::ZeroDelayCompileError) -> Self {
        let kind = match err {
            uds_eventsim::ZeroDelayCompileError::Levelize(e) => SimErrorKind::Structural(e),
            uds_eventsim::ZeroDelayCompileError::PinCountOverflow { pins } => {
                SimErrorKind::PinCountOverflow { pins }
            }
        };
        SimError::new(kind, SimPhase::Compile)
    }
}

impl From<uds_parallel::CompileError> for SimError {
    fn from(err: uds_parallel::CompileError) -> Self {
        let kind = match err {
            uds_parallel::CompileError::Levelize(e) => SimErrorKind::Structural(e),
            uds_parallel::CompileError::Limit(e) => SimErrorKind::Budget(e),
        };
        SimError::new(kind, SimPhase::Compile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uds_netlist::{Resource, ResourceLimits};

    #[test]
    fn classes_map_to_distinct_exit_codes() {
        let classes = [
            FailureClass::Usage,
            FailureClass::Parse,
            FailureClass::Structural,
            FailureClass::Budget,
            FailureClass::Panic,
            FailureClass::Mismatch,
            FailureClass::Toolchain,
        ];
        let mut codes: Vec<i32> = classes.iter().map(|c| c.exit_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), classes.len(), "exit codes must be distinct");
        assert!(!codes.contains(&0), "0 is success");
        assert!(!codes.contains(&1), "1 is reserved for unexpected errors");
    }

    #[test]
    fn budget_error_carries_context() {
        let limit = ResourceLimits {
            max_depth: Some(1),
            ..ResourceLimits::unlimited()
        }
        .check_depth(9)
        .unwrap_err();
        let err = SimError::from(limit)
            .with_engine(Engine::Parallel)
            .with_circuit("c17");
        assert_eq!(err.class(), FailureClass::Budget);
        let text = err.to_string();
        assert!(text.contains("compile"), "{text}");
        assert!(text.contains("parallel"), "{text}");
        assert!(text.contains("c17"), "{text}");
        assert!(text.contains("depth"), "{text}");
        match err.kind {
            SimErrorKind::Budget(l) => assert_eq!(l.resource, Resource::Depth),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn chain_exhausted_takes_last_class() {
        let panic_err = SimError::new(
            SimErrorKind::EnginePanicked {
                message: "boom".into(),
            },
            SimPhase::Run,
        );
        let cycle = uds_netlist::LevelizeError::Cycle {
            unordered_gates: vec![],
        };
        let structural = SimError::from(cycle);
        let chain = SimError::new(
            SimErrorKind::ChainExhausted(vec![panic_err, structural]),
            SimPhase::Compile,
        );
        assert_eq!(chain.class(), FailureClass::Structural);
    }
}
