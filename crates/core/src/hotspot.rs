//! The hot-path execution profiler: per-level self-time attribution.
//!
//! The compiled techniques turn a netlist into a straight-line program
//! ordered by level; the obvious profiling question — *which levels
//! cost what?* — is exactly the question partitioning heuristics need
//! answered. This module attributes the simulate loop's wall time and
//! work counts to netlist levels (level 0 is per-vector setup, levels
//! `1..=depth` are gate levels) using the engines' chunked
//! [`LevelTimer`](uds_netlist::LevelTimer) hooks, and pairs the
//! measurement with each engine's *static* per-level cost model so a
//! report can show how well instruction counts predict time.
//!
//! Three consumers share the model here: the `udsim hotspots` command
//! (JSON + collapsed-stack "folded" output any flamegraph tool
//! ingests), the serve daemon's `/debug/hotspots` window over a
//! bounded ring of per-request profiles, and the bench suite's
//! measured-vs-static correlation figure.
//!
//! # Attribution contract
//!
//! Every nanosecond spent inside a profiled `simulate_vector_leveled`
//! call lands in *some* level, so per-level self-times sum to the time
//! inside profiled calls. [`collect`] measures its span as the sum of
//! per-shard wall clocks — not the enclosing wall time — so the
//! contract holds under `jobs > 1` as well: profiles accumulate
//! per-shard and merge levelwise.

// SimError deliberately carries full context; see guard.rs.
#![allow(clippy::result_large_err)]

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

use uds_eventsim::zero_delay::stable_states;
use uds_netlist::{LevelProfile, Netlist};

use crate::error::{SimError, SimErrorKind, SimPhase};
use crate::telemetry::json::Json;
use crate::{shard_bounds, Engine, GuardedSimulator};

/// Schema tag of [`HotspotReport::to_json`] and the serve daemon's
/// `/debug/hotspots` document.
pub const HOTSPOT_SCHEMA: &str = "uds-hotspot-v1";

/// A measured per-level cost breakdown for one engine over one vector
/// stream, with the engine's static cost model alongside when it has
/// one.
#[derive(Clone, Debug)]
pub struct HotspotReport {
    /// The engine that ran the vectors (post-degradation).
    pub engine: Engine,
    /// Parallel arena word width (32/64); other engines report the
    /// width they were configured with, which they ignore.
    pub word_bits: u32,
    /// Vectors simulated.
    pub vectors: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Total wall time inside profiled calls: the sum of per-shard
    /// simulate walls, *not* the enclosing elapsed time — under
    /// `jobs > 1` this is what per-level self-times sum toward.
    pub span_ns: u64,
    /// Measured per-level costs, merged across shards.
    pub measured: LevelProfile,
    /// The engine's compile-time per-level cost model, when it has one.
    pub static_profile: Option<LevelProfile>,
}

impl HotspotReport {
    /// The report as a JSON document (`uds-hotspot-v1`): run context,
    /// per-level measured costs with static counts inline, and totals.
    pub fn to_json(&self) -> Json {
        let static_levels = self
            .static_profile
            .as_ref()
            .map(|p| p.levels.as_slice())
            .unwrap_or(&[]);
        let levels: Vec<Json> = self
            .measured
            .levels
            .iter()
            .enumerate()
            .map(|(level, cost)| {
                let mut members = vec![
                    ("level".to_owned(), Json::UInt(level as u64)),
                    ("self_ns".to_owned(), Json::UInt(cost.self_ns)),
                    ("word_ops".to_owned(), Json::UInt(cost.word_ops)),
                    ("gate_evals".to_owned(), Json::UInt(cost.gate_evals)),
                    (
                        "bytes_touched_est".to_owned(),
                        Json::UInt(cost.bytes_touched_est),
                    ),
                ];
                if let Some(stat) = static_levels.get(level) {
                    members.push(("static_word_ops".to_owned(), Json::UInt(stat.word_ops)));
                    members.push(("static_gate_evals".to_owned(), Json::UInt(stat.gate_evals)));
                }
                Json::Obj(members)
            })
            .collect();
        let total = self.measured.total();
        Json::obj([
            ("schema", Json::Str(HOTSPOT_SCHEMA.to_owned())),
            ("engine", Json::Str(self.engine.to_string())),
            ("word_bits", Json::UInt(u64::from(self.word_bits))),
            ("vectors", Json::UInt(self.vectors as u64)),
            ("jobs", Json::UInt(self.jobs as u64)),
            ("span_ns", Json::UInt(self.span_ns)),
            ("levels", Json::Arr(levels)),
            (
                "totals",
                Json::obj([
                    ("self_ns", Json::UInt(total.self_ns)),
                    ("word_ops", Json::UInt(total.word_ops)),
                    ("gate_evals", Json::UInt(total.gate_evals)),
                    ("bytes_touched_est", Json::UInt(total.bytes_touched_est)),
                ]),
            ),
        ])
    }

    /// The report as collapsed-stack ("folded") lines — the format
    /// `flamegraph.pl` and every compatible viewer ingest: one line per
    /// level, `engine;level_K N` where `N` is the level's self-time in
    /// nanoseconds. Levels that accumulated no time are omitted, so
    /// every emitted count is positive.
    pub fn render_folded(&self) -> String {
        let mut out = String::new();
        for (level, cost) in self.measured.levels.iter().enumerate() {
            if cost.self_ns > 0 {
                out.push_str(&format!(
                    "{};level_{} {}\n",
                    self.engine, level, cost.self_ns
                ));
            }
        }
        out
    }
}

/// Simulates `vectors` through forks of `prototype` across `jobs`
/// worker threads — the batch runner's sharding, seeded identically —
/// with every vector profiled, and returns the merged per-level
/// breakdown. The span is the sum of per-shard simulate walls, so
/// per-level self-times sum within timer granularity of it at any job
/// count.
///
/// # Errors
///
/// Any vector of the wrong width is a usage error; the zero-delay
/// prepass and shard failures surface exactly as in
/// [`run_batch`](crate::run_batch).
pub fn collect(
    netlist: &Netlist,
    prototype: &GuardedSimulator,
    vectors: &[Vec<bool>],
    jobs: usize,
    word_bits: u32,
) -> Result<HotspotReport, SimError> {
    let expected = netlist.primary_inputs().len();
    for vector in vectors {
        if vector.len() != expected {
            return Err(SimError::new(
                SimErrorKind::VectorWidth {
                    expected,
                    got: vector.len(),
                },
                SimPhase::Run,
            ));
        }
    }
    let bounds = shard_bounds(vectors.len(), jobs);
    if vectors.is_empty() {
        return Ok(HotspotReport {
            engine: prototype.active_engine(),
            word_bits,
            vectors: 0,
            jobs: bounds.len().max(1),
            span_ns: 0,
            measured: LevelProfile::default(),
            static_profile: prototype.level_static_profile(),
        });
    }

    // Zero-delay prepass, exactly as the batch runner seeds shards.
    let boundary_vectors: Vec<&[bool]> = bounds[1..]
        .iter()
        .map(|&(start, _)| vectors[start - 1].as_slice())
        .collect();
    let seeds = stable_states(netlist, boundary_vectors)?;

    type ShardResult = Result<(LevelProfile, u64, Engine), SimError>;
    let mut results: Vec<Option<ShardResult>> = (0..bounds.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(bounds.len());
        for (shard, &(start, len)) in bounds.iter().enumerate() {
            let mut guard = prototype.fork();
            let seed = (shard > 0).then(|| seeds[shard - 1].as_slice());
            let slice = &vectors[start..start + len];
            handles.push(scope.spawn(move || -> ShardResult {
                let body = || -> ShardResult {
                    if let Some(seed) = seed {
                        guard.seed_stable(seed);
                    }
                    let mut profile = LevelProfile::default();
                    let clock = Instant::now();
                    for vector in slice {
                        guard.simulate_vector_leveled(vector, &mut profile)?;
                    }
                    let wall_ns = u64::try_from(clock.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    Ok((profile, wall_ns, guard.active_engine()))
                };
                match panic::catch_unwind(AssertUnwindSafe(body)) {
                    Ok(result) => result,
                    Err(payload) => {
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_owned())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_owned());
                        Err(SimError::new(
                            SimErrorKind::EnginePanicked { message },
                            SimPhase::Run,
                        ))
                    }
                }
            }));
        }
        for (shard, handle) in handles.into_iter().enumerate() {
            results[shard] = Some(handle.join().unwrap_or_else(|_| {
                Err(SimError::new(
                    SimErrorKind::EnginePanicked {
                        message: "hotspot shard thread died".to_owned(),
                    },
                    SimPhase::Run,
                ))
            }));
        }
    });

    let mut measured = LevelProfile::default();
    let mut span_ns = 0u64;
    let mut engine = prototype.active_engine();
    for result in results.into_iter().flatten() {
        let (profile, wall_ns, shard_engine) = result?;
        measured.merge(&profile);
        span_ns = span_ns.saturating_add(wall_ns);
        // Degradations are per-shard; report the engine furthest down
        // the chain (the one whose cost shape dominated worst-case).
        engine = shard_engine;
    }
    Ok(HotspotReport {
        engine,
        word_bits,
        vectors: vectors.len(),
        jobs: bounds.len(),
        span_ns,
        measured,
        static_profile: prototype.level_static_profile(),
    })
}

/// One profiled request, as the serve daemon's sampling ring stores it.
#[derive(Clone, Debug)]
pub struct HotspotSample {
    /// When the request finished (monotonic).
    pub at: Instant,
    /// The engine that ran it.
    pub engine: Engine,
    /// Per-level breakdown for the request's whole vector stream.
    pub profile: LevelProfile,
    /// Wall time of the profiled simulate phase.
    pub span_ns: u64,
    /// Vectors in the request.
    pub vectors: u64,
}

/// Per-engine aggregation over a time window of the ring.
#[derive(Clone, Debug, Default)]
pub struct HotspotWindow {
    /// Samples that fell inside the window.
    pub samples: usize,
    /// Total profiled simulate time inside the window.
    pub span_ns: u64,
    /// Total vectors inside the window.
    pub vectors: u64,
    /// Merged per-level profiles, one entry per engine seen, in
    /// first-seen order.
    pub engines: Vec<(Engine, LevelProfile)>,
}

impl HotspotWindow {
    /// The `(engine, level, self_ns)` triples with the largest
    /// self-times, descending, at most `k` of them — the `/metrics`
    /// gauge set.
    pub fn top_levels(&self, k: usize) -> Vec<(Engine, usize, u64)> {
        let mut all: Vec<(Engine, usize, u64)> = self
            .engines
            .iter()
            .flat_map(|(engine, profile)| {
                profile
                    .levels
                    .iter()
                    .enumerate()
                    .filter(|(_, cost)| cost.self_ns > 0)
                    .map(|(level, cost)| (*engine, level, cost.self_ns))
            })
            .collect();
        all.sort_by(|a, b| b.2.cmp(&a.2).then(a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }
}

/// A bounded ring of recent per-request level profiles. The serve
/// daemon pushes one [`HotspotSample`] per profiled simulate; readers
/// aggregate a trailing window. Memory is bounded by `capacity ×
/// (depth + 1)` level slots regardless of traffic.
#[derive(Debug)]
pub struct HotspotRing {
    samples: VecDeque<HotspotSample>,
    capacity: usize,
}

impl HotspotRing {
    /// A ring keeping at most `capacity` samples (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        HotspotRing {
            samples: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Appends a sample, evicting the oldest past capacity.
    pub fn push(&mut self, sample: HotspotSample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no sample has ever been pushed (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Aggregates every sample younger than `within` relative to `now`,
    /// merged per engine. An empty window is a valid, empty summary.
    pub fn window(&self, now: Instant, within: Duration) -> HotspotWindow {
        let mut out = HotspotWindow::default();
        for sample in &self.samples {
            if now.saturating_duration_since(sample.at) > within {
                continue;
            }
            out.samples += 1;
            out.span_ns = out.span_ns.saturating_add(sample.span_ns);
            out.vectors = out.vectors.saturating_add(sample.vectors);
            match out.engines.iter_mut().find(|(e, _)| *e == sample.engine) {
                Some((_, merged)) => merged.merge(&sample.profile),
                None => out.engines.push((sample.engine, sample.profile.clone())),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uds_netlist::generators::iscas::c17;
    use uds_netlist::ResourceLimits;

    fn patterns(n: usize, width: usize) -> Vec<Vec<bool>> {
        (0..n)
            .map(|i| (0..width).map(|b| (i >> b) & 1 != 0).collect())
            .collect()
    }

    #[test]
    fn collect_attributes_all_levels_and_sums_to_span() {
        let nl = c17();
        let guard = GuardedSimulator::new(&nl, ResourceLimits::production()).unwrap();
        let vectors = patterns(64, 5);
        let report = collect(&nl, &guard, &vectors, 1, 32).unwrap();
        assert_eq!(report.vectors, 64);
        assert_eq!(report.measured.vectors, 64);
        // c17 has depth 3: levels 0..=3 must exist.
        assert!(report.measured.levels.len() >= 4);
        let total = report.measured.total_self_ns();
        assert!(total > 0);
        assert!(
            total <= report.span_ns,
            "self-time {total} cannot exceed the span {}",
            report.span_ns
        );
    }

    #[test]
    fn collect_merges_across_jobs() {
        let nl = c17();
        let guard = GuardedSimulator::new(&nl, ResourceLimits::production()).unwrap();
        let vectors = patterns(64, 5);
        let report = collect(&nl, &guard, &vectors, 2, 32).unwrap();
        assert_eq!(report.jobs, 2);
        assert_eq!(report.measured.vectors, 64);
        assert!(report.measured.total_self_ns() <= report.span_ns);
    }

    #[test]
    fn folded_lines_are_engine_level_count() {
        let nl = c17();
        let guard = GuardedSimulator::new(&nl, ResourceLimits::production()).unwrap();
        let report = collect(&nl, &guard, &patterns(32, 5), 1, 32).unwrap();
        let folded = report.render_folded();
        assert!(!folded.is_empty());
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("stack then count");
            let engine_and_level: Vec<&str> = stack.split(';').collect();
            assert_eq!(engine_and_level.len(), 2, "{line}");
            assert_eq!(engine_and_level[0], report.engine.to_string());
            assert!(engine_and_level[1].starts_with("level_"), "{line}");
            assert!(count.parse::<u64>().unwrap() > 0, "{line}");
        }
    }

    #[test]
    fn empty_stream_is_a_valid_empty_report() {
        let nl = c17();
        let guard = GuardedSimulator::new(&nl, ResourceLimits::production()).unwrap();
        let report = collect(&nl, &guard, &[], 4, 32).unwrap();
        assert_eq!(report.vectors, 0);
        assert_eq!(report.span_ns, 0);
        assert!(report.render_folded().is_empty());
        assert_eq!(
            report.to_json().get("schema").and_then(Json::as_str),
            Some(HOTSPOT_SCHEMA)
        );
    }

    #[test]
    fn json_carries_static_counts_for_compiled_engines() {
        let nl = c17();
        let guard = GuardedSimulator::new(&nl, ResourceLimits::production()).unwrap();
        let report = collect(&nl, &guard, &patterns(8, 5), 1, 32).unwrap();
        assert!(report.static_profile.is_some(), "pt+trim has a cost model");
        let json = report.to_json();
        let levels = json.get("levels").and_then(Json::as_arr).unwrap();
        assert!(levels.iter().any(|l| l.get("static_word_ops").is_some()));
    }

    #[test]
    fn ring_is_bounded_and_windowed() {
        let mut ring = HotspotRing::new(4);
        assert!(ring.is_empty());
        let t0 = Instant::now();
        for i in 0..10u64 {
            let mut profile = LevelProfile::default();
            profile.ensure_level(1);
            profile.levels[1].self_ns = 100;
            ring.push(HotspotSample {
                at: t0,
                engine: Engine::PcSet,
                profile,
                span_ns: 120,
                vectors: i,
            });
        }
        assert_eq!(ring.len(), 4);
        let window = ring.window(t0, Duration::from_secs(60));
        assert_eq!(window.samples, 4);
        assert_eq!(window.span_ns, 480);
        assert_eq!(window.engines.len(), 1);
        assert_eq!(window.engines[0].1.levels[1].self_ns, 400);
        let top = window.top_levels(5);
        assert_eq!(top, vec![(Engine::PcSet, 1, 400)]);
        // A zero-width window excludes everything but stays valid.
        let empty = ring.window(t0 + Duration::from_secs(120), Duration::from_secs(1));
        assert_eq!(empty.samples, 0);
        assert!(empty.top_levels(5).is_empty());
    }
}
