//! An observable LRU cache of compiled engines.
//!
//! CVC's central argument (PAPERS.md) is that compiled simulation wins
//! when the compiled artifact is *reused*; for a resident daemon that
//! means repeated requests for the same circuit must skip the compile
//! entirely. [`EngineCache`] keeps recently compiled
//! [`GuardedSimulator`] prototypes keyed by [`CacheKey`] — the
//! canonical netlist hash, the requested engine (or the auto chain),
//! and the arena word width — and hands out forks, so every request
//! gets a private engine in its power-up state while the compiled
//! program is shared.
//!
//! The cache is its own telemetry surface: `cache.hits`,
//! `cache.misses`, and `cache.evictions` counters plus a
//! `cache.entries` level gauge, all visible in `/metrics` and the
//! `--stats` snapshot. Eviction is least-recently-used with a linear
//! scan — capacities are tens of circuits, not millions, and the scan
//! is dwarfed by a single vector's simulation.

use std::sync::Mutex;

use uds_netlist::{bench_format, Netlist};

use crate::guard::GuardedSimulator;
use crate::telemetry::Telemetry;
use crate::{Engine, WordWidth};

/// Hashes a netlist's *canonical* `.bench` rendering (64-bit FNV-1a),
/// so two textual spellings of the same circuit share a cache entry and
/// a request log line identifies its circuit stably.
pub fn netlist_hash(netlist: &Netlist) -> u64 {
    fnv1a(bench_format::write(netlist).as_bytes())
}

/// 64-bit FNV-1a over raw bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What a compiled prototype was compiled *for*.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheKey {
    /// [`netlist_hash`] of the circuit.
    pub netlist_hash: u64,
    /// The pinned engine, or `None` for the default fallback chain.
    pub engine: Option<Engine>,
    /// Arena word width of the parallel-family engines.
    pub word: WordWidth,
}

struct Entry {
    key: CacheKey,
    prototype: GuardedSimulator,
    last_used: u64,
}

struct Inner {
    entries: Vec<Entry>,
    tick: u64,
}

/// A thread-safe LRU cache of compiled engine prototypes. All methods
/// take `&self`; handlers on different connections share one cache.
pub struct EngineCache {
    inner: Mutex<Inner>,
    capacity: usize,
    telemetry: Telemetry,
}

impl EngineCache {
    /// An empty cache holding at most `capacity` prototypes (a capacity
    /// of 0 disables caching: every lookup misses, every insert
    /// evicts nothing and stores nothing). Counters and the entries
    /// gauge report into `telemetry`.
    pub fn new(capacity: usize, telemetry: Telemetry) -> Self {
        telemetry.set_level("cache.entries", 0);
        EngineCache {
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                tick: 0,
            }),
            capacity,
            telemetry,
        }
    }

    /// Resident prototypes.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks `key` up; a hit returns a fresh fork of the cached
    /// prototype (power-up state, empty vector log) and refreshes its
    /// recency. Bumps `cache.hits` or `cache.misses`.
    pub fn lookup(&self, key: &CacheKey) -> Option<GuardedSimulator> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.iter_mut().find(|e| e.key == *key) {
            Some(entry) => {
                entry.last_used = tick;
                let fork = entry.prototype.fork();
                self.telemetry.add("cache.hits", 1);
                Some(fork)
            }
            None => {
                self.telemetry.add("cache.misses", 1);
                None
            }
        }
    }

    /// Stores a freshly compiled prototype, evicting the
    /// least-recently-used entry when full. Re-inserting an existing
    /// key replaces the prototype (no eviction counted).
    pub fn insert(&self, key: CacheKey, prototype: GuardedSimulator) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.entries.iter_mut().find(|e| e.key == key) {
            entry.prototype = prototype;
            entry.last_used = tick;
            return;
        }
        if inner.entries.len() >= self.capacity {
            let victim = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("a full cache has a victim");
            inner.entries.swap_remove(victim);
            self.telemetry.add("cache.evictions", 1);
        }
        inner.entries.push(Entry {
            key,
            prototype,
            last_used: tick,
        });
        self.telemetry
            .set_level("cache.entries", inner.entries.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uds_netlist::generators::iscas::c17;
    use uds_netlist::ResourceLimits;

    fn key(hash: u64) -> CacheKey {
        CacheKey {
            netlist_hash: hash,
            engine: None,
            word: WordWidth::default(),
        }
    }

    fn prototype() -> GuardedSimulator {
        GuardedSimulator::new(&c17(), ResourceLimits::production()).unwrap()
    }

    #[test]
    fn hash_is_stable_and_spelling_invariant() {
        use uds_netlist::bench_format;
        let nl = c17();
        let h = netlist_hash(&nl);
        assert_eq!(h, netlist_hash(&nl), "deterministic");
        // Re-parse the canonical rendering: same circuit, same hash.
        let reparsed = bench_format::parse(&bench_format::write(&nl), nl.name()).unwrap();
        assert_eq!(h, netlist_hash(&reparsed));
    }

    #[test]
    fn hit_returns_a_fork_and_counts() {
        let telemetry = Telemetry::new();
        let cache = EngineCache::new(4, telemetry.clone());
        assert!(cache.lookup(&key(1)).is_none());
        cache.insert(key(1), prototype());
        let mut fork = cache.lookup(&key(1)).expect("hit");
        fork.simulate_vector(&[true, false, true, false, true])
            .unwrap();
        assert_eq!(telemetry.counter("cache.hits"), 1);
        assert_eq!(telemetry.counter("cache.misses"), 1);
        assert_eq!(telemetry.gauge_value("cache.entries"), Some(1));
    }

    #[test]
    fn keys_distinguish_engine_and_word() {
        let cache = EngineCache::new(8, Telemetry::new());
        cache.insert(key(1), prototype());
        let other_engine = CacheKey {
            engine: Some(Engine::PcSet),
            ..key(1)
        };
        let other_word = CacheKey {
            word: WordWidth::W64,
            ..key(1)
        };
        assert!(cache.lookup(&other_engine).is_none());
        assert!(cache.lookup(&other_word).is_none());
        assert!(cache.lookup(&key(1)).is_some());
    }

    #[test]
    fn evicts_least_recently_used() {
        let telemetry = Telemetry::new();
        let cache = EngineCache::new(2, telemetry.clone());
        cache.insert(key(1), prototype());
        cache.insert(key(2), prototype());
        assert!(cache.lookup(&key(1)).is_some()); // 2 is now LRU
        cache.insert(key(3), prototype());
        assert!(cache.lookup(&key(2)).is_none(), "2 was evicted");
        assert!(cache.lookup(&key(1)).is_some());
        assert!(cache.lookup(&key(3)).is_some());
        assert_eq!(telemetry.counter("cache.evictions"), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let telemetry = Telemetry::new();
        let cache = EngineCache::new(0, telemetry.clone());
        cache.insert(key(1), prototype());
        assert!(cache.is_empty());
        assert!(cache.lookup(&key(1)).is_none());
        assert_eq!(telemetry.counter("cache.evictions"), 0);
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let telemetry = Telemetry::new();
        let cache = EngineCache::new(2, telemetry.clone());
        cache.insert(key(1), prototype());
        cache.insert(key(1), prototype());
        assert_eq!(cache.len(), 1);
        assert_eq!(telemetry.counter("cache.evictions"), 0);
    }
}
