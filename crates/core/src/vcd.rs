//! Minimal VCD (Value Change Dump) emission for unit-delay histories.
//!
//! Compiled unit-delay simulation produces the complete time history of
//! every monitored net per vector; dumping those histories as VCD makes
//! them inspectable in any waveform viewer (GTKWave etc.). The writer
//! covers the small subset of IEEE 1364 VCD needed for that: a header,
//! one scope, `wire` declarations, and `#time` change records.

use std::fmt::Write as _;

use uds_netlist::{NetId, Netlist};

use crate::UnitDelaySimulator;

/// Accumulates unit-delay waveforms across vectors and renders VCD.
///
/// Each simulated vector occupies a window of `depth + 1` VCD time
/// units; vector `k`'s time `t` lands at VCD time `k * (depth + 1) + t`.
///
/// # Example
///
/// ```
/// use uds_core::vcd::VcdRecorder;
/// use uds_core::{build_simulator, Engine};
/// use uds_netlist::generators::iscas::c17;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = c17();
/// let mut sim = build_simulator(&nl, Engine::Parallel)?;
/// let mut recorder = VcdRecorder::new(&nl, nl.primary_outputs().to_vec());
/// for pattern in [0b10101u32, 0b01010, 0b11111] {
///     let inputs: Vec<bool> = (0..5).map(|i| pattern >> i & 1 != 0).collect();
///     sim.simulate_vector(&inputs);
///     recorder.record(sim.as_ref());
/// }
/// let vcd = recorder.render();
/// assert!(vcd.contains("$var wire 1"));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct VcdRecorder {
    module: String,
    nets: Vec<(NetId, String)>,
    /// Per recorded vector, per net: the history.
    frames: Vec<Vec<Vec<bool>>>,
    depth: Option<u32>,
}

impl VcdRecorder {
    /// Creates a recorder for the given nets (names are taken from the
    /// netlist).
    pub fn new(netlist: &Netlist, nets: Vec<NetId>) -> Self {
        let nets = nets
            .into_iter()
            .map(|n| (n, netlist.net_name(n).to_owned()))
            .collect();
        VcdRecorder {
            module: netlist.name().to_owned(),
            nets,
            frames: Vec::new(),
            depth: None,
        }
    }

    /// Captures the histories of all recorded nets for the simulator's
    /// most recent vector.
    ///
    /// # Panics
    ///
    /// Panics if a recorded net has no reconstructible history in this
    /// engine (monitor it), or if the engine's depth changes between
    /// records.
    pub fn record(&mut self, simulator: &dyn UnitDelaySimulator) {
        let depth = simulator.depth();
        if let Some(previous) = self.depth {
            assert_eq!(previous, depth, "all records must share one circuit");
        }
        self.depth = Some(depth);
        let frame = self
            .nets
            .iter()
            .map(|&(net, ref name)| {
                simulator
                    .history(net)
                    .unwrap_or_else(|| panic!("net {name} has no recorded history"))
            })
            .collect();
        self.frames.push(frame);
    }

    /// Number of recorded vectors.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Renders the accumulated waveforms as VCD text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$comment unit-delay-sim waveform dump $end");
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {} $end", sanitize(&self.module));
        let ids: Vec<String> = (0..self.nets.len()).map(vcd_identifier).collect();
        for ((_, name), id) in self.nets.iter().zip(&ids) {
            let _ = writeln!(out, "$var wire 1 {id} {} $end", sanitize(name));
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");

        let window = self.depth.map_or(1, |d| u64::from(d) + 1);
        let mut last: Vec<Option<bool>> = vec![None; self.nets.len()];
        for (frame_index, frame) in self.frames.iter().enumerate() {
            for t in 0..window {
                let mut stamped = false;
                for (net_index, history) in frame.iter().enumerate() {
                    let value = history[t as usize];
                    if last[net_index] != Some(value) {
                        if !stamped {
                            let _ = writeln!(out, "#{}", frame_index as u64 * window + t);
                            stamped = true;
                        }
                        let _ = writeln!(out, "{}{}", value as u8, ids[net_index]);
                        last[net_index] = Some(value);
                    }
                }
            }
        }
        let _ = writeln!(out, "#{}", self.frames.len() as u64 * window);
        out
    }
}

/// VCD identifier codes: printable ASCII 33..=126, multi-character for
/// more than 94 nets.
fn vcd_identifier(mut index: usize) -> String {
    let mut id = String::new();
    loop {
        id.push(char::from(b'!' + (index % 94) as u8));
        index /= 94;
        if index == 0 {
            break;
        }
        index -= 1;
    }
    id
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_simulator, Engine};
    use uds_netlist::generators::iscas::c17;

    #[test]
    fn vcd_has_header_vars_and_changes() {
        let nl = c17();
        let mut sim = build_simulator(&nl, Engine::Parallel).unwrap();
        let mut recorder = VcdRecorder::new(&nl, nl.primary_outputs().to_vec());
        for pattern in [0u32, 31, 0] {
            let inputs: Vec<bool> = (0..5).map(|i| pattern >> i & 1 != 0).collect();
            sim.simulate_vector(&inputs);
            recorder.record(sim.as_ref());
        }
        assert_eq!(recorder.frame_count(), 3);
        let vcd = recorder.render();
        assert!(vcd.contains("$enddefinitions $end"));
        assert_eq!(vcd.matches("$var wire 1").count(), 2);
        assert!(vcd.contains("#0"));
        // Values actually change across the three vectors.
        assert!(vcd.contains("1!") || vcd.contains("1\""), "{vcd}");
    }

    #[test]
    fn identifiers_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = vcd_identifier(i);
            assert!(id.bytes().all(|b| (33..=126).contains(&b)));
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn changes_only_emitted_on_change() {
        let nl = c17();
        let mut sim = build_simulator(&nl, Engine::Parallel).unwrap();
        let mut recorder = VcdRecorder::new(&nl, vec![nl.primary_outputs()[0]]);
        sim.simulate_vector(&[false; 5]);
        recorder.record(sim.as_ref());
        sim.simulate_vector(&[false; 5]);
        recorder.record(sim.as_ref());
        let vcd = recorder.render();
        // One initial value statement only; the stable second frame adds
        // nothing.
        let changes = vcd
            .lines()
            .filter(|l| l.starts_with('0') || l.starts_with('1'))
            .count();
        assert_eq!(changes, 1, "{vcd}");
    }
}
