//! Lockstep cross-validation of simulation engines.
//!
//! Runs any set of engines on the same stimulus and demands bit-exact
//! agreement on final values everywhere and on histories wherever both
//! engines expose one. This is the library form of the invariant the
//! workspace's integration tests enforce.

use std::fmt;

use uds_netlist::{NetId, Netlist};

use crate::UnitDelaySimulator;

/// A disagreement between two engines.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Mismatch {
    /// Index of the vector (0-based) at which the engines diverged.
    pub vector_index: usize,
    /// The reference engine's name.
    pub reference: &'static str,
    /// The diverging engine's name.
    pub candidate: &'static str,
    /// The net that differs.
    pub net: NetId,
    /// Net name, for readable reports.
    pub net_name: String,
    /// Reference history (or single final value).
    pub expected: Vec<bool>,
    /// Candidate history (or single final value).
    pub got: Vec<bool>,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vector {}: {} disagrees with {} on net {} ({}): expected {:?}, got {:?}",
            self.vector_index,
            self.candidate,
            self.reference,
            self.net,
            self.net_name,
            self.expected,
            self.got
        )
    }
}

impl std::error::Error for Mismatch {}

/// Feeds every vector of `stimulus` to all `simulators` and compares
/// them against the first (the reference).
///
/// Checks, per vector: the final value of every net, and the complete
/// history of every net for which both the reference and the candidate
/// report one.
///
/// # Errors
///
/// Returns the first [`Mismatch`] found.
///
/// # Panics
///
/// Panics if `simulators` is empty or a vector length does not match
/// the netlist.
pub fn run(
    netlist: &Netlist,
    simulators: &mut [Box<dyn UnitDelaySimulator>],
    stimulus: impl IntoIterator<Item = Vec<bool>>,
) -> Result<(), Mismatch> {
    assert!(
        !simulators.is_empty(),
        "cross-checking needs at least one engine"
    );
    for (vector_index, vector) in stimulus.into_iter().enumerate() {
        for sim in simulators.iter_mut() {
            sim.simulate_vector(&vector);
        }
        let (reference, candidates) = simulators.split_first_mut().expect("nonempty");
        for candidate in candidates.iter() {
            for net in netlist.net_ids() {
                let expected_final = reference.final_value(net);
                let got_final = candidate.final_value(net);
                if expected_final != got_final {
                    return Err(Mismatch {
                        vector_index,
                        reference: reference.engine_name(),
                        candidate: candidate.engine_name(),
                        net,
                        net_name: netlist.net_name(net).to_owned(),
                        expected: vec![expected_final],
                        got: vec![got_final],
                    });
                }
                if let (Some(expected), Some(got)) =
                    (reference.history(net), candidate.history(net))
                {
                    if expected != got {
                        return Err(Mismatch {
                            vector_index,
                            reference: reference.engine_name(),
                            candidate: candidate.engine_name(),
                            net,
                            net_name: netlist.net_name(net).to_owned(),
                            expected,
                            got,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectors::RandomVectors;
    use crate::{build_simulator, Engine};
    use uds_netlist::generators::iscas::c17;

    #[test]
    fn all_engines_agree_on_c17() {
        let nl = c17();
        let mut sims: Vec<Box<dyn UnitDelaySimulator>> = Engine::ALL
            .iter()
            .map(|&e| build_simulator(&nl, e).unwrap())
            .collect();
        run(&nl, &mut sims, RandomVectors::new(5, 99).take(200)).unwrap();
    }

    #[test]
    fn a_broken_candidate_is_caught() {
        // Use two different circuits' simulators of the same port shape:
        // an inverter vs a buffer must mismatch.
        use uds_netlist::{GateKind, NetlistBuilder};
        let build = |kind: GateKind| {
            let mut b = NetlistBuilder::new();
            let a = b.input("a");
            let y = b.gate(kind, &[a], "y").unwrap();
            b.output(y);
            b.finish().unwrap()
        };
        let good = build(GateKind::Buf);
        let bad = build(GateKind::Not);
        let mut sims: Vec<Box<dyn UnitDelaySimulator>> = vec![
            build_simulator(&good, Engine::Parallel).unwrap(),
            build_simulator(&bad, Engine::Parallel).unwrap(),
        ];
        let err = run(&good, &mut sims, vec![vec![true]]).unwrap_err();
        assert_eq!(err.vector_index, 0);
        assert!(err.to_string().contains("disagrees"));
    }
}
