//! The resident simulation daemon behind `udsim serve`.
//!
//! Every other entry point in the workspace is a one-shot run: parse,
//! compile, simulate, exit — the compiled artifact dies with the
//! process. [`SimServer`] keeps it alive: a long-running HTTP service
//! (on the hand-rolled [`crate::http`] core) that compiles once per
//! distinct circuit, caches the compiled prototype in an
//! [`EngineCache`], and serves every later request with a fork — the
//! compiled-reuse payoff the paper's straight-line code exists for.
//!
//! # Execution model
//!
//! One acceptor thread plus a fixed pool of [`ServeConfig::workers`]
//! worker threads, joined by a bounded work queue — thread count is
//! statically bounded at `workers + 1` no matter the offered load.
//! The acceptor only accepts and enqueues; workers own a connection
//! for its whole keep-alive life and run a small state machine per
//! request: read (bounded by read/idle timeouts, so slowloris senders
//! are reaped, not leaked) → execute → write → loop while the client
//! keeps the connection alive, up to [`ServeConfig::keep_alive_max`]
//! requests.
//!
//! Admission control is explicit: a full queue sheds new connections
//! immediately with `429` + `Retry-After` (written by the acceptor —
//! shedding must not queue), per-peer token buckets rate-limit
//! work-bearing requests ([`ServeConfig::rate_limit_per_s`]), and a
//! per-request deadline ([`ServeConfig::request_timeout`]) is enforced
//! *inside* the simulation loop via a cooperative [`CancelToken`],
//! mapping to `504` with the partial-work count recorded. During a
//! drain every response announces `Connection: close`, work-bearing
//! requests answer `503` + `Retry-After`, and the acceptor keeps
//! serving read-only endpoints inline so the drain stays observable.
//!
//! # Endpoints
//!
//! | Route                   | Answer |
//! |-------------------------|--------|
//! | `POST /simulate`        | run a netlist + vector batch, JSON reply (`uds-serve-v1`) |
//! | `POST /jobs`            | submit the same body asynchronously → `202` + job id (`uds-job-v1`) |
//! | `GET /jobs/:id`         | job state + latest per-shard `uds-progress-v1` heartbeats |
//! | `GET /jobs/:id/result`  | page finished rows (`?offset=N&limit=M`) |
//! | `DELETE /jobs/:id`      | cancel via the job's cancellation token |
//! | `GET /metrics`          | live telemetry in Prometheus text exposition |
//! | `GET /healthz`          | liveness: `200 ok` while the process can answer at all |
//! | `GET /readyz`           | readiness: `200 ready` while accepting work, `503 draining` during shutdown |
//! | `POST /quitquitquit`    | graceful shutdown (only with [`ServeConfig::allow_quit`]) |
//!
//! Jobs execute on the same worker pool through the same bounded
//! queue, so admission control applies uniformly; the job table is
//! bounded by [`ServeConfig::max_jobs`] with TTL eviction of finished
//! entries, keeping memory flat under sustained submission.
//!
//! Every request emits one `uds-reqlog-v1` NDJSON line to the optional
//! request-log sink, carrying the connection id, the request's ordinal
//! on its connection, queue wait, and a shed/timeout disposition so
//! 429/504 events are attributable from logs alone. Shutdown —
//! SIGTERM/SIGINT (via [`install_signal_handlers`]) or
//! `/quitquitquit` — stops admitting, finishes queued work, and
//! returns from [`SimServer::run`] so the caller can flush a final
//! telemetry snapshot.
//!
//! Telemetry: the daemon never opens spans on the shared registry
//! (handler threads would interleave one span stack); compile times are
//! attached as finished `serve.compile` spans with the connection id as
//! their timeline lane. A cache hit therefore leaves *no* compile span
//! — the observable proof that recompilation was skipped. Queue depth
//! (`serve.queue_depth`), queue wait (`serve.queue_wait_ms`), end-to-
//! end latency (`serve.request_ms`), and shed counts (`serve.shed.*`)
//! export through the same registry as SLO-ready histograms.
//!
//! # Request tracing
//!
//! Every request carries a trace id: the sanitized inbound
//! `x-uds-trace-id` header when the client sent one, else a generated
//! id. The id is echoed on the response, stamped on the `uds-reqlog-v1`
//! line, and inherited by async jobs submitted under it. Handlers
//! collect per-phase timings (queue wait, parse, cache lookup, compile,
//! simulate, serialize) into a private [`RequestTrace`] — never the
//! shared span stack — and a sink installed with
//! [`SimServer::set_trace`] streams each finished request's span tree
//! as Chrome `trace_event` JSON (`udsim serve --trace OUT`), one
//! timeline lane per connection and per job. The same completions feed
//! the rolling throughput window ([`Telemetry::record_throughput`]), so
//! `/metrics` reports live `uds_engine_vectors_per_s` gauges instead of
//! only the startup warmup number.

// SimError is large but cold; see guard.rs.
#![allow(clippy::result_large_err)]

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufReader, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use uds_netlist::{bench_format, Netlist, Probe, ResourceLimits};

use crate::cache::{netlist_hash, CacheKey, EngineCache};
use crate::cancel::{CancelCause, CancelToken};
use crate::error::{FailureClass, SimError, SimErrorKind, SimPhase};
use crate::guard::{DefaultEngineFactory, GuardedSimulator};
use crate::hotspot::{HotspotRing, HotspotSample, HOTSPOT_SCHEMA};
use crate::http::{read_request, HttpError, Request, Response, TRACE_ID_HEADER};
use crate::progress::{BatchProbe, Heartbeat, NoopBatchProbe};
use crate::telemetry::json::Json;
use crate::telemetry::{prom, trace, SpanNode, Telemetry};
use crate::{run_batch_cancellable, Engine, WordWidth};

/// Schema tag on every request-log line.
pub const REQLOG_SCHEMA: &str = "uds-reqlog-v1";

/// Schema tag on every `POST /simulate` response.
pub const SERVE_SCHEMA: &str = "uds-serve-v1";

/// Schema tag on every job-API response.
pub const JOB_SCHEMA: &str = "uds-job-v1";

/// Upper bucket bounds (milliseconds) of the serve-side latency
/// histograms (`serve.request_ms`, `serve.queue_wait_ms`).
pub const LATENCY_BOUNDS_MS: &[u64] = &[
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 30_000,
];

/// Signal-handler flag: SIGTERM/SIGINT land here (a handler may only
/// do an atomic store), and every running server polls it.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// `true` once SIGTERM or SIGINT was received (after
/// [`install_signal_handlers`]).
pub fn signal_shutdown_requested() -> bool {
    SIGNAL_SHUTDOWN.load(Ordering::Relaxed)
}

/// Routes SIGTERM and SIGINT into a graceful drain. Hand-rolled
/// against libc's `signal` (std links libc on unix already); the
/// handler is async-signal-safe — one relaxed store.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        SIGNAL_SHUTDOWN.store(true, Ordering::Relaxed);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// No signals to install off unix; `/quitquitquit` still drains.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// Tuning knobs for a [`SimServer`].
#[derive(Debug)]
pub struct ServeConfig {
    /// Compiled prototypes kept resident (LRU beyond this).
    pub cache_capacity: usize,
    /// Whether `POST /quitquitquit` is honored (else 403).
    pub allow_quit: bool,
    /// Compile budget enforced per request — untrusted input.
    pub limits: ResourceLimits,
    /// Word width when a request names none.
    pub default_word: WordWidth,
    /// Worker threads per request when a request names none.
    pub default_jobs: usize,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: u64,
    /// Largest accepted vector batch per request.
    pub max_vectors: usize,
    /// Worker threads serving connections and jobs (0 = one per
    /// available core). Total thread count is `workers + 1` (acceptor).
    pub workers: usize,
    /// Bounded backpressure queue: connections and jobs waiting for a
    /// worker. A full queue sheds with 429 + `Retry-After`.
    pub queue_depth: usize,
    /// Socket read/write timeout while a request is in flight
    /// (zero = none). A mid-request stall answers 408 and closes.
    pub read_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before it is reaped (zero = forever).
    pub idle_timeout: Duration,
    /// Requests served per connection before the server closes it
    /// (bounds how long one client can own a worker).
    pub keep_alive_max: u64,
    /// Per-request wall-clock deadline, enforced cooperatively inside
    /// the simulation loop; a blown deadline answers 504 with the
    /// partial-work count recorded. `None` disables.
    pub request_timeout: Option<Duration>,
    /// Token-bucket rate limit per peer IP on work-bearing requests
    /// (`/simulate`, `/jobs` submission), in requests per second with
    /// a burst of twice the rate. 0 disables.
    pub rate_limit_per_s: u32,
    /// Most jobs resident in the job table (queued, running, or
    /// finished-but-unexpired). Submissions beyond it answer 429.
    pub max_jobs: usize,
    /// How long a finished job's result is kept before TTL eviction.
    pub job_ttl: Duration,
    /// Per-level hotspot sampling of `/simulate` requests (`--hotspots`).
    /// Off by default: the profiled path times every level sweep, and a
    /// daemon that was not asked to self-profile must run the seed-
    /// identical hot loop.
    pub hotspots: bool,
}

/// Samples the serve hotspot ring retains; memory stays bounded by
/// `capacity × (depth + 1)` level slots regardless of traffic.
pub const HOTSPOT_RING_CAPACITY: usize = 256;

/// Trailing window `/debug/hotspots` aggregates when the query names
/// no `window_s`.
pub const HOTSPOT_WINDOW_DEFAULT_S: u64 = 60;

/// Labeled gauges `/metrics` exposes for the hottest levels.
pub const HOTSPOT_METRIC_TOP_K: usize = 5;

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache_capacity: 64,
            allow_quit: false,
            limits: ResourceLimits::production(),
            default_word: WordWidth::default(),
            default_jobs: 1,
            max_body_bytes: 16 << 20,
            max_vectors: 1 << 20,
            workers: 0,
            queue_depth: 64,
            read_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(5),
            keep_alive_max: 100,
            request_timeout: None,
            rate_limit_per_s: 0,
            max_jobs: 64,
            job_ttl: Duration::from_secs(600),
            hotspots: false,
        }
    }
}

impl ServeConfig {
    /// The worker-pool size after resolving the 0 = per-core default.
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        }
    }
}

/// `Some(timeout)` for the socket API, which treats `None` as "block
/// forever" and rejects a zero duration.
fn socket_timeout(timeout: Duration) -> Option<Duration> {
    (!timeout.is_zero()).then_some(timeout)
}

/// The HTTP status a [`SimError`] answers with: bad requests are the
/// client's fault (4xx), contained engine failures are ours (5xx).
fn status_for(class: FailureClass) -> u16 {
    match class {
        FailureClass::Usage | FailureClass::Parse => 400,
        FailureClass::Structural | FailureClass::Budget => 422,
        _ => 500,
    }
}

/// One parsed `POST /simulate` (or `POST /jobs`) body.
struct SimRequest {
    netlist: Netlist,
    stimulus: Vec<Vec<bool>>,
    engine: Option<Engine>,
    word: WordWidth,
    jobs: usize,
}

/// What a finished simulation hands back, before rendering.
struct SimOutcome {
    rows: Vec<Vec<bool>>,
    fallbacks: usize,
    engine: Engine,
    cache: &'static str,
    hash: u64,
    wall_ns: u64,
}

/// Which stage of [`SimServer::run_simulation`] failed.
enum FailedAt {
    Compile,
    Run,
}

/// Fields a handler contributes to its request-log line.
#[derive(Default)]
struct LogFacts {
    circuit: Option<String>,
    netlist_hash: Option<u64>,
    engine: Option<String>,
    cache: Option<&'static str>,
    vectors: Option<usize>,
    fallbacks: Option<usize>,
    error: Option<String>,
    /// Why the request did not get normal service: `shed:queue_full`,
    /// `shed:rate_limited`, `shed:draining`, `shed:jobs_full`, or
    /// `timeout`.
    disposition: Option<&'static str>,
    job: Option<u64>,
    /// Vectors finished before a deadline cut the run short.
    vectors_done: Option<usize>,
}

/// Per-request context the connection loop owns: identity of the
/// connection, the request's ordinal on it, and how long the
/// connection waited in the admission queue (first request only —
/// later keep-alive requests never re-queue).
#[derive(Clone, Copy)]
struct RequestContext {
    conn: u64,
    requests_on_connection: u64,
    queue_wait_ms: u64,
}

/// Timeline lane offset for async jobs in the exported trace, so job
/// executions never collide with connection ids.
const JOB_TRACE_TID: u64 = 1 << 32;

/// Nanoseconds from `epoch` to `at`, saturating (same convention as
/// the telemetry span clock).
fn ns_since(epoch: Instant, at: Instant) -> u64 {
    u64::try_from(at.saturating_duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
}

/// The per-request span collector. Handler threads must never open
/// spans on the shared telemetry stack (they would interleave), so
/// each request accumulates its phases here and the connection loop
/// folds them into one `serve.request` (or `serve.job`) root exported
/// to the trace sink and summarized as `phase_ms` on the reqlog line.
struct RequestTrace {
    /// The request's trace id (inbound header or generated).
    id: String,
    /// The telemetry epoch all `start_ns` values are relative to.
    epoch: Instant,
    /// Timeline lane: the connection id, or `JOB_TRACE_TID + job id`.
    tid: u64,
    /// Finished phases, in completion order.
    phases: Vec<SpanNode>,
}

impl RequestTrace {
    fn new(id: String, epoch: Instant, tid: u64) -> RequestTrace {
        RequestTrace {
            id,
            epoch,
            tid,
            phases: Vec::new(),
        }
    }

    /// Times `f` as one phase span.
    fn phase<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let clock = Instant::now();
        let start_ns = ns_since(self.epoch, clock);
        let value = f();
        self.push(SpanNode {
            name: name.to_owned(),
            start_ns,
            wall_ns: u64::try_from(clock.elapsed().as_nanos()).unwrap_or(u64::MAX),
            tid: 0,
            children: Vec::new(),
        });
        value
    }

    /// Records a phase that ended just now after `wall_ns` (queue wait,
    /// measured before the trace existed).
    fn lead_phase(&mut self, name: &str, wall_ns: u64) {
        let now_ns = ns_since(self.epoch, Instant::now());
        self.push(SpanNode {
            name: name.to_owned(),
            start_ns: now_ns.saturating_sub(wall_ns),
            wall_ns,
            tid: 0,
            children: Vec::new(),
        });
    }

    fn push(&mut self, node: SpanNode) {
        self.phases.push(node);
    }

    /// `{"parse": 0.12, "simulate": 3.4, ...}` — phase wall times in
    /// float milliseconds, keyed by the phase name sans `serve.`.
    /// Only phases that actually ran appear: a cache hit carries no
    /// `compile` key, a parse failure stops at `parse`. Consumers must
    /// treat the key set as the executed-phase set, never as a fixed
    /// schema with zeros for skipped work.
    fn phase_ms(&self) -> Json {
        Json::Obj(
            self.phases
                .iter()
                .map(|phase| {
                    let short = phase.name.strip_prefix("serve.").unwrap_or(&phase.name);
                    (short.to_owned(), Json::Float(phase.wall_ns as f64 / 1e6))
                })
                .collect(),
        )
    }

    /// Folds the collected phases into one root span on this trace's
    /// timeline lane.
    fn into_root(self, name: &str, started: Instant, wall_ns: u64) -> SpanNode {
        SpanNode {
            name: name.to_owned(),
            start_ns: ns_since(self.epoch, started),
            wall_ns,
            tid: self.tid,
            children: self.phases,
        }
    }
}

/// A compile-time [`Probe`] for handler threads: counters forward to
/// the shared registry (surfacing `native.cache.*` and friends in
/// `/metrics`), spans are captured privately as the compile phase's
/// children, and gauges are dropped — per-netlist static metrics from
/// concurrent requests for different circuits would fight over one
/// global value.
struct PhaseProbe {
    telemetry: Telemetry,
    epoch: Instant,
    stack: Mutex<Vec<OpenPhase>>,
    finished: Mutex<Vec<SpanNode>>,
}

struct OpenPhase {
    name: String,
    clock: Instant,
    start_ns: u64,
    children: Vec<SpanNode>,
}

impl PhaseProbe {
    fn new(telemetry: Telemetry) -> PhaseProbe {
        let epoch = telemetry.epoch();
        PhaseProbe {
            telemetry,
            epoch,
            stack: Mutex::new(Vec::new()),
            finished: Mutex::new(Vec::new()),
        }
    }

    /// The completed top-level spans (compile sub-phases).
    fn into_children(self) -> Vec<SpanNode> {
        self.finished
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}

impl Probe for PhaseProbe {
    fn span_start(&self, name: &str) {
        let clock = Instant::now();
        let start_ns = ns_since(self.epoch, clock);
        self.stack
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(OpenPhase {
                name: name.to_owned(),
                clock,
                start_ns,
                children: Vec::new(),
            });
    }

    fn span_end(&self, _name: &str) {
        let mut stack = self.stack.lock().unwrap_or_else(|e| e.into_inner());
        let Some(open) = stack.pop() else { return };
        let node = SpanNode {
            name: open.name,
            start_ns: open.start_ns,
            wall_ns: u64::try_from(open.clock.elapsed().as_nanos()).unwrap_or(u64::MAX),
            tid: 0,
            children: open.children,
        };
        match stack.last_mut() {
            Some(parent) => parent.children.push(node),
            None => self
                .finished
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(node),
        }
    }

    fn count(&self, name: &str, delta: u64) {
        self.telemetry.add(name, delta);
    }

    fn gauge(&self, _name: &str, _value: u64) {}
}

/// Streams finished request/job span trees as one Chrome `trace_event`
/// document: preamble on first write, events comma-separated as they
/// complete, `]}` on [`TraceSink::close`]. A crash mid-stream leaves a
/// truncated-but-prefix-valid file, the same contract the one-shot
/// `--trace` export has.
struct TraceSink {
    out: Box<dyn Write + Send>,
    started: bool,
    wrote_event: bool,
    seen_tids: Vec<u64>,
}

impl TraceSink {
    fn new(out: Box<dyn Write + Send>) -> TraceSink {
        TraceSink {
            out,
            started: false,
            wrote_event: false,
            seen_tids: Vec::new(),
        }
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let _ = write!(self.out, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        self.write_event(&trace::metadata_event("process_name", 0, "udsim serve"));
    }

    fn write_event(&mut self, event: &Json) {
        let separator = if self.wrote_event { "," } else { "" };
        let _ = write!(self.out, "{separator}\n{}", event.render());
        self.wrote_event = true;
    }

    /// Writes `root`'s subtree, naming its timeline lane on first
    /// sight and stamping the trace id into the root event's `args`.
    fn write_span(&mut self, root: &SpanNode, trace_id: &str, lane: &str) {
        self.ensure_started();
        if !self.seen_tids.contains(&root.tid) {
            self.seen_tids.push(root.tid);
            self.write_event(&trace::metadata_event("thread_name", root.tid, lane));
        }
        let mut events = Vec::new();
        trace::span_events(root, &mut events);
        if let Some(Json::Obj(members)) = events.first_mut() {
            members.push((
                "args".to_owned(),
                Json::obj([("trace_id", Json::Str(trace_id.to_owned()))]),
            ));
        }
        for event in &events {
            self.write_event(event);
        }
        let _ = self.out.flush();
    }

    fn close(&mut self) {
        self.ensure_started();
        let _ = write!(self.out, "\n]}}\n");
        let _ = self.out.flush();
    }
}

/// One unit of work for the pool: a connection to serve through its
/// keep-alive life, or an async job to execute. Jobs ride the same
/// bounded queue as connections, so admission control and the thread
/// bound apply uniformly.
enum WorkItem {
    Conn {
        stream: TcpStream,
        peer: IpAddr,
        conn: u64,
        enqueued: Instant,
    },
    Job(u64),
}

/// Bounded MPMC queue (mutex + condvar): the backpressure seam between
/// the acceptor and the worker pool. `busy` counts items popped but
/// not yet finished, so "no work anywhere" is one consistent check.
struct WorkQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    ready: Condvar,
}

#[derive(Default)]
struct QueueState {
    items: VecDeque<WorkItem>,
    busy: usize,
    closed: bool,
}

impl WorkQueue {
    fn new(capacity: usize) -> Self {
        WorkQueue {
            capacity: capacity.max(1),
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues unless the queue is full or closed; a rejected item
    /// comes back to the caller, whose job is to shed it.
    fn try_push(&self, item: WorkItem) -> Result<(), WorkItem> {
        let mut state = self.lock();
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once the queue is closed and
    /// empty (the worker's exit signal). A popped item counts as busy
    /// until [`WorkQueue::done`].
    fn pop(&self) -> Option<WorkItem> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                state.busy += 1;
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn done(&self) {
        let mut state = self.lock();
        state.busy = state.busy.saturating_sub(1);
    }

    /// `(queued, busy)` under one lock — the drain-completion check.
    fn load(&self) -> (usize, usize) {
        let state = self.lock();
        (state.items.len(), state.busy)
    }

    fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

/// Per-peer token buckets for work-bearing requests. Buckets refill at
/// the configured rate with a burst of twice the rate; the map is
/// cleared wholesale if it ever grows past a bound — brief
/// over-admission beats unbounded memory on a spoofed-source flood.
struct RateLimiter {
    buckets: Mutex<HashMap<IpAddr, TokenBucket>>,
}

struct TokenBucket {
    tokens: f64,
    refilled: Instant,
}

impl RateLimiter {
    const MAX_PEERS: usize = 4096;

    fn new() -> Self {
        RateLimiter {
            buckets: Mutex::new(HashMap::new()),
        }
    }

    fn allow(&self, peer: IpAddr, rate_per_s: u32) -> bool {
        if rate_per_s == 0 {
            return true;
        }
        let rate = f64::from(rate_per_s);
        let burst = rate * 2.0;
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        if buckets.len() >= Self::MAX_PEERS && !buckets.contains_key(&peer) {
            buckets.clear();
        }
        let bucket = buckets.entry(peer).or_insert(TokenBucket {
            tokens: burst,
            refilled: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * rate).min(burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Lifecycle of an async job. Terminal states keep their result or
/// error until TTL eviction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// One async job: the parsed request rides in until a worker takes it,
/// then the result (or error) rides out until eviction.
struct Job {
    state: JobState,
    cancel: CancelToken,
    request: Option<SimRequest>,
    /// Inherited from the submitting request, so one id follows the
    /// work from submission through async execution.
    trace_id: String,
    vectors_total: usize,
    progress: BTreeMap<usize, Heartbeat>,
    outcome: Option<SimOutcome>,
    error: Option<(u16, String)>,
    finished: Option<Instant>,
}

/// Bounded job table with TTL eviction of finished entries.
struct JobTable {
    state: Mutex<JobTableState>,
}

#[derive(Default)]
struct JobTableState {
    next_id: u64,
    jobs: BTreeMap<u64, Arc<Mutex<Job>>>,
}

impl JobTable {
    fn new() -> Self {
        JobTable {
            state: Mutex::new(JobTableState::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JobTableState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a queued job, evicting expired finished jobs first.
    /// `None` when the table is at capacity with live entries.
    fn submit(
        &self,
        request: SimRequest,
        trace_id: String,
        max_jobs: usize,
        ttl: Duration,
    ) -> Option<u64> {
        let now = Instant::now();
        let mut state = self.lock();
        state.jobs.retain(|_, job| {
            let job = job.lock().unwrap_or_else(|e| e.into_inner());
            match job.finished {
                Some(at) => now.saturating_duration_since(at) < ttl,
                None => true,
            }
        });
        if state.jobs.len() >= max_jobs.max(1) {
            return None;
        }
        state.next_id += 1;
        let id = state.next_id;
        let vectors_total = request.stimulus.len();
        state.jobs.insert(
            id,
            Arc::new(Mutex::new(Job {
                state: JobState::Queued,
                cancel: CancelToken::new(),
                request: Some(request),
                trace_id,
                vectors_total,
                progress: BTreeMap::new(),
                outcome: None,
                error: None,
                finished: None,
            })),
        );
        Some(id)
    }

    fn get(&self, id: u64) -> Option<Arc<Mutex<Job>>> {
        self.lock().jobs.get(&id).cloned()
    }

    fn resident(&self) -> usize {
        self.lock().jobs.len()
    }
}

/// A [`BatchProbe`] that folds each shard's latest heartbeat into the
/// job table entry, so `GET /jobs/:id` reports live progress — the
/// same seam `--progress` uses, pointed at a map instead of a stream.
struct JobProbe<'a> {
    job: &'a Mutex<Job>,
}

impl BatchProbe for JobProbe<'_> {
    fn wants_heartbeats(&self) -> bool {
        true
    }

    fn heartbeat(&self, beat: &Heartbeat) {
        let mut job = self.job.lock().unwrap_or_else(|e| e.into_inner());
        job.progress.insert(beat.shard, *beat);
    }
}

/// A long-running simulation service bound to one listener.
pub struct SimServer {
    listener: TcpListener,
    config: ServeConfig,
    telemetry: Telemetry,
    cache: EngineCache,
    shutdown: Arc<AtomicBool>,
    reqlog: Option<Mutex<Box<dyn Write + Send>>>,
    trace: Option<Mutex<TraceSink>>,
    connections: AtomicU64,
    in_flight: AtomicU64,
    trace_seq: AtomicU64,
    queue: WorkQueue,
    jobs: JobTable,
    limiter: RateLimiter,
    /// `Some` only with [`ServeConfig::hotspots`]: the bounded ring of
    /// recent per-request level profiles `/debug/hotspots` windows.
    hotspots: Option<Mutex<HotspotRing>>,
}

/// A clonable handle that asks a running server to drain and stop.
#[derive(Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests a graceful drain; [`SimServer::run`] returns once every
    /// queued and in-flight piece of work finished.
    pub fn request(&self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

impl SimServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// prepares the service. Counters, the cache, and build facts all
    /// report into `telemetry`; `reqlog`, when given, receives one
    /// NDJSON line per request.
    ///
    /// # Errors
    ///
    /// Bind failures pass through.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServeConfig,
        telemetry: Telemetry,
        reqlog: Option<Box<dyn Write + Send>>,
    ) -> std::io::Result<SimServer> {
        let listener = TcpListener::bind(addr)?;
        let cache = EngineCache::new(config.cache_capacity, telemetry.clone());
        telemetry.set_level("serve.in_flight", 0);
        telemetry.set_level("serve.queue_depth", 0);
        telemetry.set_level("serve.jobs.resident", 0);
        let queue = WorkQueue::new(config.queue_depth);
        let hotspots = config
            .hotspots
            .then(|| Mutex::new(HotspotRing::new(HOTSPOT_RING_CAPACITY)));
        Ok(SimServer {
            listener,
            config,
            telemetry,
            cache,
            shutdown: Arc::new(AtomicBool::new(false)),
            reqlog: reqlog.map(Mutex::new),
            trace: None,
            connections: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            trace_seq: AtomicU64::new(0),
            queue,
            jobs: JobTable::new(),
            limiter: RateLimiter::new(),
            hotspots,
        })
    }

    /// Installs a live trace sink: every finished request and job
    /// streams its span tree to `out` as Chrome `trace_event` JSON,
    /// closed into a loadable document when [`SimServer::run`]
    /// returns. Install before `run` — the sink is part of the
    /// server's wiring, not a runtime toggle.
    pub fn set_trace(&mut self, out: Box<dyn Write + Send>) {
        self.trace = Some(Mutex::new(TraceSink::new(out)));
    }

    /// A fresh trace id for a request that carried none: a short hash
    /// of a process-wide sequence number, the connection id, and the
    /// uptime clock — unique within this server's lifetime and cheap.
    fn next_trace_id(&self, conn: u64) -> String {
        let seq = self.trace_seq.fetch_add(1, Ordering::Relaxed);
        let uptime_ns = ns_since(self.telemetry.epoch(), Instant::now());
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for word in [seq, conn, uptime_ns] {
            hash ^= word;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{hash:016x}")
    }

    /// Streams one finished request/job tree to the trace sink, if any.
    fn export_trace(&self, trace: RequestTrace, name: &str, started: Instant, wall_ns: u64) {
        let Some(sink) = &self.trace else { return };
        let lane = if trace.tid >= JOB_TRACE_TID {
            format!("job {}", trace.tid - JOB_TRACE_TID)
        } else {
            format!("conn {}", trace.tid)
        };
        let id = trace.id.clone();
        let root = trace.into_root(name, started, wall_ns);
        sink.lock()
            .unwrap_or_else(|e| e.into_inner())
            .write_span(&root, &id, &lane);
    }

    /// The bound address (the real port when bound to `:0`).
    ///
    /// # Errors
    ///
    /// Socket introspection failures pass through.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that triggers a graceful drain from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || signal_shutdown_requested()
    }

    fn note_queue_depth(&self) {
        let (depth, _) = self.queue.load();
        self.telemetry.set_level("serve.queue_depth", depth as u64);
        self.telemetry
            .observe_rolling("serve.queue_depth", depth as u64);
    }

    /// Serves until shutdown is requested (handle, `/quitquitquit`, or
    /// a signal), then finishes every queued connection and job before
    /// returning — `/readyz` answers `503 draining` for the whole
    /// tail. The caller owns the final telemetry snapshot.
    ///
    /// # Errors
    ///
    /// Only listener-level failures (the nonblocking switch); per-
    /// connection errors are answered, logged, and counted instead.
    pub fn run(&self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let workers = self.config.resolved_workers();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.worker_loop());
            }
            loop {
                if self.draining() {
                    let (depth, busy) = self.queue.load();
                    if depth == 0 && busy == 0 {
                        break;
                    }
                }
                match self.listener.accept() {
                    Ok((stream, peer)) => {
                        // Accepted sockets always get timeouts before
                        // any read — an unconfigured socket blocks
                        // forever and a stalled client would pin
                        // whichever thread touches it.
                        let _ = stream.set_read_timeout(socket_timeout(self.config.read_timeout));
                        let _ = stream.set_write_timeout(socket_timeout(self.config.read_timeout));
                        let conn = self.connections.fetch_add(1, Ordering::Relaxed) + 1;
                        if self.draining() {
                            // Inline, short-fused service keeps the
                            // drain observable (readyz/metrics/job
                            // polls) without re-opening admission.
                            let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
                            self.serve_connection(stream, peer.ip(), conn, None);
                        } else {
                            self.admit(stream, peer.ip(), conn);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => {
                        self.telemetry.add("serve.accept_errors", 1);
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            }
            self.queue.close();
            // Scope exit joins the workers: the drain barrier.
        });
        if let Some(sink) = &self.trace {
            sink.lock().unwrap_or_else(|e| e.into_inner()).close();
        }
        Ok(())
    }

    /// Enqueues an accepted connection, or sheds it with an immediate
    /// 429 written from the acceptor — shedding must not itself queue,
    /// and writing ~100 bytes to a fresh socket cannot meaningfully
    /// block under the write timeout already set.
    fn admit(&self, stream: TcpStream, peer: IpAddr, conn: u64) {
        let item = WorkItem::Conn {
            stream,
            peer,
            conn,
            enqueued: Instant::now(),
        };
        match self.queue.try_push(item) {
            Ok(()) => self.note_queue_depth(),
            Err(WorkItem::Conn { stream, .. }) => {
                self.telemetry.add("serve.shed.queue_full", 1);
                let response =
                    Response::text(429, "server overloaded\n").with_header("Retry-After", "1");
                let _ = response.write_to(&mut (&stream), false);
                // Discard whatever request bytes already arrived: closing
                // a socket with unread data RSTs the peer and the kernel
                // may throw away the 429 we just queued. Non-blocking so
                // a slow peer cannot stall the acceptor.
                if stream.set_nonblocking(true).is_ok() {
                    let mut sink = [0u8; 4096];
                    while matches!((&stream).read(&mut sink), Ok(n) if n > 0) {}
                }
                let context = RequestContext {
                    conn,
                    requests_on_connection: 1,
                    queue_wait_ms: 0,
                };
                let facts = LogFacts {
                    disposition: Some("shed:queue_full"),
                    ..LogFacts::default()
                };
                self.finish_request(None, &response, Instant::now(), context, &facts, None);
            }
            Err(WorkItem::Job(_)) => unreachable!("pushed a Conn"),
        }
    }

    fn worker_loop(&self) {
        while let Some(item) = self.queue.pop() {
            self.note_queue_depth();
            match item {
                WorkItem::Conn {
                    stream,
                    peer,
                    conn,
                    enqueued,
                } => self.serve_connection(stream, peer, conn, Some(enqueued)),
                WorkItem::Job(id) => self.execute_job(id),
            }
            self.queue.done();
        }
    }

    /// The per-connection state machine: read → execute → write,
    /// looping while keep-alive holds. `enqueued` is `Some` for
    /// pooled connections (queue wait is measured) and `None` for the
    /// acceptor's inline drain service.
    fn serve_connection(
        &self,
        stream: TcpStream,
        peer: IpAddr,
        conn: u64,
        enqueued: Option<Instant>,
    ) {
        let queue_wait_ns = enqueued.map_or(0, |at| {
            let wait_ns = u64::try_from(at.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.telemetry.record("serve.queue_wait_ns", wait_ns);
            self.telemetry.observe_histogram(
                "serve.queue_wait_ms",
                LATENCY_BOUNDS_MS,
                wait_ns / 1_000_000,
            );
            wait_ns
        });
        let queue_wait_ms = queue_wait_ns / 1_000_000;
        let level = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.telemetry.set_level("serve.in_flight", level);
        self.telemetry.observe_rolling("serve.in_flight", level);

        let mut reader = BufReader::new(&stream);
        let mut served = 0u64;
        loop {
            if served > 0 {
                // Between requests the clock is the idle budget, not
                // the mid-request read budget.
                let _ = stream.set_read_timeout(socket_timeout(self.config.idle_timeout));
            }
            let clock = Instant::now();
            match read_request(&mut reader, self.config.max_body_bytes) {
                Ok(request) => {
                    let _ = stream.set_read_timeout(socket_timeout(self.config.read_timeout));
                    served += 1;
                    let context = RequestContext {
                        conn,
                        requests_on_connection: served,
                        queue_wait_ms: if served == 1 { queue_wait_ms } else { 0 },
                    };
                    let trace_id = request
                        .trace_id()
                        .unwrap_or_else(|| self.next_trace_id(conn));
                    let mut trace = RequestTrace::new(trace_id, self.telemetry.epoch(), conn);
                    if served == 1 && queue_wait_ns > 0 {
                        trace.lead_phase("serve.queue_wait", queue_wait_ns);
                    }
                    let (response, facts) = self.route(&request, peer, context, &mut trace);
                    let response = response.with_header(TRACE_ID_HEADER, trace.id.clone());
                    let keep_alive = request.keep_alive
                        && served < self.config.keep_alive_max.max(1)
                        && enqueued.is_some()
                        && !self.draining();
                    let written = response.write_to(&mut (&stream), keep_alive);
                    self.finish_request(
                        Some(&request),
                        &response,
                        clock,
                        context,
                        &facts,
                        Some(trace),
                    );
                    if written.is_err() || !keep_alive {
                        break;
                    }
                }
                Err(error) => {
                    if error.deserves_response() {
                        let response = Response::text(error.status(), format!("{error}\n"));
                        let _ = response.write_to(&mut (&stream), false);
                        let context = RequestContext {
                            conn,
                            requests_on_connection: served + 1,
                            queue_wait_ms: 0,
                        };
                        let facts = LogFacts {
                            error: Some(error.to_string()),
                            disposition: matches!(error, HttpError::TimedOut { .. })
                                .then_some("timeout"),
                            ..LogFacts::default()
                        };
                        self.finish_request(None, &response, clock, context, &facts, None);
                    }
                    break;
                }
            }
        }
        let level = self.in_flight.fetch_sub(1, Ordering::Relaxed) - 1;
        self.telemetry.set_level("serve.in_flight", level);
        self.telemetry.observe_rolling("serve.in_flight", level);
    }

    /// Counts, measures, logs, and (when traced) exports one answered
    /// request. `trace` is `None` only for requests that never reached
    /// routing (sheds, read errors).
    fn finish_request(
        &self,
        request: Option<&Request>,
        response: &Response,
        started: Instant,
        context: RequestContext,
        facts: &LogFacts,
        trace: Option<RequestTrace>,
    ) {
        self.telemetry.add("serve.requests", 1);
        if response.status >= 400 {
            self.telemetry.add("serve.http_errors", 1);
        }
        let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.telemetry.observe_histogram(
            "serve.request_ms",
            LATENCY_BOUNDS_MS,
            wall_ns / 1_000_000,
        );
        self.log_request(
            request,
            response.status,
            wall_ns,
            context,
            facts,
            trace.as_ref(),
        );
        if let Some(trace) = trace {
            self.export_trace(trace, "serve.request", started, wall_ns);
        }
    }

    /// Work-bearing admission: drain first, then the per-peer bucket.
    /// `Some` is the shed response to answer with.
    fn admission_check(&self, peer: IpAddr, facts: &mut LogFacts) -> Option<Response> {
        if self.draining() {
            self.telemetry.add("serve.shed.draining", 1);
            facts.disposition = Some("shed:draining");
            return Some(Response::text(503, "draining\n").with_header("Retry-After", "1"));
        }
        if !self.limiter.allow(peer, self.config.rate_limit_per_s) {
            self.telemetry.add("serve.shed.rate_limited", 1);
            facts.disposition = Some("shed:rate_limited");
            return Some(
                Response::text(429, "rate limit exceeded\n").with_header("Retry-After", "1"),
            );
        }
        None
    }

    fn route(
        &self,
        request: &Request,
        peer: IpAddr,
        context: RequestContext,
        trace: &mut RequestTrace,
    ) -> (Response, LogFacts) {
        let no_facts = LogFacts::default();
        let (path, query) = request
            .path
            .split_once('?')
            .unwrap_or((request.path.as_str(), ""));
        match (request.method.as_str(), path) {
            ("GET", "/healthz") => (Response::text(200, "ok\n"), no_facts),
            ("GET", "/readyz") => {
                if self.draining() {
                    (Response::text(503, "draining\n"), no_facts)
                } else {
                    (Response::text(200, "ready\n"), no_facts)
                }
            }
            ("GET", "/metrics") => {
                let mut body = prom::render(&self.telemetry.snapshot());
                self.append_hotspot_gauges(&mut body);
                (
                    Response {
                        status: 200,
                        content_type: prom::CONTENT_TYPE,
                        extra_headers: Vec::new(),
                        body: body.into_bytes(),
                    },
                    no_facts,
                )
            }
            ("GET", "/debug/hotspots") => (self.hotspots_get(query), no_facts),
            ("POST", "/simulate") => {
                let mut facts = LogFacts::default();
                if let Some(shed) = self.admission_check(peer, &mut facts) {
                    return (shed, facts);
                }
                self.simulate(request, context.conn, trace)
            }
            ("POST", "/jobs") => {
                let mut facts = LogFacts::default();
                if let Some(shed) = self.admission_check(peer, &mut facts) {
                    return (shed, facts);
                }
                self.submit_job(request, trace)
            }
            ("GET", jobs_path) if jobs_path.starts_with("/jobs/") => {
                self.job_get(&jobs_path["/jobs/".len()..], query)
            }
            ("DELETE", jobs_path) if jobs_path.starts_with("/jobs/") => {
                self.job_cancel(&jobs_path["/jobs/".len()..])
            }
            ("POST", "/quitquitquit") => {
                if self.config.allow_quit {
                    self.shutdown.store(true, Ordering::Relaxed);
                    (Response::text(200, "draining, goodbye\n"), no_facts)
                } else {
                    (
                        Response::text(403, "shutdown endpoint disabled (run with --allow-quit)\n"),
                        no_facts,
                    )
                }
            }
            (
                _,
                "/healthz" | "/readyz" | "/metrics" | "/debug/hotspots" | "/simulate" | "/jobs"
                | "/quitquitquit",
            ) => (
                Response::text(405, format!("{} not allowed here\n", request.method)),
                no_facts,
            ),
            (_, jobs_path) if jobs_path.starts_with("/jobs/") => (
                Response::text(405, format!("{} not allowed here\n", request.method)),
                no_facts,
            ),
            (_, path) => (
                Response::text(404, format!("no route for {path}\n")),
                no_facts,
            ),
        }
    }

    /// The shared execution core of `/simulate` and job workers:
    /// cache lookup, (maybe) compile, run under `cancel`.
    fn run_simulation(
        &self,
        parsed: &SimRequest,
        conn: u64,
        cancel: &CancelToken,
        probe: &dyn BatchProbe,
        force_batch: bool,
        request_trace: &mut RequestTrace,
    ) -> Result<SimOutcome, (FailedAt, SimError)> {
        let hash = netlist_hash(&parsed.netlist);
        let key = CacheKey {
            netlist_hash: hash,
            engine: parsed.engine,
            word: parsed.word,
        };
        let lookup = request_trace.phase("serve.cache_lookup", || self.cache.lookup(&key));
        let (mut guard, cache_state) = match lookup {
            Some(fork) => (fork, "hit"),
            None => {
                let compile_clock = Instant::now();
                let start_ns = ns_since(self.telemetry.epoch(), compile_clock);
                let chain: Vec<Engine> = match parsed.engine {
                    // Native opts into the full degradation chain so a
                    // host without a C toolchain still answers (the
                    // fallback is counted, never silent).
                    Some(Engine::Native) => crate::guard::chain_preferring(Some(Engine::Native)),
                    Some(engine) => vec![engine],
                    None => GuardedSimulator::DEFAULT_CHAIN.to_vec(),
                };
                let factory = Box::new(DefaultEngineFactory::with_word(parsed.word));
                // The phase probe forwards compile counters (the
                // native cache's memory_hit/disk_hit/compile among
                // them) into the shared registry and keeps the phase
                // spans for this request's private tree.
                let phase_probe = PhaseProbe::new(self.telemetry.clone());
                let prototype = match GuardedSimulator::with_factory_probed(
                    &parsed.netlist,
                    self.config.limits,
                    &chain,
                    factory,
                    &phase_probe,
                ) {
                    Ok(prototype) => prototype,
                    Err(error) => return Err((FailedAt::Compile, error)),
                };
                let compile_wall_ns =
                    u64::try_from(compile_clock.elapsed().as_nanos()).unwrap_or(u64::MAX);
                // Finished-span attach keeps the shared span stack
                // untouched by handler threads; a cache hit attaches
                // nothing, which is the no-recompile proof.
                self.telemetry.attach_span(SpanNode {
                    name: "serve.compile".to_owned(),
                    start_ns,
                    wall_ns: compile_wall_ns,
                    tid: conn,
                    children: Vec::new(),
                });
                request_trace.push(SpanNode {
                    name: "serve.compile".to_owned(),
                    start_ns,
                    wall_ns: compile_wall_ns,
                    tid: 0,
                    children: phase_probe.into_children(),
                });
                let fork = prototype.fork();
                self.cache.insert(key, prototype);
                (fork, "miss")
            }
        };

        let sim_clock = Instant::now();
        let outputs = parsed.netlist.primary_outputs().to_vec();
        // Hotspot sampling rides the inline single-job loop only: the
        // batch runner owns its own sharded loop, and async jobs are
        // about throughput, not per-request profiles. A daemon without
        // `--hotspots` takes the seed-identical unprofiled path.
        let sample_hotspots = self.hotspots.is_some() && parsed.jobs <= 1 && !force_batch;
        let mut hotspot_profile = sample_hotspots.then(uds_netlist::LevelProfile::default);
        let run = || -> Result<(Vec<Vec<bool>>, usize, Engine), SimError> {
            if parsed.jobs > 1 || force_batch {
                let out = run_batch_cancellable(
                    &parsed.netlist,
                    &guard,
                    &parsed.stimulus,
                    parsed.jobs,
                    None,
                    probe,
                    cancel,
                )?;
                let fallbacks = out.shards.iter().map(|s| s.fallbacks).sum();
                Ok((out.rows, fallbacks, guard.active_engine()))
            } else {
                let mut rows = Vec::with_capacity(parsed.stimulus.len());
                for (done, vector) in parsed.stimulus.iter().enumerate() {
                    if let Some(cause) = cancel.cause() {
                        return Err(SimError::new(
                            SimErrorKind::Cancelled {
                                cause,
                                vectors_done: done,
                            },
                            SimPhase::Run,
                        ));
                    }
                    match &mut hotspot_profile {
                        Some(profile) => guard.simulate_vector_leveled(vector, profile)?,
                        None => guard.simulate_vector(vector)?,
                    };
                    rows.push(outputs.iter().map(|&po| guard.final_value(po)).collect());
                }
                Ok((rows, guard.fallbacks().len(), guard.active_engine()))
            }
        };
        let result = request_trace.phase("serve.simulate", run);
        let (rows, fallbacks, engine) = result.map_err(|error| (FailedAt::Run, error))?;
        let wall_ns = u64::try_from(sim_clock.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.telemetry.record("serve.simulate_wall_ns", wall_ns);
        self.telemetry.add("serve.vectors", rows.len() as u64);
        self.telemetry.add("serve.fallbacks", fallbacks as u64);
        // Feed the rolling window so `/metrics` reports live
        // vectors/sec for this engine/word pair, not just the warmup.
        self.telemetry.record_throughput(
            &engine.to_string(),
            parsed.word.bits(),
            rows.len() as u64,
            wall_ns,
        );
        if let (Some(ring), Some(profile)) = (&self.hotspots, hotspot_profile) {
            ring.lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(HotspotSample {
                    at: Instant::now(),
                    engine,
                    profile,
                    span_ns: wall_ns,
                    vectors: rows.len() as u64,
                });
            self.telemetry.add("serve.hotspot_samples", 1);
        }
        Ok(SimOutcome {
            rows,
            fallbacks,
            engine,
            cache: cache_state,
            hash,
            wall_ns,
        })
    }

    /// Appends the `uds_hotspot_level_self_ns{engine,level}` gauge set
    /// to a rendered `/metrics` body: the hottest
    /// [`HOTSPOT_METRIC_TOP_K`] levels over the default trailing
    /// window. No-op (not even the `# TYPE` header) when sampling is
    /// off, so a default daemon's scrape is byte-identical to before.
    fn append_hotspot_gauges(&self, body: &mut String) {
        let Some(ring) = &self.hotspots else { return };
        let window = ring.lock().unwrap_or_else(|e| e.into_inner()).window(
            Instant::now(),
            Duration::from_secs(HOTSPOT_WINDOW_DEFAULT_S),
        );
        let top = window.top_levels(HOTSPOT_METRIC_TOP_K);
        if top.is_empty() {
            return;
        }
        body.push_str(concat!(
            "# HELP uds_hotspot_level_self_ns Hottest level self-times over the trailing ",
            "sampling window, nanoseconds.\n",
            "# TYPE uds_hotspot_level_self_ns gauge\n",
        ));
        for (engine, level, self_ns) in top {
            body.push_str(&format!(
                "uds_hotspot_level_self_ns{{engine=\"{engine}\",level=\"{level}\"}} {self_ns}\n"
            ));
        }
    }

    /// `GET /debug/hotspots?window_s=S`: the per-engine, per-level
    /// aggregation of every sampled request in the trailing window
    /// (default [`HOTSPOT_WINDOW_DEFAULT_S`]). Before any traffic the
    /// document is empty but valid — same schema, zero samples.
    fn hotspots_get(&self, query: &str) -> Response {
        let Some(ring) = &self.hotspots else {
            return error_response(404, "hotspot sampling disabled (run with --hotspots)");
        };
        let mut window_s = HOTSPOT_WINDOW_DEFAULT_S;
        for pair in query.split('&').filter(|p| !p.is_empty()) {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            match (key, value.parse::<u64>()) {
                ("window_s", Ok(s)) if s > 0 => window_s = s.min(86_400),
                _ => return error_response(400, &format!("bad query parameter `{pair}`")),
            }
        }
        let window = ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .window(Instant::now(), Duration::from_secs(window_s));
        let engines: Vec<Json> = window
            .engines
            .iter()
            .map(|(engine, profile)| {
                let total = profile.total();
                let levels: Vec<Json> = profile
                    .levels
                    .iter()
                    .enumerate()
                    .map(|(level, cost)| {
                        Json::obj([
                            ("level", Json::UInt(level as u64)),
                            ("self_ns", Json::UInt(cost.self_ns)),
                            ("word_ops", Json::UInt(cost.word_ops)),
                            ("gate_evals", Json::UInt(cost.gate_evals)),
                            ("bytes_touched_est", Json::UInt(cost.bytes_touched_est)),
                        ])
                    })
                    .collect();
                Json::obj([
                    ("engine", Json::Str(engine.to_string())),
                    ("levels", Json::Arr(levels)),
                    (
                        "totals",
                        Json::obj([
                            ("self_ns", Json::UInt(total.self_ns)),
                            ("word_ops", Json::UInt(total.word_ops)),
                            ("gate_evals", Json::UInt(total.gate_evals)),
                            ("bytes_touched_est", Json::UInt(total.bytes_touched_est)),
                        ]),
                    ),
                ])
            })
            .collect();
        let mut text = Json::obj([
            ("schema", Json::Str(HOTSPOT_SCHEMA.to_owned())),
            ("window_s", Json::UInt(window_s)),
            ("samples", Json::UInt(window.samples as u64)),
            ("vectors", Json::UInt(window.vectors)),
            ("span_ns", Json::UInt(window.span_ns)),
            ("engines", Json::Arr(engines)),
        ])
        .render();
        text.push('\n');
        Response::json(200, text)
    }

    /// Folds a failed simulation into counters, log facts, and the
    /// HTTP response. A blown per-request deadline is its own story:
    /// 504 plus the partial-work count, not a generic 4xx/5xx.
    fn failure_response(&self, at: FailedAt, error: &SimError, facts: &mut LogFacts) -> Response {
        if let SimErrorKind::Cancelled {
            cause: CancelCause::DeadlineExceeded,
            vectors_done,
        } = &error.kind
        {
            let vectors_done = *vectors_done;
            self.telemetry.add("serve.timeouts", 1);
            self.telemetry
                .add("serve.timeout_vectors_done", vectors_done as u64);
            facts.disposition = Some("timeout");
            facts.vectors_done = Some(vectors_done);
            facts.error = Some(error.to_string());
            return error_response(504, &error.to_string());
        }
        let counter = match at {
            FailedAt::Compile => "serve.compile_errors",
            FailedAt::Run => "serve.simulate_errors",
        };
        self.telemetry.add(counter, 1);
        facts.error = Some(error.to_string());
        error_response(status_for(error.class()), &error.to_string())
    }

    /// `POST /simulate`: parse, check the cache, (maybe) compile, run,
    /// answer. The simulation rows for a given request body are
    /// byte-identical whether the engine came from the cache or a fresh
    /// compile — forks always start from power-up state.
    fn simulate(
        &self,
        request: &Request,
        conn: u64,
        trace: &mut RequestTrace,
    ) -> (Response, LogFacts) {
        let mut facts = LogFacts::default();
        let parsed = match trace.phase("serve.parse", || self.parse_simulate(&request.body)) {
            Ok(parsed) => parsed,
            Err((status, message)) => {
                facts.error = Some(message.clone());
                return (error_response(status, &message), facts);
            }
        };
        facts.circuit = Some(parsed.netlist.name().to_owned());
        facts.netlist_hash = Some(netlist_hash(&parsed.netlist));
        facts.vectors = Some(parsed.stimulus.len());

        let cancel = match self.config.request_timeout {
            Some(deadline) => CancelToken::with_deadline(Instant::now() + deadline),
            None => CancelToken::new(),
        };
        let outcome =
            match self.run_simulation(&parsed, conn, &cancel, &NoopBatchProbe, false, trace) {
                Ok(outcome) => outcome,
                Err((at, error)) => return (self.failure_response(at, &error, &mut facts), facts),
            };
        facts.engine = Some(outcome.engine.to_string());
        facts.fallbacks = Some(outcome.fallbacks);
        facts.cache = Some(outcome.cache);

        let text = trace.phase("serve.serialize", || {
            let body = Json::obj([
                ("schema", Json::Str(SERVE_SCHEMA.to_owned())),
                ("circuit", Json::Str(parsed.netlist.name().to_owned())),
                ("netlist_hash", Json::Str(format!("{:016x}", outcome.hash))),
                ("engine", Json::Str(outcome.engine.to_string())),
                ("word_bits", Json::UInt(u64::from(parsed.word.bits()))),
                ("jobs", Json::UInt(parsed.jobs as u64)),
                ("cache", Json::Str(outcome.cache.to_owned())),
                ("vectors", Json::UInt(outcome.rows.len() as u64)),
                ("fallbacks", Json::UInt(outcome.fallbacks as u64)),
                ("rows", rows_json(&outcome.rows, 0, outcome.rows.len())),
                ("wall_ns", Json::UInt(outcome.wall_ns)),
            ]);
            let mut text = body.render();
            text.push('\n');
            text
        });
        (Response::json(200, text), facts)
    }

    /// `POST /jobs`: parse eagerly (a malformed job fails now, not
    /// asynchronously), register in the bounded table, enqueue on the
    /// same worker queue connections ride.
    fn submit_job(&self, request: &Request, trace: &mut RequestTrace) -> (Response, LogFacts) {
        let mut facts = LogFacts::default();
        let parsed = match trace.phase("serve.parse", || self.parse_simulate(&request.body)) {
            Ok(parsed) => parsed,
            Err((status, message)) => {
                facts.error = Some(message.clone());
                return (error_response(status, &message), facts);
            }
        };
        facts.circuit = Some(parsed.netlist.name().to_owned());
        facts.vectors = Some(parsed.stimulus.len());
        let Some(id) = self.jobs.submit(
            parsed,
            trace.id.clone(),
            self.config.max_jobs,
            self.config.job_ttl,
        ) else {
            self.telemetry.add("serve.shed.jobs_full", 1);
            facts.disposition = Some("shed:jobs_full");
            return (
                Response::text(429, "job table full\n").with_header("Retry-After", "1"),
                facts,
            );
        };
        self.telemetry
            .set_level("serve.jobs.resident", self.jobs.resident() as u64);
        if self.queue.try_push(WorkItem::Job(id)).is_err() {
            // The queue filled between admission and enqueue: undo the
            // registration so the client can resubmit cleanly.
            self.jobs.lock().jobs.remove(&id);
            self.telemetry.add("serve.shed.queue_full", 1);
            facts.disposition = Some("shed:queue_full");
            return (
                Response::text(429, "work queue full\n").with_header("Retry-After", "1"),
                facts,
            );
        }
        self.note_queue_depth();
        self.telemetry.add("serve.jobs.submitted", 1);
        facts.job = Some(id);
        let mut text = Json::obj([
            ("schema", Json::Str(JOB_SCHEMA.to_owned())),
            ("job", Json::UInt(id)),
            ("state", Json::Str("queued".to_owned())),
        ])
        .render();
        text.push('\n');
        (Response::json(202, text), facts)
    }

    /// A queued job, picked up by a worker: run it under the job's
    /// cancellation token, folding heartbeats into the table.
    fn execute_job(&self, id: u64) {
        let Some(job_arc) = self.jobs.get(id) else {
            return;
        };
        let (parsed, cancel, trace_id) = {
            let mut job = job_arc.lock().unwrap_or_else(|e| e.into_inner());
            if job.cancel.is_cancelled() {
                job.state = JobState::Cancelled;
                job.finished = Some(Instant::now());
                self.telemetry.add("serve.jobs.cancelled", 1);
                return;
            }
            job.state = JobState::Running;
            let Some(parsed) = job.request.take() else {
                return;
            };
            (parsed, job.cancel.clone(), job.trace_id.clone())
        };
        let probe = JobProbe { job: &job_arc };
        let clock = Instant::now();
        let mut trace = RequestTrace::new(trace_id, self.telemetry.epoch(), JOB_TRACE_TID + id);
        let result = self.run_simulation(&parsed, 0, &cancel, &probe, true, &mut trace);
        let job_wall_ns = u64::try_from(clock.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.export_trace(trace, "serve.job", clock, job_wall_ns);
        let mut job = job_arc.lock().unwrap_or_else(|e| e.into_inner());
        job.finished = Some(Instant::now());
        match result {
            Ok(outcome) => {
                job.state = JobState::Done;
                job.outcome = Some(outcome);
                self.telemetry.add("serve.jobs.completed", 1);
            }
            Err((_, error)) => {
                if matches!(error.kind, SimErrorKind::Cancelled { .. }) {
                    job.state = JobState::Cancelled;
                    self.telemetry.add("serve.jobs.cancelled", 1);
                } else {
                    job.state = JobState::Failed;
                    job.error = Some((status_for(error.class()), error.to_string()));
                    self.telemetry.add("serve.jobs.failed", 1);
                }
            }
        }
    }

    /// `GET /jobs/:id` (state + progress) and `GET /jobs/:id/result`
    /// (row paging).
    fn job_get(&self, tail: &str, query: &str) -> (Response, LogFacts) {
        let (id_text, want_result) = match tail.strip_suffix("/result") {
            Some(id_text) => (id_text, true),
            None => (tail, false),
        };
        let Ok(id) = id_text.parse::<u64>() else {
            return (
                error_response(404, &format!("no such job `{id_text}`")),
                LogFacts::default(),
            );
        };
        let mut facts = LogFacts {
            job: Some(id),
            ..LogFacts::default()
        };
        let Some(job_arc) = self.jobs.get(id) else {
            return (error_response(404, &format!("no such job {id}")), facts);
        };
        let job = job_arc.lock().unwrap_or_else(|e| e.into_inner());
        if want_result {
            return (job_result_response(id, &job, query), facts);
        }
        let vectors_done: usize = job.progress.values().map(|beat| beat.done).sum();
        facts.vectors_done = Some(vectors_done);
        let progress: Vec<Json> = job
            .progress
            .values()
            .map(|beat| {
                Json::obj([
                    (
                        "schema",
                        Json::Str(crate::progress::PROGRESS_SCHEMA.to_owned()),
                    ),
                    ("shard", Json::UInt(beat.shard as u64)),
                    ("done", Json::UInt(beat.done as u64)),
                    ("total", Json::UInt(beat.total as u64)),
                    ("wall_ns", Json::UInt(beat.wall_ns)),
                    ("engine", Json::Str(beat.engine.to_string())),
                    ("fallbacks", Json::UInt(beat.fallbacks as u64)),
                    ("finished", Json::Bool(beat.finished)),
                ])
            })
            .collect();
        let mut members = vec![
            ("schema".to_owned(), Json::Str(JOB_SCHEMA.to_owned())),
            ("job".to_owned(), Json::UInt(id)),
            ("state".to_owned(), Json::Str(job.state.name().to_owned())),
            ("vectors".to_owned(), Json::UInt(job.vectors_total as u64)),
            ("vectors_done".to_owned(), Json::UInt(vectors_done as u64)),
            ("progress".to_owned(), Json::Arr(progress)),
        ];
        if let Some((_, message)) = &job.error {
            members.push(("error".to_owned(), Json::Str(message.clone())));
        }
        let mut text = Json::Obj(members).render();
        text.push('\n');
        (Response::json(200, text), facts)
    }

    /// `DELETE /jobs/:id`: trip the job's cancellation token. A queued
    /// job cancels before it runs; a running one stops within a vector
    /// per shard; a terminal one just reports its state (idempotence).
    fn job_cancel(&self, tail: &str) -> (Response, LogFacts) {
        let Ok(id) = tail.parse::<u64>() else {
            return (
                error_response(404, &format!("no such job `{tail}`")),
                LogFacts::default(),
            );
        };
        let facts = LogFacts {
            job: Some(id),
            ..LogFacts::default()
        };
        let Some(job_arc) = self.jobs.get(id) else {
            return (error_response(404, &format!("no such job {id}")), facts);
        };
        let job = job_arc.lock().unwrap_or_else(|e| e.into_inner());
        let (status, state) = if job.state.terminal() {
            (200, job.state.name())
        } else {
            job.cancel.cancel();
            (202, "cancelling")
        };
        drop(job);
        let mut text = Json::obj([
            ("schema", Json::Str(JOB_SCHEMA.to_owned())),
            ("job", Json::UInt(id)),
            ("state", Json::Str(state.to_owned())),
        ])
        .render();
        text.push('\n');
        (Response::json(status, text), facts)
    }

    /// Parses a `POST /simulate` body. Errors are `(status, message)`.
    fn parse_simulate(&self, body: &[u8]) -> Result<SimRequest, (u16, String)> {
        let bad = |msg: String| (400u16, msg);
        let text =
            std::str::from_utf8(body).map_err(|_| bad("request body is not UTF-8".to_owned()))?;
        let doc = Json::parse(text).map_err(|e| bad(format!("request body: {e}")))?;
        let bench = doc
            .get("bench")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing string field `bench`".to_owned()))?;
        let name = doc.get("name").and_then(Json::as_str).unwrap_or("request");
        let netlist =
            bench_format::parse(bench, name).map_err(|e| bad(format!("bench netlist: {e}")))?;

        let engine = match doc.get("engine").and_then(Json::as_str) {
            Some(wanted) => Some(
                Engine::parse(wanted).ok_or_else(|| bad(format!("unknown engine `{wanted}`")))?,
            ),
            None => None,
        };
        let word = match doc.get("word").and_then(Json::as_u64) {
            Some(32) => WordWidth::W32,
            Some(64) => WordWidth::W64,
            Some(other) => return Err(bad(format!("`word` must be 32 or 64, not {other}"))),
            None => self.config.default_word,
        };
        let jobs = match doc.get("jobs").and_then(Json::as_u64) {
            Some(0) => return Err(bad("`jobs` must be at least 1".to_owned())),
            Some(n) if n > 256 => return Err(bad("`jobs` is capped at 256".to_owned())),
            Some(n) => n as usize,
            None => self.config.default_jobs,
        };

        let stimulus = match (doc.get("vectors"), doc.get("random")) {
            (Some(explicit), None) => {
                let rows = explicit
                    .as_arr()
                    .ok_or_else(|| bad("`vectors` must be an array of bit arrays".to_owned()))?;
                if rows.len() > self.config.max_vectors {
                    return Err(bad(format!(
                        "{} vectors exceed the per-request cap of {}",
                        rows.len(),
                        self.config.max_vectors
                    )));
                }
                rows.iter()
                    .map(|row| {
                        row.as_arr()
                            .ok_or_else(|| bad("each vector must be a bit array".to_owned()))?
                            .iter()
                            .map(|bit| match bit {
                                Json::UInt(0) => Ok(false),
                                Json::UInt(1) => Ok(true),
                                Json::Bool(b) => Ok(*b),
                                other => {
                                    Err(bad(format!("vector bits must be 0/1, not {other:?}")))
                                }
                            })
                            .collect()
                    })
                    .collect::<Result<Vec<Vec<bool>>, _>>()?
            }
            (None, Some(random)) => {
                let count = random
                    .get("count")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("`random` needs an integer `count`".to_owned()))?;
                if count as usize > self.config.max_vectors {
                    return Err(bad(format!(
                        "{count} vectors exceed the per-request cap of {}",
                        self.config.max_vectors
                    )));
                }
                let seed = random.get("seed").and_then(Json::as_u64).unwrap_or(1990);
                crate::vectors::RandomVectors::new(netlist.primary_inputs().len(), seed)
                    .take(count as usize)
                    .collect()
            }
            (Some(_), Some(_)) => {
                return Err(bad("give `vectors` or `random`, not both".to_owned()))
            }
            (None, None) => {
                return Err(bad(
                    "missing stimulus: give `vectors` (bit arrays) or `random` {count, seed}"
                        .to_owned(),
                ))
            }
        };

        Ok(SimRequest {
            netlist,
            stimulus,
            engine,
            word,
            jobs,
        })
    }

    /// Emits one `uds-reqlog-v1` NDJSON line, best-effort (a dead log
    /// sink must not take the service down).
    fn log_request(
        &self,
        request: Option<&Request>,
        status: u16,
        wall_ns: u64,
        context: RequestContext,
        facts: &LogFacts,
        trace: Option<&RequestTrace>,
    ) {
        let Some(reqlog) = &self.reqlog else { return };
        let mut members = vec![
            ("schema".to_owned(), Json::Str(REQLOG_SCHEMA.to_owned())),
            (
                "method".to_owned(),
                Json::Str(request.map_or("-", |r| r.method.as_str()).to_owned()),
            ),
            (
                "path".to_owned(),
                Json::Str(request.map_or("-", |r| r.path.as_str()).to_owned()),
            ),
            ("status".to_owned(), Json::UInt(u64::from(status))),
            ("wall_ns".to_owned(), Json::UInt(wall_ns)),
            ("connection_id".to_owned(), Json::UInt(context.conn)),
            (
                "requests_on_connection".to_owned(),
                Json::UInt(context.requests_on_connection),
            ),
            (
                "queue_wait_ms".to_owned(),
                Json::UInt(context.queue_wait_ms),
            ),
        ];
        if let Some(disposition) = facts.disposition {
            members.push(("disposition".to_owned(), Json::Str(disposition.to_owned())));
        }
        if let Some(job) = facts.job {
            members.push(("job".to_owned(), Json::UInt(job)));
        }
        if let Some(done) = facts.vectors_done {
            members.push(("vectors_done".to_owned(), Json::UInt(done as u64)));
        }
        if let Some(circuit) = &facts.circuit {
            members.push(("circuit".to_owned(), Json::Str(circuit.clone())));
        }
        if let Some(hash) = facts.netlist_hash {
            members.push(("netlist_hash".to_owned(), Json::Str(format!("{hash:016x}"))));
        }
        if let Some(engine) = &facts.engine {
            members.push(("engine".to_owned(), Json::Str(engine.clone())));
        }
        if let Some(cache) = facts.cache {
            members.push(("cache".to_owned(), Json::Str(cache.to_owned())));
        }
        if let Some(vectors) = facts.vectors {
            members.push(("vectors".to_owned(), Json::UInt(vectors as u64)));
        }
        if let Some(fallbacks) = facts.fallbacks {
            members.push(("fallbacks".to_owned(), Json::UInt(fallbacks as u64)));
        }
        if let Some(error) = &facts.error {
            members.push(("error".to_owned(), Json::Str(error.clone())));
        }
        if let Some(trace) = trace {
            members.push(("trace_id".to_owned(), Json::Str(trace.id.clone())));
            if !trace.phases.is_empty() {
                members.push(("phase_ms".to_owned(), trace.phase_ms()));
            }
        }
        let line = Json::Obj(members).render();
        let mut out = reqlog.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

/// Renders `rows[offset..offset+len]` as an array of bit strings.
fn rows_json(rows: &[Vec<bool>], offset: usize, len: usize) -> Json {
    Json::Arr(
        rows.iter()
            .skip(offset)
            .take(len)
            .map(|row| {
                Json::Str(
                    row.iter()
                        .map(|&b| char::from(b'0' + u8::from(b)))
                        .collect(),
                )
            })
            .collect(),
    )
}

/// `GET /jobs/:id/result`: pages rows of a finished job.
fn job_result_response(id: u64, job: &Job, query: &str) -> Response {
    match job.state {
        JobState::Done => {}
        JobState::Failed => {
            let (status, message) = job.error.clone().unwrap_or((500, "job failed".to_owned()));
            return error_response(status, &message);
        }
        JobState::Cancelled => return error_response(410, &format!("job {id} was cancelled")),
        JobState::Queued | JobState::Running => {
            return error_response(409, &format!("job {id} is still {}", job.state.name()))
        }
    }
    // A done-state job without an outcome is a broken invariant, but
    // one request must not kill the worker thread that answers it —
    // surface it through the failure taxonomy like any other 500.
    let Some(outcome) = job.outcome.as_ref() else {
        return error_response(500, &format!("job {id} is done but recorded no outcome"));
    };
    let mut offset = 0usize;
    let mut limit = 10_000usize;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match (key, value.parse::<usize>()) {
            ("offset", Ok(n)) => offset = n,
            ("limit", Ok(n)) => limit = n.clamp(1, 100_000),
            _ => return error_response(400, &format!("bad query parameter `{pair}`")),
        }
    }
    let total = outcome.rows.len();
    let page_len = limit.min(total.saturating_sub(offset));
    let mut text = Json::obj([
        ("schema", Json::Str(JOB_SCHEMA.to_owned())),
        ("job", Json::UInt(id)),
        ("state", Json::Str("done".to_owned())),
        ("engine", Json::Str(outcome.engine.to_string())),
        ("cache", Json::Str(outcome.cache.to_owned())),
        ("netlist_hash", Json::Str(format!("{:016x}", outcome.hash))),
        ("fallbacks", Json::UInt(outcome.fallbacks as u64)),
        ("wall_ns", Json::UInt(outcome.wall_ns)),
        ("total", Json::UInt(total as u64)),
        ("offset", Json::UInt(offset as u64)),
        ("rows", rows_json(&outcome.rows, offset, page_len)),
        (
            "complete",
            Json::Bool(offset.saturating_add(page_len) >= total),
        ),
    ])
    .render();
    text.push('\n');
    Response::json(200, text)
}

fn error_response(status: u16, message: &str) -> Response {
    let mut text = Json::obj([("error", Json::Str(message.to_owned()))]).render();
    text.push('\n');
    Response::json(status, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, Read};

    const C17: &str = "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
                       10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
                       22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    /// A shared byte sink for capturing the request log.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// One raw HTTP exchange against `addr`; returns (status, body).
    /// The request must carry `Connection: close` (the server keeps
    /// HTTP/1.1 connections alive otherwise and `read_to_string`
    /// would wait out the idle timeout).
    fn exchange(addr: SocketAddr, raw: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        let status: u16 = reply
            .split_whitespace()
            .nth(1)
            .expect("status line")
            .parse()
            .expect("numeric status");
        let body = reply
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        exchange(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
        )
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
        exchange(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    fn delete(addr: SocketAddr, path: &str) -> (u16, String) {
        exchange(
            addr,
            &format!("DELETE {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
        )
    }

    /// Reads exactly one framed response off a keep-alive connection.
    fn read_one_response(reader: &mut BufReader<&TcpStream>) -> (u16, String, String) {
        let mut head = String::new();
        loop {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).unwrap() > 0, "unexpected EOF");
            if line == "\r\n" {
                break;
            }
            head.push_str(&line);
        }
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .expect("status line")
            .parse()
            .unwrap();
        let length: usize = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(str::to_owned)
            })
            .expect("content-length")
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body).unwrap();
        (status, head, String::from_utf8(body).unwrap())
    }

    fn with_server<T>(
        config: ServeConfig,
        telemetry: Telemetry,
        reqlog: Option<Box<dyn Write + Send>>,
        body: impl FnOnce(SocketAddr) -> T,
    ) -> T {
        let server = SimServer::bind("127.0.0.1:0", config, telemetry, reqlog).expect("bind");
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        std::thread::scope(|scope| {
            let runner = scope.spawn(|| server.run().expect("serve"));
            let result = body(addr);
            handle.request();
            runner.join().expect("server thread");
            result
        })
    }

    fn simulate_body(engine: Option<&str>) -> String {
        let engine_field = engine
            .map(|e| format!("\"engine\":\"{e}\","))
            .unwrap_or_default();
        format!(
            "{{\"bench\":{},{engine_field}\"vectors\":[[0,1,0,1,0],[1,1,1,1,1],[0,0,0,0,0]]}}",
            Json::Str(C17.to_owned()).render()
        )
    }

    #[test]
    fn health_ready_metrics_and_unknown_routes() {
        with_server(ServeConfig::default(), Telemetry::new(), None, |addr| {
            assert_eq!(get(addr, "/healthz"), (200, "ok\n".to_owned()));
            assert_eq!(get(addr, "/readyz"), (200, "ready\n".to_owned()));
            let (status, metrics) = get(addr, "/metrics");
            assert_eq!(status, 200);
            assert!(
                metrics.contains("# TYPE uds_serve_in_flight gauge"),
                "{metrics}"
            );
            assert!(
                metrics.contains("# TYPE uds_serve_queue_depth gauge"),
                "{metrics}"
            );
            assert_eq!(get(addr, "/nope").0, 404);
            assert_eq!(post(addr, "/healthz", "x").0, 405);
            assert_eq!(post(addr, "/quitquitquit", "").0, 403, "quit is gated");
        });
    }

    #[test]
    fn done_job_without_outcome_answers_500_not_a_panic() {
        // The invariant break the worker must survive: a job in the
        // done state whose outcome was never recorded.
        let job = Job {
            state: JobState::Done,
            cancel: CancelToken::new(),
            request: None,
            trace_id: "t".to_owned(),
            vectors_total: 0,
            progress: BTreeMap::new(),
            outcome: None,
            error: None,
            finished: None,
        };
        let response = job_result_response(7, &job, "");
        assert_eq!(response.status, 500);
        let body = String::from_utf8(response.body.clone()).unwrap();
        assert!(body.contains("no outcome"), "{body}");
    }

    #[test]
    fn native_engine_request_serves_or_degrades_gracefully() {
        // `engine: "native"` heads the degradation chain instead of
        // being a strict single-engine request: with a C toolchain the
        // answer comes from compiled C, without one an interpreted
        // engine answers — never a 4xx/5xx for a missing compiler.
        with_server(ServeConfig::default(), Telemetry::new(), None, |addr| {
            let (status, body) = post(addr, "/simulate", &simulate_body(Some("native")));
            assert_eq!(status, 200, "{body}");
            let doc = Json::parse(&body).unwrap();
            let engine = doc.get("engine").unwrap().as_str().unwrap().to_owned();
            if crate::native::compiler_available() {
                assert_eq!(engine, "native", "{body}");
            }
            let (_, reference) = post(addr, "/simulate", &simulate_body(None));
            let reference = Json::parse(&reference).unwrap();
            assert_eq!(
                doc.get("rows").unwrap(),
                reference.get("rows").unwrap(),
                "native answers must match the interpreted engines"
            );
        });
    }

    #[test]
    fn simulate_misses_then_hits_with_identical_rows() {
        let telemetry = Telemetry::new();
        let log = Shared::default();
        let (first, second) = with_server(
            ServeConfig::default(),
            telemetry.clone(),
            Some(Box::new(log.clone())),
            |addr| {
                let first = post(addr, "/simulate", &simulate_body(None));
                let second = post(addr, "/simulate", &simulate_body(None));
                (first, second)
            },
        );
        assert_eq!(first.0, 200, "{}", first.1);
        assert_eq!(second.0, 200, "{}", second.1);
        let a = Json::parse(&first.1).unwrap();
        let b = Json::parse(&second.1).unwrap();
        assert_eq!(a.get("cache").unwrap().as_str(), Some("miss"));
        assert_eq!(b.get("cache").unwrap().as_str(), Some("hit"));
        assert_eq!(
            a.get("rows").unwrap(),
            b.get("rows").unwrap(),
            "cached runs are byte-identical"
        );
        assert_eq!(telemetry.counter("cache.hits"), 1);
        assert_eq!(telemetry.counter("cache.misses"), 1);
        assert_eq!(telemetry.counter("serve.vectors"), 6);
        // Exactly one compile span despite two requests: the hit
        // skipped recompilation.
        let report = telemetry.snapshot();
        let compiles = report
            .spans
            .iter()
            .filter(|s| s.name == "serve.compile")
            .count();
        assert_eq!(compiles, 1);
        // The request log carries one line per request, schema-tagged
        // and attributable to its connection.
        let bytes = log.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let doc = Json::parse(line).expect("reqlog line parses");
            assert_eq!(doc.get("schema").unwrap().as_str(), Some(REQLOG_SCHEMA));
            assert_eq!(doc.get("path").unwrap().as_str(), Some("/simulate"));
            assert_eq!(doc.get("status").unwrap().as_u64(), Some(200));
            assert!(doc.get("netlist_hash").is_some());
            assert!(doc.get("connection_id").unwrap().as_u64().unwrap() >= 1);
            assert_eq!(doc.get("requests_on_connection").unwrap().as_u64(), Some(1));
            assert!(doc.get("queue_wait_ms").is_some());
        }
    }

    #[test]
    fn simulate_matches_direct_engine_rows() {
        let (status, body) = with_server(ServeConfig::default(), Telemetry::new(), None, |addr| {
            post(addr, "/simulate", &simulate_body(Some("event-driven")))
        });
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("engine").unwrap().as_str(), Some("event-driven"));
        // Against a directly built engine.
        let nl = bench_format::parse(C17, "request").unwrap();
        let mut sim = crate::build_simulator(&nl, Engine::EventDriven).unwrap();
        let stimulus = [
            [false, true, false, true, false],
            [true, true, true, true, true],
            [false, false, false, false, false],
        ];
        let expected: Vec<String> = stimulus
            .iter()
            .map(|v| {
                sim.simulate_vector(v);
                nl.primary_outputs()
                    .iter()
                    .map(|&po| char::from(b'0' + u8::from(sim.final_value(po))))
                    .collect()
            })
            .collect();
        let rows: Vec<&str> = doc
            .get("rows")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|r| r.as_str().unwrap())
            .collect();
        assert_eq!(rows, expected);
    }

    #[test]
    fn bad_requests_are_client_errors() {
        with_server(ServeConfig::default(), Telemetry::new(), None, |addr| {
            let (status, body) = post(addr, "/simulate", "this is not json");
            assert_eq!(status, 400, "{body}");
            let (status, _) = post(addr, "/simulate", "{\"bench\":\"INPUT(a)\\nbroken\"}");
            assert_eq!(status, 400);
            let wrong_width = format!(
                "{{\"bench\":{},\"vectors\":[[1]]}}",
                Json::Str(C17.to_owned()).render()
            );
            let (status, body) = post(addr, "/simulate", &wrong_width);
            assert_eq!(status, 400, "{body}");
            assert!(body.contains("error"));
        });
    }

    #[test]
    fn quit_endpoint_drains_when_allowed() {
        let config = ServeConfig {
            allow_quit: true,
            ..ServeConfig::default()
        };
        let server = SimServer::bind("127.0.0.1:0", config, Telemetry::new(), None).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::scope(|scope| {
            let runner = scope.spawn(|| server.run().expect("serve"));
            let (status, _) = post(addr, "/quitquitquit", "");
            assert_eq!(status, 200);
            runner.join().expect("run() returns after quit");
        });
    }

    #[test]
    fn batch_requests_match_sequential_requests() {
        let body = format!(
            "{{\"bench\":{},\"random\":{{\"count\":37,\"seed\":7}},\"jobs\":3}}",
            Json::Str(C17.to_owned()).render()
        );
        let sequential = body.replace(",\"jobs\":3", "");
        let (rows_batch, rows_seq) =
            with_server(ServeConfig::default(), Telemetry::new(), None, |addr| {
                let (status, batch) = post(addr, "/simulate", &body);
                assert_eq!(status, 200, "{batch}");
                let (status, seq) = post(addr, "/simulate", &sequential);
                assert_eq!(status, 200, "{seq}");
                (batch, seq)
            });
        let batch = Json::parse(&rows_batch).unwrap();
        let seq = Json::parse(&rows_seq).unwrap();
        assert_eq!(batch.get("jobs").unwrap().as_u64(), Some(3));
        assert_eq!(batch.get("rows").unwrap(), seq.get("rows").unwrap());
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let telemetry = Telemetry::new();
        with_server(ServeConfig::default(), telemetry.clone(), None, |addr| {
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(&stream);
            for round in 1..=3u64 {
                (&stream)
                    .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                    .unwrap();
                let (status, head, body) = read_one_response(&mut reader);
                assert_eq!((status, body.as_str()), (200, "ok\n"), "round {round}");
                assert!(
                    head.to_ascii_lowercase().contains("connection: keep-alive"),
                    "{head}"
                );
            }
            // `Connection: close` is honored: response says close and
            // the server hangs up.
            (&stream)
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
                .unwrap();
            let (status, head, _) = read_one_response(&mut reader);
            assert_eq!(status, 200);
            assert!(
                head.to_ascii_lowercase().contains("connection: close"),
                "{head}"
            );
            let mut rest = String::new();
            reader.read_to_string(&mut rest).unwrap();
            assert!(rest.is_empty(), "clean EOF after close");
        });
        // All four requests rode one connection.
        assert_eq!(telemetry.counter("serve.requests"), 4);
    }

    #[test]
    fn keep_alive_max_closes_the_connection() {
        let config = ServeConfig {
            keep_alive_max: 2,
            ..ServeConfig::default()
        };
        with_server(config, Telemetry::new(), None, |addr| {
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(&stream);
            for _ in 0..2 {
                (&stream)
                    .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                    .unwrap();
            }
            let (_, first_head, _) = read_one_response(&mut reader);
            assert!(first_head.to_ascii_lowercase().contains("keep-alive"));
            let (_, second_head, _) = read_one_response(&mut reader);
            assert!(
                second_head
                    .to_ascii_lowercase()
                    .contains("connection: close"),
                "request keep_alive_max closes: {second_head}"
            );
            let mut rest = String::new();
            reader.read_to_string(&mut rest).unwrap();
            assert!(rest.is_empty());
        });
    }

    #[test]
    fn job_lifecycle_submit_poll_page_matches_simulate() {
        let body = format!(
            "{{\"bench\":{},\"random\":{{\"count\":10,\"seed\":3}}}}",
            Json::Str(C17.to_owned()).render()
        );
        with_server(ServeConfig::default(), Telemetry::new(), None, |addr| {
            let (status, sync_body) = post(addr, "/simulate", &body);
            assert_eq!(status, 200, "{sync_body}");
            let sync = Json::parse(&sync_body).unwrap();

            let (status, submitted) = post(addr, "/jobs", &body);
            assert_eq!(status, 202, "{submitted}");
            let id = Json::parse(&submitted)
                .unwrap()
                .get("job")
                .unwrap()
                .as_u64()
                .unwrap();

            // Poll to completion.
            let deadline = Instant::now() + Duration::from_secs(10);
            let final_state = loop {
                let (status, text) = get(addr, &format!("/jobs/{id}"));
                assert_eq!(status, 200, "{text}");
                let doc = Json::parse(&text).unwrap();
                let state = doc.get("state").unwrap().as_str().unwrap().to_owned();
                if state != "queued" && state != "running" {
                    break state;
                }
                assert!(Instant::now() < deadline, "job never finished");
                std::thread::sleep(Duration::from_millis(5));
            };
            assert_eq!(final_state, "done");

            // Result pages concatenate to the synchronous rows.
            let mut rows: Vec<Json> = Vec::new();
            for offset in [0usize, 6] {
                let (status, text) =
                    get(addr, &format!("/jobs/{id}/result?offset={offset}&limit=6"));
                assert_eq!(status, 200, "{text}");
                let page = Json::parse(&text).unwrap();
                assert_eq!(page.get("total").unwrap().as_u64(), Some(10));
                rows.extend(page.get("rows").unwrap().as_arr().unwrap().iter().cloned());
                if offset == 6 {
                    assert_eq!(page.get("complete"), Some(&Json::Bool(true)));
                }
            }
            assert_eq!(&Json::Arr(rows), sync.get("rows").unwrap());

            // Cancelling a finished job is a no-op that reports state.
            let (status, text) = delete(addr, &format!("/jobs/{id}"));
            assert_eq!(status, 200, "{text}");
            assert_eq!(
                Json::parse(&text).unwrap().get("state").unwrap().as_str(),
                Some("done")
            );

            // Unknown jobs are 404; a running/queued-only endpoint
            // answers 409 before completion (checked via a fresh job
            // against /result on id+1 which does not exist).
            assert_eq!(get(addr, "/jobs/99999").0, 404);
            assert_eq!(get(addr, "/jobs/not-a-number").0, 404);
        });
    }

    #[test]
    fn trace_id_threads_from_header_to_reqlog_and_response() {
        let log = Shared::default();
        let (inbound_head, generated_head) = with_server(
            ServeConfig::default(),
            Telemetry::new(),
            Some(Box::new(log.clone())),
            |addr| {
                // A client-supplied id is echoed verbatim...
                let body = simulate_body(None);
                let stream = TcpStream::connect(addr).unwrap();
                (&stream)
                    .write_all(
                        format!(
                            "POST /simulate HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
                             x-uds-trace-id: req-abc.123\r\nContent-Length: {}\r\n\r\n{body}",
                            body.len()
                        )
                        .as_bytes(),
                    )
                    .unwrap();
                let mut reader = BufReader::new(&stream);
                let (status, inbound_head, _) = read_one_response(&mut reader);
                assert_eq!(status, 200);
                // ...and a request without one gets a generated id.
                let stream = TcpStream::connect(addr).unwrap();
                (&stream)
                    .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
                    .unwrap();
                let mut reader = BufReader::new(&stream);
                let (_, generated_head, _) = read_one_response(&mut reader);
                (inbound_head, generated_head)
            },
        );
        assert!(
            inbound_head
                .to_ascii_lowercase()
                .contains("x-uds-trace-id: req-abc.123"),
            "{inbound_head}"
        );
        let generated = generated_head
            .to_ascii_lowercase()
            .lines()
            .find_map(|l| l.strip_prefix("x-uds-trace-id: ").map(str::to_owned))
            .expect("generated trace id header");
        assert_eq!(generated.trim().len(), 16, "{generated}");

        let bytes = log.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let simulate_line = text
            .lines()
            .map(|l| Json::parse(l).expect("reqlog line parses"))
            .find(|doc| doc.get("path").and_then(Json::as_str) == Some("/simulate"))
            .expect("simulate reqlog line");
        assert_eq!(
            simulate_line.get("trace_id").and_then(Json::as_str),
            Some("req-abc.123")
        );
        // Phases sum to no more than the recorded request time.
        let wall_ns = simulate_line.get("wall_ns").unwrap().as_u64().unwrap();
        let Some(Json::Obj(phases)) = simulate_line.get("phase_ms") else {
            panic!("phase_ms missing: {simulate_line:?}");
        };
        let keys: Vec<&str> = phases.iter().map(|(k, _)| k.as_str()).collect();
        for key in ["parse", "cache_lookup", "compile", "simulate", "serialize"] {
            assert!(keys.contains(&key), "missing phase {key}: {keys:?}");
        }
        let sum_ms: f64 = phases.iter().filter_map(|(_, v)| v.as_f64()).sum();
        assert!(
            sum_ms <= wall_ns as f64 / 1e6,
            "phases ({sum_ms} ms) exceed request wall ({wall_ns} ns)"
        );
    }

    #[test]
    fn debug_hotspots_is_gated_empty_before_traffic_and_populated_after() {
        // Without the opt-in the route does not exist as a data source
        // and /metrics stays free of hotspot gauges.
        with_server(ServeConfig::default(), Telemetry::new(), None, |addr| {
            let (status, body) = get(addr, "/debug/hotspots");
            assert_eq!(status, 404, "{body}");
            assert!(body.contains("--hotspots"), "{body}");
        });

        let config = ServeConfig {
            hotspots: true,
            ..ServeConfig::default()
        };
        with_server(config, Telemetry::new(), None, |addr| {
            // Empty-but-valid before any traffic.
            let (status, body) = get(addr, "/debug/hotspots");
            assert_eq!(status, 200, "{body}");
            let doc = Json::parse(&body).expect("valid JSON");
            assert_eq!(
                doc.get("schema").and_then(Json::as_str),
                Some(HOTSPOT_SCHEMA)
            );
            assert_eq!(doc.get("samples").and_then(Json::as_u64), Some(0));
            assert_eq!(
                doc.get("engines").and_then(Json::as_arr).map(|a| a.len()),
                Some(0)
            );
            assert_eq!(get(addr, "/debug/hotspots?window_s=0").0, 400);
            assert_eq!(get(addr, "/debug/hotspots?nope=1").0, 400);
            assert_eq!(post(addr, "/debug/hotspots", "").0, 405);

            // A simulate request lands one sample in the window.
            let (status, body) = post(addr, "/simulate", &simulate_body(None));
            assert_eq!(status, 200, "{body}");
            let (status, body) = get(addr, "/debug/hotspots?window_s=600");
            assert_eq!(status, 200);
            let doc = Json::parse(&body).expect("valid JSON");
            assert_eq!(doc.get("samples").and_then(Json::as_u64), Some(1));
            assert_eq!(doc.get("vectors").and_then(Json::as_u64), Some(3));
            let engines = doc.get("engines").and_then(Json::as_arr).unwrap();
            assert_eq!(engines.len(), 1, "{body}");
            let levels = engines[0].get("levels").and_then(Json::as_arr).unwrap();
            assert!(levels.len() >= 4, "c17 has levels 0..=3: {body}");
            let attributed: u64 = levels
                .iter()
                .filter_map(|l| l.get("self_ns").and_then(Json::as_u64))
                .sum();
            let span = doc.get("span_ns").and_then(Json::as_u64).unwrap();
            assert!(attributed > 0, "{body}");
            assert!(attributed <= span, "{body}");

            // The top-K gauges ride the same scrape as everything else.
            let (status, metrics) = get(addr, "/metrics");
            assert_eq!(status, 200);
            assert!(
                metrics.contains("# TYPE uds_hotspot_level_self_ns gauge"),
                "{metrics}"
            );
            assert!(
                metrics.contains("uds_hotspot_level_self_ns{engine=\""),
                "{metrics}"
            );
        });
    }

    #[test]
    fn cache_hit_phase_ms_omits_compile() {
        let log = Shared::default();
        with_server(
            ServeConfig::default(),
            Telemetry::new(),
            Some(Box::new(log.clone())),
            |addr| {
                for _ in 0..2 {
                    let (status, body) = post(addr, "/simulate", &simulate_body(None));
                    assert_eq!(status, 200, "{body}");
                }
            },
        );
        let bytes = log.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<Json> = text
            .lines()
            .map(|l| Json::parse(l).expect("reqlog line parses"))
            .filter(|doc| doc.get("path").and_then(Json::as_str) == Some("/simulate"))
            .collect();
        assert_eq!(lines.len(), 2);
        let executed = [
            "queue_wait",
            "parse",
            "cache_lookup",
            "compile",
            "simulate",
            "serialize",
        ];
        for line in &lines {
            let Some(Json::Obj(phases)) = line.get("phase_ms") else {
                panic!("phase_ms missing: {line:?}");
            };
            // Keys ⊆ the executed-phase universe, never a fixed schema.
            for (key, _) in phases {
                assert!(executed.contains(&key.as_str()), "unknown phase {key}");
            }
        }
        let hit = lines
            .iter()
            .find(|l| l.get("cache").and_then(Json::as_str) == Some("hit"))
            .expect("second request hits the prototype cache");
        let Some(Json::Obj(phases)) = hit.get("phase_ms") else {
            panic!("phase_ms missing on the cache hit");
        };
        assert!(
            phases.iter().all(|(key, _)| key != "compile"),
            "a cache hit must not report a compile phase: {phases:?}"
        );
    }

    #[test]
    fn trace_sink_streams_loadable_chrome_trace() {
        let sink = Shared::default();
        let config = ServeConfig {
            allow_quit: true,
            ..ServeConfig::default()
        };
        let mut server = SimServer::bind("127.0.0.1:0", config, Telemetry::new(), None).unwrap();
        server.set_trace(Box::new(sink.clone()));
        let addr = server.local_addr().unwrap();
        std::thread::scope(|scope| {
            let runner = scope.spawn(|| server.run().expect("serve"));
            let (status, body) = post(addr, "/simulate", &simulate_body(None));
            assert_eq!(status, 200, "{body}");
            let (status, _) = post(addr, "/quitquitquit", "");
            assert_eq!(status, 200);
            runner.join().expect("server thread");
        });
        let bytes = sink.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let doc = Json::parse(&text).expect("trace document parses after close");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let request_root = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("serve.request"))
            .expect("serve.request root span");
        let trace_id = request_root
            .get("args")
            .and_then(|a| a.get("trace_id"))
            .and_then(Json::as_str)
            .expect("trace id stamped on the root");
        assert!(!trace_id.is_empty());
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        for name in ["serve.parse", "serve.cache_lookup", "serve.simulate"] {
            assert!(names.contains(&name), "missing {name}: {names:?}");
        }
        // Phase children ride the root's timeline lane.
        let tid = request_root.get("tid").and_then(Json::as_u64).unwrap();
        let parse = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("serve.parse"))
            .unwrap();
        assert_eq!(parse.get("tid").and_then(Json::as_u64), Some(tid));
    }

    #[test]
    fn live_traffic_feeds_the_rolling_throughput_gauge() {
        let telemetry = Telemetry::new();
        with_server(ServeConfig::default(), telemetry.clone(), None, |addr| {
            let (status, body) = post(addr, "/simulate", &simulate_body(None));
            assert_eq!(status, 200, "{body}");
            let (status, metrics) = get(addr, "/metrics");
            assert_eq!(status, 200);
            let sample = metrics
                .lines()
                .find(|l| l.starts_with("uds_engine_vectors_per_s{"))
                .expect("rolling throughput gauge after traffic");
            assert!(sample.contains("engine=\""), "{sample}");
            assert!(sample.contains("word=\""), "{sample}");
            let value: f64 = sample.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value > 0.0, "{sample}");
        });
    }

    #[test]
    fn rate_limit_sheds_burst_with_retry_after() {
        let config = ServeConfig {
            rate_limit_per_s: 1, // burst of 2
            ..ServeConfig::default()
        };
        let telemetry = Telemetry::new();
        with_server(config, telemetry.clone(), None, |addr| {
            let codes: Vec<u16> = (0..4)
                .map(|_| post(addr, "/simulate", &simulate_body(None)).0)
                .collect();
            assert_eq!(&codes[..2], &[200, 200], "burst admits");
            assert!(codes[2..].contains(&429), "{codes:?}");
            // Read-only endpoints are never rate limited.
            assert_eq!(get(addr, "/healthz").0, 200);
        });
        assert!(telemetry.counter("serve.shed.rate_limited") >= 1);
    }
}
