//! The resident simulation daemon behind `udsim serve`.
//!
//! Every other entry point in the workspace is a one-shot run: parse,
//! compile, simulate, exit — the compiled artifact dies with the
//! process. [`SimServer`] keeps it alive: a long-running HTTP service
//! (on the hand-rolled [`crate::http`] core) that compiles once per
//! distinct circuit, caches the compiled prototype in an
//! [`EngineCache`], and serves every later request with a fork — the
//! compiled-reuse payoff the paper's straight-line code exists for.
//!
//! Endpoints:
//!
//! | Route                | Answer |
//! |----------------------|--------|
//! | `POST /simulate`     | run a netlist + vector batch, JSON reply (`uds-serve-v1`) |
//! | `GET /metrics`       | live telemetry in Prometheus text exposition |
//! | `GET /healthz`       | liveness: `200 ok` while the process can answer at all |
//! | `GET /readyz`        | readiness: `200 ready` while accepting work, `503 draining` during shutdown |
//! | `POST /quitquitquit` | graceful shutdown (only with [`ServeConfig::allow_quit`]) |
//!
//! Every request emits one `uds-reqlog-v1` NDJSON line to the optional
//! request-log sink. Shutdown — SIGTERM/SIGINT (via
//! [`install_signal_handlers`]) or `/quitquitquit` — stops accepting,
//! drains in-flight connections, and returns from [`SimServer::run`] so
//! the caller can flush a final telemetry snapshot.
//!
//! Telemetry: the daemon never opens spans on the shared registry
//! (handler threads would interleave one span stack); compile times are
//! attached as finished `serve.compile` spans with the connection id as
//! their timeline lane. A cache hit therefore leaves *no* compile span
//! — the observable proof that recompilation was skipped.

// SimError is large but cold; see guard.rs.
#![allow(clippy::result_large_err)]

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use uds_netlist::{bench_format, Netlist, ResourceLimits};

use crate::cache::{netlist_hash, CacheKey, EngineCache};
use crate::error::{FailureClass, SimError};
use crate::guard::{DefaultEngineFactory, GuardedSimulator};
use crate::http::{read_request, Request, Response};
use crate::telemetry::json::Json;
use crate::telemetry::{prom, SpanNode, Telemetry};
use crate::{run_batch, Engine, WordWidth};

/// Schema tag on every request-log line.
pub const REQLOG_SCHEMA: &str = "uds-reqlog-v1";

/// Schema tag on every `POST /simulate` response.
pub const SERVE_SCHEMA: &str = "uds-serve-v1";

/// Signal-handler flag: SIGTERM/SIGINT land here (a handler may only
/// do an atomic store), and every running server polls it.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// `true` once SIGTERM or SIGINT was received (after
/// [`install_signal_handlers`]).
pub fn signal_shutdown_requested() -> bool {
    SIGNAL_SHUTDOWN.load(Ordering::Relaxed)
}

/// Routes SIGTERM and SIGINT into a graceful drain. Hand-rolled
/// against libc's `signal` (std links libc on unix already); the
/// handler is async-signal-safe — one relaxed store.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        SIGNAL_SHUTDOWN.store(true, Ordering::Relaxed);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// No signals to install off unix; `/quitquitquit` still drains.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// Tuning knobs for a [`SimServer`].
#[derive(Debug)]
pub struct ServeConfig {
    /// Compiled prototypes kept resident (LRU beyond this).
    pub cache_capacity: usize,
    /// Whether `POST /quitquitquit` is honored (else 403).
    pub allow_quit: bool,
    /// Compile budget enforced per request — untrusted input.
    pub limits: ResourceLimits,
    /// Word width when a request names none.
    pub default_word: WordWidth,
    /// Worker threads per request when a request names none.
    pub default_jobs: usize,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: u64,
    /// Largest accepted vector batch per request.
    pub max_vectors: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache_capacity: 64,
            allow_quit: false,
            limits: ResourceLimits::production(),
            default_word: WordWidth::default(),
            default_jobs: 1,
            max_body_bytes: 16 << 20,
            max_vectors: 1 << 20,
        }
    }
}

/// The HTTP status a [`SimError`] answers with: bad requests are the
/// client's fault (4xx), contained engine failures are ours (5xx).
fn status_for(class: FailureClass) -> u16 {
    match class {
        FailureClass::Usage | FailureClass::Parse => 400,
        FailureClass::Structural | FailureClass::Budget => 422,
        _ => 500,
    }
}

/// One parsed `POST /simulate` body.
struct SimRequest {
    netlist: Netlist,
    stimulus: Vec<Vec<bool>>,
    engine: Option<Engine>,
    word: WordWidth,
    jobs: usize,
}

/// Fields a handler contributes to its request-log line.
#[derive(Default)]
struct LogFacts {
    circuit: Option<String>,
    netlist_hash: Option<u64>,
    engine: Option<String>,
    cache: Option<&'static str>,
    vectors: Option<usize>,
    fallbacks: Option<usize>,
    error: Option<String>,
}

/// A long-running simulation service bound to one listener.
pub struct SimServer {
    listener: TcpListener,
    config: ServeConfig,
    telemetry: Telemetry,
    cache: EngineCache,
    shutdown: Arc<AtomicBool>,
    reqlog: Option<Mutex<Box<dyn Write + Send>>>,
    connections: AtomicU64,
    in_flight: AtomicU64,
}

/// A clonable handle that asks a running server to drain and stop.
#[derive(Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests a graceful drain; [`SimServer::run`] returns once every
    /// in-flight request finished.
    pub fn request(&self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

impl SimServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// prepares the service. Counters, the cache, and build facts all
    /// report into `telemetry`; `reqlog`, when given, receives one
    /// NDJSON line per request.
    ///
    /// # Errors
    ///
    /// Bind failures pass through.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServeConfig,
        telemetry: Telemetry,
        reqlog: Option<Box<dyn Write + Send>>,
    ) -> std::io::Result<SimServer> {
        let listener = TcpListener::bind(addr)?;
        let cache = EngineCache::new(config.cache_capacity, telemetry.clone());
        telemetry.set_level("serve.in_flight", 0);
        Ok(SimServer {
            listener,
            config,
            telemetry,
            cache,
            shutdown: Arc::new(AtomicBool::new(false)),
            reqlog: reqlog.map(Mutex::new),
            connections: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
        })
    }

    /// The bound address (the real port when bound to `:0`).
    ///
    /// # Errors
    ///
    /// Socket introspection failures pass through.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that triggers a graceful drain from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || signal_shutdown_requested()
    }

    /// Serves until shutdown is requested (handle, `/quitquitquit`, or
    /// a signal), then stops accepting and drains in-flight requests
    /// before returning. The caller owns the final telemetry snapshot.
    ///
    /// # Errors
    ///
    /// Only listener-level failures (the nonblocking switch); per-
    /// connection errors are answered, logged, and counted instead.
    pub fn run(&self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            while !self.draining() {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        scope.spawn(move || self.handle_connection(stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => {
                        self.telemetry.add("serve.accept_errors", 1);
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            }
            // Scope exit joins every handler: the drain barrier.
        });
        Ok(())
    }

    fn handle_connection(&self, stream: TcpStream) {
        let conn = self.connections.fetch_add(1, Ordering::Relaxed) + 1;
        let level = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.telemetry.set_level("serve.in_flight", level);
        let clock = Instant::now();
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));

        let mut reader = BufReader::new(&stream);
        let (request, response, facts) = match read_request(&mut reader, self.config.max_body_bytes)
        {
            Ok(request) => {
                let (response, facts) = self.route(&request, conn);
                (Some(request), response, facts)
            }
            Err(error) => (
                None,
                Response::text(error.status(), format!("{error}\n")),
                LogFacts {
                    error: Some(error.to_string()),
                    ..LogFacts::default()
                },
            ),
        };
        let mut out = &stream;
        let _ = response.write_to(&mut out);

        self.telemetry.add("serve.requests", 1);
        if response.status >= 400 {
            self.telemetry.add("serve.http_errors", 1);
        }
        let wall_ns = u64::try_from(clock.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.log_request(request.as_ref(), response.status, wall_ns, &facts);
        let level = self.in_flight.fetch_sub(1, Ordering::Relaxed) - 1;
        self.telemetry.set_level("serve.in_flight", level);
    }

    fn route(&self, request: &Request, conn: u64) -> (Response, LogFacts) {
        let no_facts = LogFacts::default();
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => (Response::text(200, "ok\n"), no_facts),
            ("GET", "/readyz") => {
                if self.draining() {
                    (Response::text(503, "draining\n"), no_facts)
                } else {
                    (Response::text(200, "ready\n"), no_facts)
                }
            }
            ("GET", "/metrics") => {
                let body = prom::render(&self.telemetry.snapshot());
                (
                    Response {
                        status: 200,
                        content_type: prom::CONTENT_TYPE,
                        body: body.into_bytes(),
                    },
                    no_facts,
                )
            }
            ("POST", "/simulate") => self.simulate(request, conn),
            ("POST", "/quitquitquit") => {
                if self.config.allow_quit {
                    self.shutdown.store(true, Ordering::Relaxed);
                    (Response::text(200, "draining, goodbye\n"), no_facts)
                } else {
                    (
                        Response::text(403, "shutdown endpoint disabled (run with --allow-quit)\n"),
                        no_facts,
                    )
                }
            }
            (_, "/healthz" | "/readyz" | "/metrics" | "/simulate" | "/quitquitquit") => (
                Response::text(405, format!("{} not allowed here\n", request.method)),
                no_facts,
            ),
            (_, path) => (
                Response::text(404, format!("no route for {path}\n")),
                no_facts,
            ),
        }
    }

    /// `POST /simulate`: parse, check the cache, (maybe) compile, run,
    /// answer. The simulation rows for a given request body are
    /// byte-identical whether the engine came from the cache or a fresh
    /// compile — forks always start from power-up state.
    fn simulate(&self, request: &Request, conn: u64) -> (Response, LogFacts) {
        let mut facts = LogFacts::default();
        let parsed = match self.parse_simulate(&request.body) {
            Ok(parsed) => parsed,
            Err((status, message)) => {
                facts.error = Some(message.clone());
                return (error_response(status, &message), facts);
            }
        };
        let hash = netlist_hash(&parsed.netlist);
        facts.circuit = Some(parsed.netlist.name().to_owned());
        facts.netlist_hash = Some(hash);
        facts.vectors = Some(parsed.stimulus.len());
        let key = CacheKey {
            netlist_hash: hash,
            engine: parsed.engine,
            word: parsed.word,
        };

        let (mut guard, cache_state) = match self.cache.lookup(&key) {
            Some(fork) => (fork, "hit"),
            None => {
                let compile_clock = Instant::now();
                let start_ns = u64::try_from(
                    compile_clock
                        .saturating_duration_since(self.telemetry.epoch())
                        .as_nanos(),
                )
                .unwrap_or(u64::MAX);
                let chain: Vec<Engine> = match parsed.engine {
                    Some(engine) => vec![engine],
                    None => GuardedSimulator::DEFAULT_CHAIN.to_vec(),
                };
                let factory = Box::new(DefaultEngineFactory::with_word(parsed.word));
                let prototype = match GuardedSimulator::with_factory(
                    &parsed.netlist,
                    self.config.limits,
                    &chain,
                    factory,
                ) {
                    Ok(prototype) => prototype,
                    Err(error) => {
                        let status = status_for(error.class());
                        let message = error.to_string();
                        facts.error = Some(message.clone());
                        self.telemetry.add("serve.compile_errors", 1);
                        return (error_response(status, &message), facts);
                    }
                };
                // Finished-span attach keeps the shared span stack
                // untouched by handler threads; a cache hit attaches
                // nothing, which is the no-recompile proof.
                self.telemetry.attach_span(SpanNode {
                    name: "serve.compile".to_owned(),
                    start_ns,
                    wall_ns: u64::try_from(compile_clock.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    tid: conn,
                    children: Vec::new(),
                });
                let fork = prototype.fork();
                self.cache.insert(key, prototype);
                (fork, "miss")
            }
        };
        facts.cache = Some(cache_state);

        let sim_clock = Instant::now();
        let outputs = parsed.netlist.primary_outputs().to_vec();
        let mut run = || -> Result<(Vec<Vec<bool>>, usize, Engine), SimError> {
            if parsed.jobs > 1 {
                let out = run_batch(&parsed.netlist, &guard, &parsed.stimulus, parsed.jobs, None)?;
                let fallbacks = out.shards.iter().map(|s| s.fallbacks).sum();
                Ok((out.rows, fallbacks, guard.active_engine()))
            } else {
                let mut rows = Vec::with_capacity(parsed.stimulus.len());
                for vector in &parsed.stimulus {
                    guard.simulate_vector(vector)?;
                    rows.push(outputs.iter().map(|&po| guard.final_value(po)).collect());
                }
                Ok((rows, guard.fallbacks().len(), guard.active_engine()))
            }
        };
        let (rows, fallbacks, engine) = match run() {
            Ok(done) => done,
            Err(error) => {
                let status = status_for(error.class());
                let message = error.to_string();
                facts.error = Some(message.clone());
                self.telemetry.add("serve.simulate_errors", 1);
                return (error_response(status, &message), facts);
            }
        };
        let wall_ns = u64::try_from(sim_clock.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.telemetry.record("serve.simulate_wall_ns", wall_ns);
        self.telemetry.add("serve.vectors", rows.len() as u64);
        self.telemetry.add("serve.fallbacks", fallbacks as u64);
        facts.engine = Some(engine.to_string());
        facts.fallbacks = Some(fallbacks);

        let row_strings: Vec<Json> = rows
            .iter()
            .map(|row| {
                Json::Str(
                    row.iter()
                        .map(|&b| char::from(b'0' + u8::from(b)))
                        .collect(),
                )
            })
            .collect();
        let body = Json::obj([
            ("schema", Json::Str(SERVE_SCHEMA.to_owned())),
            ("circuit", Json::Str(parsed.netlist.name().to_owned())),
            ("netlist_hash", Json::Str(format!("{hash:016x}"))),
            ("engine", Json::Str(engine.to_string())),
            ("word_bits", Json::UInt(u64::from(parsed.word.bits()))),
            ("jobs", Json::UInt(parsed.jobs as u64)),
            ("cache", Json::Str(cache_state.to_owned())),
            ("vectors", Json::UInt(rows.len() as u64)),
            ("fallbacks", Json::UInt(fallbacks as u64)),
            ("rows", Json::Arr(row_strings)),
            ("wall_ns", Json::UInt(wall_ns)),
        ]);
        let mut text = body.render();
        text.push('\n');
        (Response::json(200, text), facts)
    }

    /// Parses a `POST /simulate` body. Errors are `(status, message)`.
    fn parse_simulate(&self, body: &[u8]) -> Result<SimRequest, (u16, String)> {
        let bad = |msg: String| (400u16, msg);
        let text =
            std::str::from_utf8(body).map_err(|_| bad("request body is not UTF-8".to_owned()))?;
        let doc = Json::parse(text).map_err(|e| bad(format!("request body: {e}")))?;
        let bench = doc
            .get("bench")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing string field `bench`".to_owned()))?;
        let name = doc.get("name").and_then(Json::as_str).unwrap_or("request");
        let netlist =
            bench_format::parse(bench, name).map_err(|e| bad(format!("bench netlist: {e}")))?;

        let engine = match doc.get("engine").and_then(Json::as_str) {
            Some(wanted) => Some(
                Engine::ALL
                    .into_iter()
                    .find(|e| e.to_string() == wanted)
                    .ok_or_else(|| bad(format!("unknown engine `{wanted}`")))?,
            ),
            None => None,
        };
        let word = match doc.get("word").and_then(Json::as_u64) {
            Some(32) => WordWidth::W32,
            Some(64) => WordWidth::W64,
            Some(other) => return Err(bad(format!("`word` must be 32 or 64, not {other}"))),
            None => self.config.default_word,
        };
        let jobs = match doc.get("jobs").and_then(Json::as_u64) {
            Some(0) => return Err(bad("`jobs` must be at least 1".to_owned())),
            Some(n) if n > 256 => return Err(bad("`jobs` is capped at 256".to_owned())),
            Some(n) => n as usize,
            None => self.config.default_jobs,
        };

        let stimulus = match (doc.get("vectors"), doc.get("random")) {
            (Some(explicit), None) => {
                let rows = explicit
                    .as_arr()
                    .ok_or_else(|| bad("`vectors` must be an array of bit arrays".to_owned()))?;
                if rows.len() > self.config.max_vectors {
                    return Err(bad(format!(
                        "{} vectors exceed the per-request cap of {}",
                        rows.len(),
                        self.config.max_vectors
                    )));
                }
                rows.iter()
                    .map(|row| {
                        row.as_arr()
                            .ok_or_else(|| bad("each vector must be a bit array".to_owned()))?
                            .iter()
                            .map(|bit| match bit {
                                Json::UInt(0) => Ok(false),
                                Json::UInt(1) => Ok(true),
                                Json::Bool(b) => Ok(*b),
                                other => {
                                    Err(bad(format!("vector bits must be 0/1, not {other:?}")))
                                }
                            })
                            .collect()
                    })
                    .collect::<Result<Vec<Vec<bool>>, _>>()?
            }
            (None, Some(random)) => {
                let count = random
                    .get("count")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("`random` needs an integer `count`".to_owned()))?;
                if count as usize > self.config.max_vectors {
                    return Err(bad(format!(
                        "{count} vectors exceed the per-request cap of {}",
                        self.config.max_vectors
                    )));
                }
                let seed = random.get("seed").and_then(Json::as_u64).unwrap_or(1990);
                crate::vectors::RandomVectors::new(netlist.primary_inputs().len(), seed)
                    .take(count as usize)
                    .collect()
            }
            (Some(_), Some(_)) => {
                return Err(bad("give `vectors` or `random`, not both".to_owned()))
            }
            (None, None) => {
                return Err(bad(
                    "missing stimulus: give `vectors` (bit arrays) or `random` {count, seed}"
                        .to_owned(),
                ))
            }
        };

        Ok(SimRequest {
            netlist,
            stimulus,
            engine,
            word,
            jobs,
        })
    }

    /// Emits one `uds-reqlog-v1` NDJSON line, best-effort (a dead log
    /// sink must not take the service down).
    fn log_request(&self, request: Option<&Request>, status: u16, wall_ns: u64, facts: &LogFacts) {
        let Some(reqlog) = &self.reqlog else { return };
        let mut members = vec![
            ("schema".to_owned(), Json::Str(REQLOG_SCHEMA.to_owned())),
            (
                "method".to_owned(),
                Json::Str(request.map_or("-", |r| r.method.as_str()).to_owned()),
            ),
            (
                "path".to_owned(),
                Json::Str(request.map_or("-", |r| r.path.as_str()).to_owned()),
            ),
            ("status".to_owned(), Json::UInt(u64::from(status))),
            ("wall_ns".to_owned(), Json::UInt(wall_ns)),
        ];
        if let Some(circuit) = &facts.circuit {
            members.push(("circuit".to_owned(), Json::Str(circuit.clone())));
        }
        if let Some(hash) = facts.netlist_hash {
            members.push(("netlist_hash".to_owned(), Json::Str(format!("{hash:016x}"))));
        }
        if let Some(engine) = &facts.engine {
            members.push(("engine".to_owned(), Json::Str(engine.clone())));
        }
        if let Some(cache) = facts.cache {
            members.push(("cache".to_owned(), Json::Str(cache.to_owned())));
        }
        if let Some(vectors) = facts.vectors {
            members.push(("vectors".to_owned(), Json::UInt(vectors as u64)));
        }
        if let Some(fallbacks) = facts.fallbacks {
            members.push(("fallbacks".to_owned(), Json::UInt(fallbacks as u64)));
        }
        if let Some(error) = &facts.error {
            members.push(("error".to_owned(), Json::Str(error.clone())));
        }
        let line = Json::Obj(members).render();
        let mut out = reqlog.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

fn error_response(status: u16, message: &str) -> Response {
    let mut text = Json::obj([("error", Json::Str(message.to_owned()))]).render();
    text.push('\n');
    Response::json(status, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    const C17: &str = "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
                       10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
                       22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    /// A shared byte sink for capturing the request log.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// One raw HTTP exchange against `addr`; returns (status, body).
    fn exchange(addr: SocketAddr, raw: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        let status: u16 = reply
            .split_whitespace()
            .nth(1)
            .expect("status line")
            .parse()
            .expect("numeric status");
        let body = reply
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        exchange(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
        exchange(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    fn with_server<T>(
        config: ServeConfig,
        telemetry: Telemetry,
        reqlog: Option<Box<dyn Write + Send>>,
        body: impl FnOnce(SocketAddr) -> T,
    ) -> T {
        let server = SimServer::bind("127.0.0.1:0", config, telemetry, reqlog).expect("bind");
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        std::thread::scope(|scope| {
            let runner = scope.spawn(|| server.run().expect("serve"));
            let result = body(addr);
            handle.request();
            runner.join().expect("server thread");
            result
        })
    }

    fn simulate_body(engine: Option<&str>) -> String {
        let engine_field = engine
            .map(|e| format!("\"engine\":\"{e}\","))
            .unwrap_or_default();
        format!(
            "{{\"bench\":{},{engine_field}\"vectors\":[[0,1,0,1,0],[1,1,1,1,1],[0,0,0,0,0]]}}",
            Json::Str(C17.to_owned()).render()
        )
    }

    #[test]
    fn health_ready_metrics_and_unknown_routes() {
        with_server(ServeConfig::default(), Telemetry::new(), None, |addr| {
            assert_eq!(get(addr, "/healthz"), (200, "ok\n".to_owned()));
            assert_eq!(get(addr, "/readyz"), (200, "ready\n".to_owned()));
            let (status, metrics) = get(addr, "/metrics");
            assert_eq!(status, 200);
            assert!(
                metrics.contains("# TYPE uds_serve_in_flight gauge"),
                "{metrics}"
            );
            assert_eq!(get(addr, "/nope").0, 404);
            assert_eq!(post(addr, "/healthz", "x").0, 405);
            assert_eq!(post(addr, "/quitquitquit", "").0, 403, "quit is gated");
        });
    }

    #[test]
    fn simulate_misses_then_hits_with_identical_rows() {
        let telemetry = Telemetry::new();
        let log = Shared::default();
        let (first, second) = with_server(
            ServeConfig::default(),
            telemetry.clone(),
            Some(Box::new(log.clone())),
            |addr| {
                let first = post(addr, "/simulate", &simulate_body(None));
                let second = post(addr, "/simulate", &simulate_body(None));
                (first, second)
            },
        );
        assert_eq!(first.0, 200, "{}", first.1);
        assert_eq!(second.0, 200, "{}", second.1);
        let a = Json::parse(&first.1).unwrap();
        let b = Json::parse(&second.1).unwrap();
        assert_eq!(a.get("cache").unwrap().as_str(), Some("miss"));
        assert_eq!(b.get("cache").unwrap().as_str(), Some("hit"));
        assert_eq!(
            a.get("rows").unwrap(),
            b.get("rows").unwrap(),
            "cached runs are byte-identical"
        );
        assert_eq!(telemetry.counter("cache.hits"), 1);
        assert_eq!(telemetry.counter("cache.misses"), 1);
        assert_eq!(telemetry.counter("serve.vectors"), 6);
        // Exactly one compile span despite two requests: the hit
        // skipped recompilation.
        let report = telemetry.snapshot();
        let compiles = report
            .spans
            .iter()
            .filter(|s| s.name == "serve.compile")
            .count();
        assert_eq!(compiles, 1);
        // The request log carries one line per request, schema-tagged.
        let bytes = log.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let doc = Json::parse(line).expect("reqlog line parses");
            assert_eq!(doc.get("schema").unwrap().as_str(), Some(REQLOG_SCHEMA));
            assert_eq!(doc.get("path").unwrap().as_str(), Some("/simulate"));
            assert_eq!(doc.get("status").unwrap().as_u64(), Some(200));
            assert!(doc.get("netlist_hash").is_some());
        }
    }

    #[test]
    fn simulate_matches_direct_engine_rows() {
        let (status, body) = with_server(ServeConfig::default(), Telemetry::new(), None, |addr| {
            post(addr, "/simulate", &simulate_body(Some("event-driven")))
        });
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("engine").unwrap().as_str(), Some("event-driven"));
        // Against a directly built engine.
        let nl = bench_format::parse(C17, "request").unwrap();
        let mut sim = crate::build_simulator(&nl, Engine::EventDriven).unwrap();
        let stimulus = [
            [false, true, false, true, false],
            [true, true, true, true, true],
            [false, false, false, false, false],
        ];
        let expected: Vec<String> = stimulus
            .iter()
            .map(|v| {
                sim.simulate_vector(v);
                nl.primary_outputs()
                    .iter()
                    .map(|&po| char::from(b'0' + u8::from(sim.final_value(po))))
                    .collect()
            })
            .collect();
        let rows: Vec<&str> = doc
            .get("rows")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|r| r.as_str().unwrap())
            .collect();
        assert_eq!(rows, expected);
    }

    #[test]
    fn bad_requests_are_client_errors() {
        with_server(ServeConfig::default(), Telemetry::new(), None, |addr| {
            let (status, body) = post(addr, "/simulate", "this is not json");
            assert_eq!(status, 400, "{body}");
            let (status, _) = post(addr, "/simulate", "{\"bench\":\"INPUT(a)\\nbroken\"}");
            assert_eq!(status, 400);
            let wrong_width = format!(
                "{{\"bench\":{},\"vectors\":[[1]]}}",
                Json::Str(C17.to_owned()).render()
            );
            let (status, body) = post(addr, "/simulate", &wrong_width);
            assert_eq!(status, 400, "{body}");
            assert!(body.contains("error"));
        });
    }

    #[test]
    fn quit_endpoint_drains_when_allowed() {
        let config = ServeConfig {
            allow_quit: true,
            ..ServeConfig::default()
        };
        let server = SimServer::bind("127.0.0.1:0", config, Telemetry::new(), None).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::scope(|scope| {
            let runner = scope.spawn(|| server.run().expect("serve"));
            let (status, _) = post(addr, "/quitquitquit", "");
            assert_eq!(status, 200);
            runner.join().expect("run() returns after quit");
        });
    }

    #[test]
    fn batch_requests_match_sequential_requests() {
        let body = format!(
            "{{\"bench\":{},\"random\":{{\"count\":37,\"seed\":7}},\"jobs\":3}}",
            Json::Str(C17.to_owned()).render()
        );
        let sequential = body.replace(",\"jobs\":3", "");
        let (rows_batch, rows_seq) =
            with_server(ServeConfig::default(), Telemetry::new(), None, |addr| {
                let (status, batch) = post(addr, "/simulate", &body);
                assert_eq!(status, 200, "{batch}");
                let (status, seq) = post(addr, "/simulate", &sequential);
                assert_eq!(status, 200, "{seq}");
                (batch, seq)
            });
        let batch = Json::parse(&rows_batch).unwrap();
        let seq = Json::parse(&rows_seq).unwrap();
        assert_eq!(batch.get("jobs").unwrap().as_u64(), Some(3));
        assert_eq!(batch.get("rows").unwrap(), seq.get("rows").unwrap());
    }
}
