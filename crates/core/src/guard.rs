//! Guarded execution: budget-enforced compilation, panic containment,
//! and graceful degradation across a chain of engines.
//!
//! The compiled techniques are the fast path; the interpreted
//! event-driven baseline is the robust one. [`GuardedSimulator`] runs
//! the fastest engine that fits a [`ResourceLimits`] budget and falls
//! back down [`GuardedSimulator::DEFAULT_CHAIN`] whenever an engine
//! fails to compile, blows its budget, or panics mid-run — replaying
//! the vector log into the next engine so retention state stays
//! consistent. Every fallback is recorded; nothing fails silently.
//!
//! Panics are contained with [`std::panic::catch_unwind`]: a buggy
//! engine surfaces as [`SimErrorKind::EnginePanicked`] instead of
//! killing the batch.

// SimError deliberately carries full context (phase, engine, circuit,
// cause chain) and only travels on cold failure paths, so clippy's
// Err-size heuristic trades the wrong way here.
#![allow(clippy::result_large_err)]

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};

use uds_netlist::{NetId, Netlist, NoopProbe, Probe, ResourceLimits};
use uds_parallel::{Optimization, ParallelSim, Word};
use uds_pcset::PcSetSimulator;

use crate::error::{FailureClass, SimError, SimErrorKind, SimPhase};
use crate::telemetry::Telemetry;
use crate::{crosscheck, Engine, TracedEventSim, UnitDelaySimulator, WordWidth};

/// Renders a panic payload to text (panics carry `&str` or `String`;
/// anything else gets a placeholder).
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Builds engines for a [`GuardedSimulator`]. The default factory
/// compiles the real engines; the chaos harness substitutes faulty ones.
///
/// Factories are `Send` and cloneable so [`GuardedSimulator::fork`] can
/// hand each batch worker a guard that degrades the same way.
pub trait EngineFactory: Send {
    /// Builds `engine` under `limits`, panic-contained.
    fn build(
        &self,
        netlist: &Netlist,
        engine: Engine,
        limits: &ResourceLimits,
    ) -> Result<Box<dyn UnitDelaySimulator>, SimError>;

    /// Like [`EngineFactory::build`], reporting compile phases and
    /// static metrics into `probe`. The default ignores the probe so
    /// existing factories (the chaos harness's faulty ones included)
    /// keep working unchanged.
    fn build_probed(
        &self,
        netlist: &Netlist,
        engine: Engine,
        limits: &ResourceLimits,
        probe: &dyn Probe,
    ) -> Result<Box<dyn UnitDelaySimulator>, SimError> {
        let _ = probe;
        self.build(netlist, engine, limits)
    }

    /// Clones the factory behind the trait object.
    fn clone_box(&self) -> Box<dyn EngineFactory>;
}

/// The factory that compiles the workspace's real engines.
#[derive(Clone, Copy, Debug, Default)]
pub struct DefaultEngineFactory {
    /// Arena word width for the parallel-family engines.
    pub word: WordWidth,
}

impl DefaultEngineFactory {
    /// A factory compiling parallel engines at the given word width.
    pub fn with_word(word: WordWidth) -> Self {
        DefaultEngineFactory { word }
    }
}

impl EngineFactory for DefaultEngineFactory {
    fn build(
        &self,
        netlist: &Netlist,
        engine: Engine,
        limits: &ResourceLimits,
    ) -> Result<Box<dyn UnitDelaySimulator>, SimError> {
        build_engine_with_limits_word(netlist, engine, limits, self.word)
    }

    fn build_probed(
        &self,
        netlist: &Netlist,
        engine: Engine,
        limits: &ResourceLimits,
        probe: &dyn Probe,
    ) -> Result<Box<dyn UnitDelaySimulator>, SimError> {
        build_engine_with_limits_probed_word(netlist, engine, limits, probe, self.word)
    }

    fn clone_box(&self) -> Box<dyn EngineFactory> {
        Box::new(*self)
    }
}

/// A factory that compiles every engine with **all nets monitored**, so
/// per-net histories — and therefore toggle streams — are available on
/// every net regardless of which engine survives the chain. This is the
/// activity profiler's factory: the default one lets path tracing prune
/// untracked fields, which is faster but leaves most nets unobservable.
#[derive(Clone, Copy, Debug, Default)]
pub struct MonitoringEngineFactory {
    /// Arena word width for the parallel-family engines.
    pub word: WordWidth,
}

impl MonitoringEngineFactory {
    /// A monitoring factory at the given word width.
    pub fn with_word(word: WordWidth) -> Self {
        MonitoringEngineFactory { word }
    }
}

impl EngineFactory for MonitoringEngineFactory {
    fn build(
        &self,
        netlist: &Netlist,
        engine: Engine,
        limits: &ResourceLimits,
    ) -> Result<Box<dyn UnitDelaySimulator>, SimError> {
        self.build_probed(netlist, engine, limits, &NoopProbe)
    }

    fn build_probed(
        &self,
        netlist: &Netlist,
        engine: Engine,
        limits: &ResourceLimits,
        probe: &dyn Probe,
    ) -> Result<Box<dyn UnitDelaySimulator>, SimError> {
        let attach = |e: SimError| {
            if e.engine.is_none() {
                e.with_engine(engine)
            } else {
                e
            }
        };
        let word = self.word;
        let build = || -> Result<Box<dyn UnitDelaySimulator>, SimError> {
            Ok(match engine {
                Engine::Native => crate::native::build_native_monitoring(
                    netlist,
                    Engine::ParallelPathTracingTrimming,
                    word,
                    limits,
                    probe,
                )?,
                // The baseline traces every net already; budget checks
                // match the default factory's.
                Engine::EventDriven => {
                    return build_engine_with_limits_probed_word(
                        netlist, engine, limits, probe, word,
                    )
                }
                Engine::PcSet => {
                    let all: Vec<NetId> = netlist.net_ids().collect();
                    Box::new(PcSetSimulator::compile_probed_with_monitors(
                        netlist, &all, limits, probe,
                    )?)
                }
                Engine::Parallel
                | Engine::ParallelTrimming
                | Engine::ParallelPathTracing
                | Engine::ParallelPathTracingTrimming
                | Engine::ParallelCycleBreaking => {
                    let optimization = match engine {
                        Engine::Parallel => Optimization::None,
                        Engine::ParallelTrimming => Optimization::Trimming,
                        Engine::ParallelPathTracing => Optimization::PathTracing,
                        Engine::ParallelPathTracingTrimming => Optimization::PathTracingTrimming,
                        _ => Optimization::CycleBreaking,
                    };
                    fn compile<W: Word>(
                        netlist: &Netlist,
                        optimization: Optimization,
                        limits: &ResourceLimits,
                        probe: &dyn Probe,
                    ) -> Result<Box<dyn UnitDelaySimulator>, SimError> {
                        Ok(Box::new(ParallelSim::<W>::compile_monitoring_all_probed(
                            netlist,
                            optimization,
                            limits,
                            probe,
                        )?))
                    }
                    match word {
                        WordWidth::W32 => compile::<u32>(netlist, optimization, limits, probe)?,
                        WordWidth::W64 => compile::<u64>(netlist, optimization, limits, probe)?,
                    }
                }
            })
        };
        match panic::catch_unwind(AssertUnwindSafe(build)) {
            Ok(result) => result.map_err(attach),
            Err(payload) => Err(SimError::new(
                SimErrorKind::EnginePanicked {
                    message: panic_message(payload),
                },
                SimPhase::Compile,
            )
            .with_engine(engine)),
        }
    }

    fn clone_box(&self) -> Box<dyn EngineFactory> {
        Box::new(*self)
    }
}

/// Builds any engine under a resource budget, with compile-time panic
/// containment. Budget violations surface as [`SimErrorKind::Budget`],
/// panics as [`SimErrorKind::EnginePanicked`]; every error carries the
/// engine.
pub fn build_engine_with_limits(
    netlist: &Netlist,
    engine: Engine,
    limits: &ResourceLimits,
) -> Result<Box<dyn UnitDelaySimulator>, SimError> {
    build_engine_with_limits_probed(netlist, engine, limits, &NoopProbe)
}

/// [`build_engine_with_limits`] at an explicit parallel word width.
pub fn build_engine_with_limits_word(
    netlist: &Netlist,
    engine: Engine,
    limits: &ResourceLimits,
    word: WordWidth,
) -> Result<Box<dyn UnitDelaySimulator>, SimError> {
    build_engine_with_limits_probed_word(netlist, engine, limits, &NoopProbe, word)
}

/// Like [`build_engine_with_limits`], reporting compile phases and the
/// paper's static metrics (PC-set sizes, words trimmed, shifts
/// retained/eliminated) into `probe` — pass a
/// [`Telemetry`](crate::telemetry::Telemetry) to collect them.
pub fn build_engine_with_limits_probed(
    netlist: &Netlist,
    engine: Engine,
    limits: &ResourceLimits,
    probe: &dyn Probe,
) -> Result<Box<dyn UnitDelaySimulator>, SimError> {
    build_engine_with_limits_probed_word(netlist, engine, limits, probe, WordWidth::default())
}

/// [`build_engine_with_limits_probed`] at an explicit parallel word
/// width (the width only affects the parallel-family engines).
pub fn build_engine_with_limits_probed_word(
    netlist: &Netlist,
    engine: Engine,
    limits: &ResourceLimits,
    probe: &dyn Probe,
    word: WordWidth,
) -> Result<Box<dyn UnitDelaySimulator>, SimError> {
    let attach = |e: SimError| {
        if e.engine.is_none() {
            e.with_engine(engine)
        } else {
            e
        }
    };
    let build = || -> Result<Box<dyn UnitDelaySimulator>, SimError> {
        Ok(match engine {
            Engine::Native => crate::native::build_native(
                netlist,
                Engine::ParallelPathTracingTrimming,
                word,
                limits,
                probe,
            )?,
            Engine::EventDriven => {
                // The baseline has no compiler, but the budget still
                // applies: its waveform store is nets × (depth + 1).
                let levels = uds_netlist::levelize(netlist)?;
                limits.check_depth(levels.depth)?;
                limits.check_gates(netlist.gate_count())?;
                limits.check_inputs(netlist.primary_inputs().len())?;
                limits.check_memory(
                    (netlist.net_count() as u64).saturating_mul(u64::from(levels.depth) + 1),
                )?;
                limits.check_deadline()?;
                Box::new(TracedEventSim::new(netlist)?)
            }
            Engine::PcSet => Box::new(PcSetSimulator::compile_probed(netlist, limits, probe)?),
            Engine::Parallel
            | Engine::ParallelTrimming
            | Engine::ParallelPathTracing
            | Engine::ParallelPathTracingTrimming
            | Engine::ParallelCycleBreaking => {
                let optimization = match engine {
                    Engine::Parallel => Optimization::None,
                    Engine::ParallelTrimming => Optimization::Trimming,
                    Engine::ParallelPathTracing => Optimization::PathTracing,
                    Engine::ParallelPathTracingTrimming => Optimization::PathTracingTrimming,
                    _ => Optimization::CycleBreaking,
                };
                fn compile<W: Word>(
                    netlist: &Netlist,
                    optimization: Optimization,
                    limits: &ResourceLimits,
                    probe: &dyn Probe,
                ) -> Result<Box<dyn UnitDelaySimulator>, SimError> {
                    Ok(Box::new(ParallelSim::<W>::compile_probed(
                        netlist,
                        optimization,
                        limits,
                        probe,
                    )?))
                }
                match word {
                    WordWidth::W32 => compile::<u32>(netlist, optimization, limits, probe)?,
                    WordWidth::W64 => compile::<u64>(netlist, optimization, limits, probe)?,
                }
            }
        })
    };
    match panic::catch_unwind(AssertUnwindSafe(build)) {
        Ok(result) => result.map_err(attach),
        Err(payload) => Err(SimError::new(
            SimErrorKind::EnginePanicked {
                message: panic_message(payload),
            },
            SimPhase::Compile,
        )
        .with_engine(engine)),
    }
}

/// The guarded degradation chain headed by `preferred`: the preferred
/// engine (when given) followed by [`GuardedSimulator::DEFAULT_CHAIN`]
/// minus duplicates. This is how [`Engine::Native`] — deliberately
/// absent from the default chain — joins it: `--engine native
/// --fallback` (and the daemon's `engine=native`) run
/// `chain_preferring(Some(Engine::Native))`, so a host without a C
/// toolchain degrades to the interpreted engines instead of failing.
pub fn chain_preferring(preferred: Option<Engine>) -> Vec<Engine> {
    let mut chain = Vec::with_capacity(GuardedSimulator::DEFAULT_CHAIN.len() + 1);
    if let Some(engine) = preferred {
        chain.push(engine);
    }
    for engine in GuardedSimulator::DEFAULT_CHAIN {
        if Some(engine) != preferred {
            chain.push(engine);
        }
    }
    chain
}

/// A fallback that fired: the engine given up on and why.
#[derive(Debug)]
pub struct FiredFallback {
    /// The engine that failed.
    pub from: Engine,
    /// What went wrong with it.
    pub error: SimError,
}

/// A budget-enforced, panic-contained simulator with graceful
/// degradation down a chain of engines.
///
/// Construction tries each engine in the chain until one compiles
/// within budget. Per-vector runs are panic-contained: a mid-run panic
/// triggers a fallback, and the full vector log is replayed into the
/// next engine so retained state (each vector's dependence on the
/// previous one) is preserved bit-exactly.
pub struct GuardedSimulator {
    netlist: Netlist,
    limits: ResourceLimits,
    chain: Vec<Engine>,
    position: usize,
    active: Box<dyn UnitDelaySimulator>,
    factory: Box<dyn EngineFactory>,
    fired: Vec<FiredFallback>,
    replay: Vec<Vec<bool>>,
    /// Stable state applied before any vector (see
    /// [`GuardedSimulator::seed_stable`]); a degradation must re-apply
    /// it to the fresh engine before replaying the vector log.
    seed: Option<Vec<bool>>,
    telemetry: Option<Telemetry>,
}

/// Records one fallback into the registry: the degradation itself plus
/// its failure class (`guard.budget_trips`, `guard.engine_panics`).
fn note_fallback(telemetry: Option<&Telemetry>, error: &SimError) {
    let Some(telemetry) = telemetry else { return };
    telemetry.add("guard.fallbacks", 1);
    match error.class() {
        FailureClass::Budget => telemetry.add("guard.budget_trips", 1),
        FailureClass::Panic => telemetry.add("guard.engine_panics", 1),
        _ => {}
    }
}

impl std::fmt::Debug for GuardedSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuardedSimulator")
            .field("chain", &self.chain)
            .field("active", &self.active_engine())
            .field("fallbacks_fired", &self.fired.len())
            .field("vectors_run", &self.replay.len())
            .finish_non_exhaustive()
    }
}

impl GuardedSimulator {
    /// The default degradation order: fastest compiled engine first,
    /// the interpreted baseline as the engine of last resort.
    pub const DEFAULT_CHAIN: [Engine; 4] = [
        Engine::ParallelPathTracingTrimming,
        Engine::Parallel,
        Engine::PcSet,
        Engine::EventDriven,
    ];

    /// Builds with the default chain and factory.
    pub fn new(netlist: &Netlist, limits: ResourceLimits) -> Result<Self, SimError> {
        Self::with_chain(netlist, limits, &Self::DEFAULT_CHAIN)
    }

    /// Builds with the default chain and factory, reporting compile
    /// phases, static metrics, and every degradation into `telemetry`.
    pub fn with_telemetry(
        netlist: &Netlist,
        limits: ResourceLimits,
        telemetry: Telemetry,
    ) -> Result<Self, SimError> {
        Self::build(
            netlist,
            limits,
            &Self::DEFAULT_CHAIN,
            Box::new(DefaultEngineFactory::default()),
            Some(telemetry),
            None,
        )
    }

    /// Builds with an explicit chain (tried in order).
    pub fn with_chain(
        netlist: &Netlist,
        limits: ResourceLimits,
        chain: &[Engine],
    ) -> Result<Self, SimError> {
        Self::with_factory(
            netlist,
            limits,
            chain,
            Box::new(DefaultEngineFactory::default()),
        )
    }

    /// Builds with an explicit chain and telemetry registry.
    pub fn with_chain_telemetry(
        netlist: &Netlist,
        limits: ResourceLimits,
        chain: &[Engine],
        telemetry: Telemetry,
    ) -> Result<Self, SimError> {
        Self::build(
            netlist,
            limits,
            chain,
            Box::new(DefaultEngineFactory::default()),
            Some(telemetry),
            None,
        )
    }

    /// Builds with an explicit chain and engine factory (the chaos
    /// harness injects faulty factories here).
    pub fn with_factory(
        netlist: &Netlist,
        limits: ResourceLimits,
        chain: &[Engine],
        factory: Box<dyn EngineFactory>,
    ) -> Result<Self, SimError> {
        Self::build(netlist, limits, chain, factory, None, None)
    }

    /// Builds with an explicit chain, engine factory, *and* telemetry
    /// registry — the fully general constructor (the CLI uses it to
    /// combine `--word`-aware factories with `--stats`).
    pub fn with_factory_telemetry(
        netlist: &Netlist,
        limits: ResourceLimits,
        chain: &[Engine],
        factory: Box<dyn EngineFactory>,
        telemetry: Telemetry,
    ) -> Result<Self, SimError> {
        Self::build(netlist, limits, chain, factory, Some(telemetry), None)
    }

    /// Builds with an explicit chain, factory, and *compile probe*.
    /// Unlike [`GuardedSimulator::with_factory_telemetry`] — whose
    /// probe is the shared registry and therefore its shared span
    /// stack — the probe here can be request-scoped: the serve daemon
    /// passes one that routes compile phases into a per-request trace
    /// while forwarding counters to the registry. The guard keeps no
    /// telemetry handle, so runtime fallbacks are not recorded (the
    /// caller reads [`GuardedSimulator::fallbacks`] instead).
    pub fn with_factory_probed(
        netlist: &Netlist,
        limits: ResourceLimits,
        chain: &[Engine],
        factory: Box<dyn EngineFactory>,
        probe: &dyn Probe,
    ) -> Result<Self, SimError> {
        Self::build(netlist, limits, chain, factory, None, Some(probe))
    }

    fn build(
        netlist: &Netlist,
        limits: ResourceLimits,
        chain: &[Engine],
        factory: Box<dyn EngineFactory>,
        telemetry: Option<Telemetry>,
        compile_probe: Option<&dyn Probe>,
    ) -> Result<Self, SimError> {
        assert!(!chain.is_empty(), "fallback chain must name an engine");
        let noop = NoopProbe;
        let mut fired = Vec::new();
        for (position, &engine) in chain.iter().enumerate() {
            let probe: &dyn Probe = match (compile_probe, &telemetry) {
                (Some(p), _) => p,
                (None, Some(t)) => t,
                (None, None) => &noop,
            };
            match factory.build_probed(netlist, engine, &limits, probe) {
                Ok(active) => {
                    return Ok(GuardedSimulator {
                        netlist: netlist.clone(),
                        limits,
                        chain: chain.to_vec(),
                        position,
                        active,
                        factory,
                        fired,
                        replay: Vec::new(),
                        seed: None,
                        telemetry,
                    })
                }
                Err(error) => {
                    note_fallback(telemetry.as_ref(), &error);
                    fired.push(FiredFallback {
                        from: engine,
                        error,
                    });
                }
            }
        }
        Err(SimError::new(
            SimErrorKind::ChainExhausted(fired.into_iter().map(|f| f.error).collect()),
            SimPhase::Compile,
        ))
    }

    /// The engine currently executing vectors.
    pub fn active_engine(&self) -> Engine {
        self.chain[self.position]
    }

    /// Seeds the guard with a stable state (parallel to the netlist's
    /// nets), as if every vector leading there had been simulated. The
    /// vector log restarts from the seed, so a later degradation seeds
    /// the replacement engine the same way before replaying — results
    /// stay bit-exact across fallbacks. The batch runner seeds each
    /// shard with the zero-delay settled state of its boundary vector.
    pub fn seed_stable(&mut self, stable: &[bool]) {
        self.active.seed_stable(stable);
        self.seed = Some(stable.to_vec());
        self.replay.clear();
    }

    /// A fresh guard sharing this one's netlist, budget, chain,
    /// factory, and active engine (cloned with its compiled program),
    /// but with an empty vector log and no telemetry registry — workers
    /// report timings back to the coordinating thread instead of
    /// contending on a shared registry. Fallbacks already fired are not
    /// inherited; each fork degrades independently.
    pub fn fork(&self) -> GuardedSimulator {
        GuardedSimulator {
            netlist: self.netlist.clone(),
            limits: self.limits,
            chain: self.chain.clone(),
            position: self.position,
            active: self.active.clone_box(),
            factory: self.factory.clone_box(),
            fired: Vec::new(),
            replay: Vec::new(),
            seed: self.seed.clone(),
            telemetry: None,
        }
    }

    /// Every fallback that fired, in order (compile-time and run-time).
    pub fn fallbacks(&self) -> &[FiredFallback] {
        &self.fired
    }

    /// Number of vectors successfully simulated so far.
    pub fn vectors_run(&self) -> usize {
        self.replay.len()
    }

    /// The active engine as a trait object — for consumers like the VCD
    /// recorder that take any [`UnitDelaySimulator`].
    pub fn active_simulator(&self) -> &dyn UnitDelaySimulator {
        self.active.as_ref()
    }

    /// Runtime counters of the active engine (see
    /// [`UnitDelaySimulator::run_counters`]). Counts reset when a
    /// fallback replaces the engine — the replacement replays the
    /// vector log, so its totals cover the whole run.
    pub fn run_counters(&self) -> Vec<(&'static str, u64)> {
        self.active.run_counters()
    }

    /// Simulates one vector, panic-contained. On an engine panic the
    /// chain degrades: the remaining engines are tried in order, each
    /// fed the complete vector log before the current vector. Returns
    /// the engine that (finally) ran the vector.
    pub fn simulate_vector(&mut self, inputs: &[bool]) -> Result<Engine, SimError> {
        let expected = self.netlist.primary_inputs().len();
        if inputs.len() != expected {
            return Err(SimError::new(
                SimErrorKind::VectorWidth {
                    expected,
                    got: inputs.len(),
                },
                SimPhase::Run,
            )
            .with_engine(self.active_engine()));
        }
        self.limits
            .check_deadline()
            .map_err(|e| SimError::new(SimErrorKind::Budget(e), SimPhase::Run))?;
        loop {
            let active = &mut self.active;
            let run = panic::catch_unwind(AssertUnwindSafe(|| active.simulate_vector(inputs)));
            match run {
                Ok(()) => {
                    self.replay.push(inputs.to_vec());
                    return Ok(self.active_engine());
                }
                Err(payload) => {
                    let error = SimError::new(
                        SimErrorKind::EnginePanicked {
                            message: panic_message(payload),
                        },
                        SimPhase::Run,
                    )
                    .with_engine(self.active_engine());
                    self.degrade(error)?;
                }
            }
        }
    }

    /// [`GuardedSimulator::simulate_vector`] with per-level time
    /// attribution into `profile` (see
    /// [`UnitDelaySimulator::simulate_vector_leveled`]). Panic
    /// containment and degradation work exactly as in the unprofiled
    /// path; a vector that degrades mid-flight leaves whatever partial
    /// timing the failed engine accumulated in `profile` — self-time is
    /// observability, not simulation state, so it is never rolled back.
    ///
    /// The guard's own per-vector bookkeeping (width/deadline checks,
    /// panic containment, the replay-log append) happens between the
    /// engine's timer lifetimes, so this wrapper times the whole call
    /// and attributes the engine-unattributed remainder to level 0 —
    /// per-vector setup by definition — keeping the sum contract
    /// ("everything inside a profiled call lands in some level")
    /// honest for small circuits where bookkeeping is a visible slice.
    pub fn simulate_vector_leveled(
        &mut self,
        inputs: &[bool],
        profile: &mut uds_netlist::LevelProfile,
    ) -> Result<Engine, SimError> {
        let call_clock = std::time::Instant::now();
        let attributed_before = profile.total_self_ns();
        let expected = self.netlist.primary_inputs().len();
        if inputs.len() != expected {
            return Err(SimError::new(
                SimErrorKind::VectorWidth {
                    expected,
                    got: inputs.len(),
                },
                SimPhase::Run,
            )
            .with_engine(self.active_engine()));
        }
        self.limits
            .check_deadline()
            .map_err(|e| SimError::new(SimErrorKind::Budget(e), SimPhase::Run))?;
        loop {
            let active = &mut self.active;
            let run = panic::catch_unwind(AssertUnwindSafe(|| {
                active.simulate_vector_leveled(inputs, profile)
            }));
            match run {
                Ok(()) => {
                    self.replay.push(inputs.to_vec());
                    let call_ns =
                        u64::try_from(call_clock.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    let engine_ns = profile.total_self_ns() - attributed_before;
                    profile.ensure_level(0);
                    profile.levels[0].self_ns += call_ns.saturating_sub(engine_ns);
                    return Ok(self.active_engine());
                }
                Err(payload) => {
                    let error = SimError::new(
                        SimErrorKind::EnginePanicked {
                            message: panic_message(payload),
                        },
                        SimPhase::Run,
                    )
                    .with_engine(self.active_engine());
                    self.degrade(error)?;
                }
            }
        }
    }

    /// The active engine's static per-level cost model, when it has one
    /// (see [`UnitDelaySimulator::level_static_profile`]).
    pub fn level_static_profile(&self) -> Option<uds_netlist::LevelProfile> {
        self.active.level_static_profile()
    }

    /// Abandons the active engine for the given reason and brings up
    /// the next one in the chain that can compile *and* replay the
    /// vector log. Errors with [`SimErrorKind::ChainExhausted`] when no
    /// engine remains.
    fn degrade(&mut self, error: SimError) -> Result<(), SimError> {
        note_fallback(self.telemetry.as_ref(), &error);
        self.fired.push(FiredFallback {
            from: self.active_engine(),
            error,
        });
        let noop = NoopProbe;
        for position in self.position + 1..self.chain.len() {
            let engine = self.chain[position];
            let probe: &dyn Probe = match &self.telemetry {
                Some(t) => t,
                None => &noop,
            };
            let candidate = self
                .factory
                .build_probed(&self.netlist, engine, &self.limits, probe)
                .and_then(|mut sim| {
                    let replayed = panic::catch_unwind(AssertUnwindSafe(|| {
                        if let Some(seed) = &self.seed {
                            sim.seed_stable(seed);
                        }
                        for vector in &self.replay {
                            sim.simulate_vector(vector);
                        }
                    }));
                    match replayed {
                        Ok(()) => Ok(sim),
                        Err(payload) => Err(SimError::new(
                            SimErrorKind::EnginePanicked {
                                message: panic_message(payload),
                            },
                            SimPhase::Run,
                        )
                        .with_engine(engine)),
                    }
                });
            match candidate {
                Ok(sim) => {
                    if let Some(telemetry) = &self.telemetry {
                        telemetry.add("guard.replayed_vectors", self.replay.len() as u64);
                    }
                    self.active = sim;
                    self.position = position;
                    return Ok(());
                }
                Err(error) => {
                    note_fallback(self.telemetry.as_ref(), &error);
                    self.fired.push(FiredFallback {
                        from: engine,
                        error,
                    });
                }
            }
        }
        Err(SimError::new(
            SimErrorKind::ChainExhausted(self.fired.iter().map(|f| f.error.clone()).collect()),
            SimPhase::Run,
        ))
    }

    /// The settled value of a net for the last vector.
    pub fn final_value(&self, net: NetId) -> bool {
        self.active.final_value(net)
    }

    /// The history of a net for the last vector, where the active
    /// engine tracks it.
    pub fn history(&self, net: NetId) -> Option<Vec<bool>> {
        self.active.history(net)
    }

    /// Circuit depth.
    pub fn depth(&self) -> u32 {
        self.active.depth()
    }

    /// Cross-checks the surviving engine against a fresh event-driven
    /// baseline by replaying the complete vector log through both
    /// (using [`crosscheck::run`]), panic-contained. A divergence is a
    /// [`SimErrorKind::Mismatch`]; agreement means every answer this
    /// simulator produced is bit-exact with the baseline.
    pub fn crosscheck_baseline(&self) -> Result<(), SimError> {
        let engine = self.active_engine();
        let mut baseline: Box<dyn UnitDelaySimulator> = Box::new(
            TracedEventSim::new(&self.netlist)
                .map_err(|e| SimError::from(e).with_engine(engine))?,
        );
        let mut candidate = self.factory.build(&self.netlist, engine, &self.limits)?;
        if let Some(seed) = &self.seed {
            baseline.seed_stable(seed);
            candidate.seed_stable(seed);
        }
        let mut sims = vec![baseline, candidate];
        let netlist = &self.netlist;
        let replay = &self.replay;
        let checked = panic::catch_unwind(AssertUnwindSafe(|| {
            crosscheck::run(netlist, &mut sims, replay.iter().cloned())
        }));
        match checked {
            Ok(Ok(())) => Ok(()),
            Ok(Err(mismatch)) => {
                if let Some(telemetry) = &self.telemetry {
                    telemetry.add("guard.crosscheck_mismatches", 1);
                }
                Err(SimError::from(mismatch).with_engine(engine))
            }
            Err(payload) => Err(SimError::new(
                SimErrorKind::EnginePanicked {
                    message: panic_message(payload),
                },
                SimPhase::CrossCheck,
            )
            .with_engine(engine)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FailureClass;
    use uds_netlist::generators::iscas::c17;

    #[test]
    fn prefers_the_fastest_engine_within_budget() {
        let nl = c17();
        let guarded = GuardedSimulator::new(&nl, ResourceLimits::production()).unwrap();
        assert_eq!(guarded.active_engine(), Engine::ParallelPathTracingTrimming);
        assert!(guarded.fallbacks().is_empty());
    }

    /// A chain of `n` buffers: depth n, trivially correct, deep enough
    /// to defeat small word budgets.
    fn buffer_chain(n: usize) -> uds_netlist::Netlist {
        use uds_netlist::{GateKind, NetlistBuilder};
        let mut b = NetlistBuilder::new();
        let mut prev = b.input("a");
        for i in 0..n {
            prev = b.gate(GateKind::Buf, &[prev], format!("b{i}")).unwrap();
        }
        b.output(prev);
        b.finish().unwrap()
    }

    #[test]
    fn degrades_when_budget_rejects_compiled_engines() {
        // A one-word budget the unoptimized parallel engine cannot
        // satisfy on a circuit deeper than 31 (uniform fields span the
        // whole depth) — pc-set has no bit-fields and takes over.
        let nl = buffer_chain(40);
        let limits = ResourceLimits {
            max_field_words: Some(1),
            ..ResourceLimits::unlimited()
        };
        let chain = [Engine::Parallel, Engine::PcSet, Engine::EventDriven];
        let mut guarded = GuardedSimulator::with_chain(&nl, limits, &chain).unwrap();
        assert_eq!(guarded.active_engine(), Engine::PcSet);
        let fired: Vec<Engine> = guarded.fallbacks().iter().map(|f| f.from).collect();
        assert_eq!(fired, vec![Engine::Parallel]);
        for fallback in guarded.fallbacks() {
            assert_eq!(fallback.error.class(), FailureClass::Budget);
        }
        // The survivor still answers correctly.
        guarded.simulate_vector(&[true]).unwrap();
        guarded.crosscheck_baseline().unwrap();
    }

    #[test]
    fn guarded_results_match_baseline() {
        let nl = c17();
        let mut guarded = GuardedSimulator::new(&nl, ResourceLimits::production()).unwrap();
        for pattern in 0u32..32 {
            let inputs: Vec<bool> = (0..5).map(|i| pattern >> i & 1 != 0).collect();
            guarded.simulate_vector(&inputs).unwrap();
        }
        assert_eq!(guarded.vectors_run(), 32);
        guarded.crosscheck_baseline().unwrap();
    }

    #[test]
    fn wrong_vector_width_is_typed_not_a_panic() {
        let nl = c17();
        let mut guarded = GuardedSimulator::new(&nl, ResourceLimits::production()).unwrap();
        let err = guarded.simulate_vector(&[true]).unwrap_err();
        assert_eq!(err.class(), FailureClass::Usage);
        assert!(guarded.fallbacks().is_empty(), "no fallback on bad input");
    }

    #[test]
    fn chain_preferring_prepends_without_duplicates() {
        assert_eq!(chain_preferring(None), GuardedSimulator::DEFAULT_CHAIN);
        let native = chain_preferring(Some(Engine::Native));
        assert_eq!(native[0], Engine::Native);
        assert_eq!(native[1..], GuardedSimulator::DEFAULT_CHAIN);
        let already = chain_preferring(Some(Engine::ParallelPathTracingTrimming));
        assert_eq!(already, GuardedSimulator::DEFAULT_CHAIN);
    }

    #[test]
    fn guarded_native_runs_or_degrades_bit_exactly() {
        // With a C toolchain the native engine heads the chain; without
        // one the toolchain failure is contained and an interpreted
        // engine takes over. Either way the answers cross-check.
        let nl = c17();
        let chain = chain_preferring(Some(Engine::Native));
        let mut guarded =
            GuardedSimulator::with_chain(&nl, ResourceLimits::production(), &chain).unwrap();
        if crate::native::compiler_available() {
            assert_eq!(guarded.active_engine(), Engine::Native);
            assert!(guarded.fallbacks().is_empty());
        } else {
            assert_eq!(
                guarded.fallbacks()[0].error.class(),
                FailureClass::Toolchain
            );
        }
        for pattern in 0u32..32 {
            let inputs: Vec<bool> = (0..5).map(|i| pattern >> i & 1 != 0).collect();
            guarded.simulate_vector(&inputs).unwrap();
        }
        guarded.crosscheck_baseline().unwrap();
    }

    #[test]
    fn chain_exhaustion_reports_every_failure() {
        let nl = c17();
        let limits = ResourceLimits {
            max_depth: Some(1),
            ..ResourceLimits::unlimited()
        };
        let err = GuardedSimulator::new(&nl, limits).unwrap_err();
        assert_eq!(err.class(), FailureClass::Budget);
        match err.kind {
            SimErrorKind::ChainExhausted(errors) => {
                assert_eq!(errors.len(), GuardedSimulator::DEFAULT_CHAIN.len());
            }
            other => panic!("expected chain exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn monitoring_factory_makes_every_net_observable_on_every_engine() {
        let nl = c17();
        let limits = ResourceLimits::production();
        for engine in Engine::ALL {
            let mut sim = MonitoringEngineFactory::default()
                .build(&nl, engine, &limits)
                .unwrap();
            sim.simulate_vector(&[true, false, true, false, true]);
            for net in nl.net_ids() {
                assert!(
                    sim.for_each_toggle(net, &mut |_| {}).is_some(),
                    "{engine}: net {} must expose a toggle stream",
                    nl.net_name(net)
                );
            }
        }
    }

    #[test]
    fn build_engine_contains_budget_errors_per_engine() {
        let nl = c17();
        let limits = ResourceLimits {
            max_gates: Some(1),
            ..ResourceLimits::unlimited()
        };
        for engine in Engine::ALL {
            let err = build_engine_with_limits(&nl, engine, &limits)
                .err()
                .expect("a one-gate budget rejects c17");
            assert_eq!(err.class(), FailureClass::Budget, "{engine}");
            assert_eq!(err.engine, Some(engine));
        }
    }
}
