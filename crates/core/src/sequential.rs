//! Multi-cycle simulation of synchronous sequential circuits.
//!
//! §1 of the paper: cut every feedback cycle at a flip-flop
//! ([`uds_netlist::sequential::cut_flip_flops`]), simulate the acyclic
//! remainder with any compiled unit-delay engine, and feed each
//! flip-flop's `D` back into its `Q` between clock cycles.
//! [`SequentialSimulator`] packages that loop.

use uds_netlist::sequential::{cut_flip_flops, CutCircuit, CutError};
use uds_netlist::{LevelizeError, NetId, Netlist};

use crate::{build_simulator, BuildSimulatorError, Engine, UnitDelaySimulator};

/// Error from [`SequentialSimulator::new`].
#[derive(Debug)]
pub enum SequentialError {
    /// The flip-flop cut failed (malformed netlist).
    Cut(CutError),
    /// The cut circuit could not be compiled.
    Build(BuildSimulatorError),
    /// The netlist is combinationally cyclic even after cutting.
    Levelize(LevelizeError),
}

impl std::fmt::Display for SequentialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SequentialError::Cut(e) => write!(f, "{e}"),
            SequentialError::Build(e) => write!(f, "{e}"),
            SequentialError::Levelize(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SequentialError {}

/// A clocked simulator for synchronous sequential circuits, built on any
/// compiled combinational engine.
///
/// # Example
///
/// ```
/// use uds_core::sequential::SequentialSimulator;
/// use uds_core::Engine;
/// use uds_netlist::{NetlistBuilder, GateKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A toggle flip-flop: q' = q XOR en.
/// let mut b = NetlistBuilder::named("toggle");
/// let en = b.input("en");
/// let q = b.get_or_create_net("q");
/// let d = b.gate(GateKind::Xor, &[en, q], "d")?;
/// b.gate_onto(GateKind::Dff, &[d], q)?;
/// b.output(q);
/// let nl = b.finish()?;
///
/// let mut sim = SequentialSimulator::new(&nl, Engine::ParallelPathTracingTrimming)?;
/// assert_eq!(sim.output_bit(q), false);
/// sim.clock(&[true]); // toggle
/// assert_eq!(sim.output_bit(q), true);
/// sim.clock(&[false]); // hold
/// assert_eq!(sim.output_bit(q), true);
/// sim.clock(&[true]); // toggle back
/// assert_eq!(sim.output_bit(q), false);
/// # Ok(())
/// # }
/// ```
pub struct SequentialSimulator {
    cut: CutCircuit,
    engine: Box<dyn UnitDelaySimulator>,
    state: Vec<bool>,
    original_inputs: usize,
}

impl SequentialSimulator {
    /// Cuts `netlist` at its flip-flops and compiles the remainder with
    /// `engine`. All state bits start at 0.
    ///
    /// # Errors
    ///
    /// Returns [`SequentialError`] if the cut or compilation fails (e.g.
    /// a combinational cycle not broken by any flip-flop).
    pub fn new(netlist: &Netlist, engine: Engine) -> Result<Self, SequentialError> {
        let cut = cut_flip_flops(netlist).map_err(SequentialError::Cut)?;
        let compiled =
            build_simulator(&cut.combinational, engine).map_err(SequentialError::Build)?;
        let state = vec![false; cut.state_bits()];
        Ok(SequentialSimulator {
            original_inputs: netlist.primary_inputs().len(),
            cut,
            engine: compiled,
            state,
        })
    }

    /// Number of flip-flops.
    pub fn state_bits(&self) -> usize {
        self.cut.state.len()
    }

    /// The current state vector (one bit per cut flip-flop, in cut
    /// order).
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Forces the state (e.g. to apply a reset value).
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from [`Self::state_bits`].
    pub fn set_state(&mut self, state: &[bool]) {
        assert_eq!(
            state.len(),
            self.state.len(),
            "state width must match the flip-flop count"
        );
        self.state.copy_from_slice(state);
    }

    /// Advances one clock cycle: applies `inputs` (the original
    /// netlist's primary inputs) together with the current state,
    /// simulates the combinational logic to settlement, and latches
    /// every flip-flop's `D` into its `Q`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the original primary-input
    /// count.
    pub fn clock(&mut self, inputs: &[bool]) {
        assert_eq!(
            inputs.len(),
            self.original_inputs,
            "input vector length must match the primary input count"
        );
        let mut full = Vec::with_capacity(inputs.len() + self.state.len());
        full.extend_from_slice(inputs);
        full.extend_from_slice(&self.state);
        self.engine.simulate_vector(&full);
        for (slot, element) in self.state.iter_mut().zip(&self.cut.state) {
            *slot = self.engine.final_value(element.d);
        }
    }

    /// The settled value of any net of the cut circuit after the last
    /// clock cycle (for flip-flop outputs this is the value *during*
    /// that cycle; the newly latched value is in [`Self::state`]).
    pub fn output_bit(&self, net: NetId) -> bool {
        // For flip-flop outputs, report the freshly latched state.
        if let Some(position) = self.cut.state.iter().position(|e| e.q == net) {
            return self.state[position];
        }
        self.engine.final_value(net)
    }

    /// The cut bookkeeping (flip-flop d/q pairs, the combinational
    /// netlist).
    pub fn cut(&self) -> &CutCircuit {
        &self.cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uds_netlist::{GateKind, NetlistBuilder};

    /// A 3-bit ripple-ish counter built from toggle flip-flops.
    fn counter3() -> (Netlist, Vec<NetId>) {
        let mut b = NetlistBuilder::named("ctr3");
        let en = b.input("en");
        let q: Vec<NetId> = (0..3)
            .map(|i| b.get_or_create_net(&format!("q{i}")))
            .collect();
        let mut carry = en;
        for (i, &qi) in q.iter().enumerate() {
            let d = b
                .gate(GateKind::Xor, &[qi, carry], format!("d{i}"))
                .unwrap();
            b.gate_onto(GateKind::Dff, &[d], qi).unwrap();
            if i < 2 {
                carry = b
                    .gate(GateKind::And, &[qi, carry], format!("c{i}"))
                    .unwrap();
            }
            b.output(qi);
        }
        (b.finish().unwrap(), q)
    }

    #[test]
    fn counter_counts_on_every_engine() {
        let (nl, q) = counter3();
        for engine in [
            Engine::PcSet,
            Engine::Parallel,
            Engine::ParallelPathTracingTrimming,
        ] {
            let mut sim = SequentialSimulator::new(&nl, engine).unwrap();
            for expected in 1..=10u32 {
                sim.clock(&[true]);
                let count: u32 = q
                    .iter()
                    .enumerate()
                    .map(|(i, &net)| (sim.output_bit(net) as u32) << i)
                    .sum();
                assert_eq!(count, expected % 8, "{engine} at cycle {expected}");
            }
        }
    }

    #[test]
    fn disabled_counter_holds() {
        let (nl, q) = counter3();
        let mut sim = SequentialSimulator::new(&nl, Engine::PcSet).unwrap();
        sim.clock(&[true]);
        sim.clock(&[false]);
        sim.clock(&[false]);
        let count: u32 = q
            .iter()
            .enumerate()
            .map(|(i, &net)| (sim.output_bit(net) as u32) << i)
            .sum();
        assert_eq!(count, 1);
    }

    #[test]
    fn set_state_applies_reset_values() {
        let (nl, q) = counter3();
        let mut sim = SequentialSimulator::new(&nl, Engine::Parallel).unwrap();
        sim.set_state(&[true, false, true]); // 5
        sim.clock(&[true]);
        let count: u32 = q
            .iter()
            .enumerate()
            .map(|(i, &net)| (sim.output_bit(net) as u32) << i)
            .sum();
        assert_eq!(count, 6);
    }

    #[test]
    fn combinational_netlist_has_no_state() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let y = b.gate(GateKind::Not, &[a], "y").unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        let mut sim = SequentialSimulator::new(&nl, Engine::PcSet).unwrap();
        assert_eq!(sim.state_bits(), 0);
        sim.clock(&[true]);
        assert!(!sim.output_bit(y));
    }
}
