//! Runtime activity profiling: per-net toggle counts and per-time-slot
//! histograms.
//!
//! The parallel technique's bit-fields make activity measurement almost
//! free: a net's toggles for a vector are `popcount(f ^ (f >> 1))` over
//! its packed history words ([`for_each_toggle`]), so the profiler
//! piggybacks on state the engine already computed. The same counts are
//! derivable from any engine that exposes histories — the event-driven
//! baseline and the sequential engine agree bit-exactly (the crosscheck
//! invariant extends to activity), which is what makes the profile a
//! trustworthy annotation for the paper's compiled-vs-event-driven
//! comparison: the event-driven technique's cost is proportional to
//! exactly this activity, while the compiled techniques' cost is not.
//!
//! [`for_each_toggle`]: crate::UnitDelaySimulator::for_each_toggle
//!
//! The profiler is deliberately engine-, word-width- and
//! shard-agnostic: toggle totals are sums of per-vector counts, so the
//! same stimulus yields byte-identical reports no matter which engine
//! produced the histories or how many workers split the stream
//! ([`BatchActivityObserver`] merges per-shard profiles in shard
//! order).

use std::sync::Mutex;

use uds_netlist::{Levels, NetId, Netlist};

use crate::batch::shard_bounds;
use crate::progress::BatchProbe;
use crate::telemetry::json::Json;
use crate::UnitDelaySimulator;

/// Schema tag of [`ActivityReport::to_json`].
pub const ACTIVITY_SCHEMA: &str = "uds-activity-v1";

/// Accumulates toggle activity over a stream of vectors.
///
/// One profiler observes one engine (or one shard); profiles merge with
/// [`ActivityProfiler::merge`] because every field is a plain sum.
#[derive(Clone, Debug)]
pub struct ActivityProfiler {
    depth: u32,
    vectors: u64,
    /// Total toggles per net, across all observed vectors.
    per_net: Vec<u64>,
    /// Total toggles per time slot `0..=depth` (slot 0 never toggles:
    /// inputs change *at* time 0, the first observable edge is time 1).
    per_slot: Vec<u64>,
    /// Nets the engine exposed a toggle stream for at least once.
    observed: Vec<bool>,
}

impl ActivityProfiler {
    /// An empty profile for a circuit with `nets` nets and the given
    /// depth.
    pub fn new(nets: usize, depth: u32) -> Self {
        ActivityProfiler {
            depth,
            vectors: 0,
            per_net: vec![0; nets],
            per_slot: vec![0; depth as usize + 1],
            observed: vec![false; nets],
        }
    }

    /// Sized for a netlist and its levelization.
    pub fn for_netlist(netlist: &Netlist, levels: &Levels) -> Self {
        Self::new(netlist.net_count(), levels.depth)
    }

    /// Folds the simulator's last vector into the profile. Call once
    /// per simulated vector, after `simulate_vector`. Nets whose engine
    /// exposes no toggle stream are skipped (and reported as
    /// unobserved).
    pub fn record_vector(&mut self, sim: &dyn UnitDelaySimulator) {
        self.vectors += 1;
        let per_slot = &mut self.per_slot;
        for (index, (total, seen)) in self
            .per_net
            .iter_mut()
            .zip(self.observed.iter_mut())
            .enumerate()
        {
            let count = sim.for_each_toggle(NetId::from_index(index), &mut |t| {
                if let Some(slot) = per_slot.get_mut(t as usize) {
                    *slot += 1;
                }
            });
            if let Some(count) = count {
                *seen = true;
                *total += u64::from(count);
            }
        }
    }

    /// Adds another profile into this one (e.g. a shard's). Both must
    /// describe the same circuit.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn merge(&mut self, other: &ActivityProfiler) {
        assert_eq!(self.per_net.len(), other.per_net.len(), "same circuit");
        assert_eq!(self.depth, other.depth, "same depth");
        self.vectors += other.vectors;
        for (a, b) in self.per_net.iter_mut().zip(&other.per_net) {
            *a += b;
        }
        for (a, b) in self.per_slot.iter_mut().zip(&other.per_slot) {
            *a += b;
        }
        for (a, b) in self.observed.iter_mut().zip(&other.observed) {
            *a |= b;
        }
    }

    /// Vectors folded in so far.
    pub fn vectors(&self) -> u64 {
        self.vectors
    }

    /// Total toggles across all nets and vectors.
    pub fn total_toggles(&self) -> u64 {
        self.per_net.iter().sum()
    }

    /// Toggles of one net.
    pub fn net_toggles(&self, net: NetId) -> u64 {
        self.per_net[net.index()]
    }

    /// Toggles per time slot `0..=depth`.
    pub fn per_slot(&self) -> &[u64] {
        &self.per_slot
    }

    /// The mean fraction of (net, time-slot) opportunities that
    /// actually toggled: `total / (nets × depth × vectors)`. The
    /// event-driven baseline's work scales with this; the compiled
    /// techniques' work does not (the paper's central trade-off).
    pub fn activity_factor(&self) -> f64 {
        let opportunities = self.per_net.len() as f64 * f64::from(self.depth) * self.vectors as f64;
        if opportunities == 0.0 {
            0.0
        } else {
            self.total_toggles() as f64 / opportunities
        }
    }

    /// The `top` most active nets, `(net, toggles)`, most active first
    /// (ties broken by net id for determinism). Quiet nets (zero
    /// toggles) never make the list.
    pub fn hot_nets(&self, top: usize) -> Vec<(NetId, u64)> {
        let mut ranked: Vec<(NetId, u64)> = self
            .per_net
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t > 0)
            .map(|(i, &t)| (NetId::from_index(i), t))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
        ranked.truncate(top);
        ranked
    }

    /// Nets no engine ever exposed a toggle stream for.
    pub fn unobserved_nets(&self) -> usize {
        self.observed.iter().filter(|&&seen| !seen).count()
    }

    /// Assembles the full report against the netlist (for names) and
    /// its levelization (for the per-level distribution).
    pub fn report(&self, netlist: &Netlist, levels: &Levels, top: usize) -> ActivityReport {
        let mut per_level = vec![0u64; levels.depth as usize + 1];
        for (index, &toggles) in self.per_net.iter().enumerate() {
            per_level[levels.net_level[index] as usize] += toggles;
        }
        ActivityReport {
            circuit: netlist.name().to_owned(),
            nets: self.per_net.len(),
            depth: self.depth,
            vectors: self.vectors,
            total_toggles: self.total_toggles(),
            activity_factor: self.activity_factor(),
            hot_nets: self
                .hot_nets(top)
                .into_iter()
                .map(|(net, toggles)| HotNet {
                    net: netlist.net_name(net).to_owned(),
                    level: levels.net_level[net.index()],
                    toggles,
                })
                .collect(),
            per_level,
            per_slot: self.per_slot.clone(),
            unobserved_nets: self.unobserved_nets(),
            labels: Vec::new(),
        }
    }
}

/// One entry of [`ActivityReport::hot_nets`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HotNet {
    /// The net's name in the netlist.
    pub net: String,
    /// Its longest-path level.
    pub level: u32,
    /// Total toggles across the profiled stream.
    pub toggles: u64,
}

/// The aggregated activity profile of one stimulus stream.
///
/// Everything except `labels` is a pure function of the circuit and
/// stimulus — byte-identical across engines, word widths and `--jobs`
/// values. `labels` records how the profile was measured (engine,
/// word width, jobs, seed) without perturbing the payload.
#[derive(Clone, Debug)]
pub struct ActivityReport {
    /// Circuit name.
    pub circuit: String,
    /// Number of nets.
    pub nets: usize,
    /// Circuit depth.
    pub depth: u32,
    /// Vectors profiled.
    pub vectors: u64,
    /// Total toggles.
    pub total_toggles: u64,
    /// `total_toggles / (nets × depth × vectors)`.
    pub activity_factor: f64,
    /// The most active nets, most active first.
    pub hot_nets: Vec<HotNet>,
    /// Toggles grouped by net level `0..=depth`.
    pub per_level: Vec<u64>,
    /// Toggles grouped by time slot `0..=depth`.
    pub per_slot: Vec<u64>,
    /// Nets with no observable history under the profiled engine.
    pub unobserved_nets: usize,
    /// Measurement context (engine, word, jobs, seed, …) — the only
    /// part of the report that may differ between equivalent runs.
    pub labels: Vec<(String, String)>,
}

impl ActivityReport {
    /// Adds a measurement-context label.
    pub fn label(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.labels.push((key.into(), value.into()));
    }

    /// Renders as schema-versioned JSON (`uds-activity-v1`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(ACTIVITY_SCHEMA.to_owned())),
            ("circuit", Json::Str(self.circuit.clone())),
            ("nets", Json::UInt(self.nets as u64)),
            ("depth", Json::UInt(u64::from(self.depth))),
            ("vectors", Json::UInt(self.vectors)),
            ("total_toggles", Json::UInt(self.total_toggles)),
            ("activity_factor", Json::Float(self.activity_factor)),
            (
                "hot_nets",
                Json::Arr(
                    self.hot_nets
                        .iter()
                        .map(|h| {
                            Json::obj([
                                ("net", Json::Str(h.net.clone())),
                                ("level", Json::UInt(u64::from(h.level))),
                                ("toggles", Json::UInt(h.toggles)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "toggles_by_level",
                Json::Arr(self.per_level.iter().map(|&t| Json::UInt(t)).collect()),
            ),
            (
                "toggles_by_time",
                Json::Arr(self.per_slot.iter().map(|&t| Json::UInt(t)).collect()),
            ),
            ("unobserved_nets", Json::UInt(self.unobserved_nets as u64)),
            (
                "labels",
                Json::Obj(
                    self.labels
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
        ])
    }
}

/// A [`BatchProbe`] that profiles activity per shard during
/// [`run_batch_observed`](crate::batch::run_batch_observed), then
/// merges the shards into one stream-order profile.
///
/// Each shard owns its profiler behind a `Mutex`, so workers never
/// contend with each other (a worker only ever locks its own shard's
/// slot).
pub struct BatchActivityObserver {
    shards: Vec<Mutex<ActivityProfiler>>,
}

impl BatchActivityObserver {
    /// Sized for a batch of `total` vectors over `jobs` workers — the
    /// same partition [`shard_bounds`] gives the batch runner.
    pub fn new(netlist: &Netlist, levels: &Levels, total: usize, jobs: usize) -> Self {
        let shards = shard_bounds(total, jobs)
            .iter()
            .map(|_| Mutex::new(ActivityProfiler::for_netlist(netlist, levels)))
            .collect();
        BatchActivityObserver { shards }
    }

    /// Merges every shard's profile, in shard order.
    pub fn merged(&self) -> ActivityProfiler {
        let mut iter = self.shards.iter();
        let first = iter
            .next()
            .expect("shard_bounds yields at least one shard for a nonempty batch");
        let mut merged = first.lock().unwrap_or_else(|e| e.into_inner()).clone();
        for shard in iter {
            merged.merge(&shard.lock().unwrap_or_else(|e| e.into_inner()));
        }
        merged
    }
}

impl BatchProbe for BatchActivityObserver {
    fn wants_vectors(&self) -> bool {
        true
    }

    fn vector_done(&self, shard: usize, sim: &dyn UnitDelaySimulator) {
        if let Some(slot) = self.shards.get(shard) {
            slot.lock()
                .unwrap_or_else(|e| e.into_inner())
                .record_vector(sim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_simulator, Engine};
    use uds_netlist::generators::iscas::c17;
    use uds_netlist::levelize;

    fn profile(engine: Engine, vectors: usize) -> ActivityProfiler {
        let nl = c17();
        let levels = levelize(&nl).unwrap();
        let mut sim = build_simulator(&nl, engine).unwrap();
        let mut profiler = ActivityProfiler::for_netlist(&nl, &levels);
        let mut state = 0x5EED_1990_u64;
        for _ in 0..vectors {
            let vector: Vec<bool> = (0..5)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    state >> 63 != 0
                })
                .collect();
            sim.simulate_vector(&vector);
            profiler.record_vector(&*sim);
        }
        profiler
    }

    #[test]
    fn event_driven_observes_every_net() {
        let profiler = profile(Engine::EventDriven, 16);
        assert_eq!(profiler.unobserved_nets(), 0);
        assert!(profiler.total_toggles() > 0);
        assert_eq!(profiler.vectors(), 16);
        // Slot 0 can never toggle: inputs change at time 0.
        assert_eq!(profiler.per_slot()[0], 0);
        // The histogram and the per-net totals count the same toggles.
        assert_eq!(
            profiler.per_slot().iter().sum::<u64>(),
            profiler.total_toggles()
        );
    }

    #[test]
    fn merge_is_concatenation() {
        let whole = profile(Engine::EventDriven, 16);
        // Same stream, recorded as 16 = 16 vectors in one go vs. merged
        // halves would need stream splitting; instead merge two
        // identical profiles and check pure additivity.
        let half = profile(Engine::EventDriven, 16);
        let mut doubled = whole.clone();
        doubled.merge(&half);
        assert_eq!(doubled.total_toggles(), 2 * whole.total_toggles());
        assert_eq!(doubled.vectors(), 32);
    }

    #[test]
    fn report_is_schema_versioned_and_consistent() {
        let nl = c17();
        let levels = levelize(&nl).unwrap();
        let profiler = profile(Engine::EventDriven, 16);
        let mut report = profiler.report(&nl, &levels, 3);
        report.label("engine", "event-driven");
        let json = report.to_json();
        let obj = json.as_obj().unwrap();
        assert_eq!(
            obj.iter().find(|(k, _)| k == "schema").unwrap().1.as_str(),
            Some(ACTIVITY_SCHEMA)
        );
        assert!(report.hot_nets.len() <= 3);
        assert!(report
            .hot_nets
            .windows(2)
            .all(|w| w[0].toggles >= w[1].toggles));
        assert_eq!(report.per_level.iter().sum::<u64>(), report.total_toggles);
        // Level 0 nets are primary inputs: they change at time 0, which
        // is not a toggle, so all their activity is zero.
        assert_eq!(report.per_level[0], 0);
    }
}
