//! Hazard analysis over unit-delay histories.
//!
//! §3 of the paper notes that the parallel technique's bit-fields make
//! hazard analysis cheap: "such analysis could be done quickly by using
//! a binary search technique and comparison fields of the form 0...01...1
//! and 1...10...0" — i.e. a field is hazard-free exactly when it is a
//! *monotone* step function of time. This module implements that check:
//!
//! * [`classify`] inspects one history;
//! * [`scan`] sweeps a whole simulator state after a vector and reports
//!   every hazardous net;
//! * [`is_monotone_step`] is the word-level primitive (the paper's
//!   comparison-field test) applied to a packed history.

use uds_netlist::{NetId, Netlist};

use crate::UnitDelaySimulator;

/// What one net did during one vector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Activity {
    /// No transitions at all.
    Stable,
    /// Exactly one clean edge.
    CleanEdge,
    /// Initial and final values agree but the net pulsed in between.
    StaticHazard,
    /// Initial and final values differ and the net changed more than
    /// once on the way.
    DynamicHazard,
}

/// Classifies one history (values at times `0..=depth`).
///
/// # Panics
///
/// Panics on an empty history.
pub fn classify(history: &[bool]) -> Activity {
    let transitions = history.windows(2).filter(|p| p[0] != p[1]).count();
    let ends_equal = history[0] == *history.last().expect("histories are nonempty");
    match (transitions, ends_equal) {
        (0, _) => Activity::Stable,
        (1, false) => Activity::CleanEdge,
        (_, true) => Activity::StaticHazard,
        (_, false) => Activity::DynamicHazard,
    }
}

/// Classifies a net's vector activity from its toggle count alone —
/// no history materialization. Works because unit-delay histories make
/// the endpoints a parity function of the transitions: an even count
/// returns to the initial value, an odd one ends opposite. Agrees with
/// [`classify`] on every history; the activity profiler uses it on
/// word-parallel popcounts.
pub fn classify_toggle_count(toggles: u32) -> Activity {
    match (toggles, toggles.is_multiple_of(2)) {
        (0, _) => Activity::Stable,
        (1, _) => Activity::CleanEdge,
        (_, true) => Activity::StaticHazard,
        (_, false) => Activity::DynamicHazard,
    }
}

/// The paper's comparison-field test on a packed history: the `width`
/// low bits of `field` are hazard-free iff they equal `0…01…1` or
/// `1…10…0` or a constant — i.e. at most one transition.
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 64.
pub fn is_monotone_step(field: u64, width: u32) -> bool {
    assert!((1..=64).contains(&width), "width must be in 1..=64");
    let mask = if width == 64 { !0 } else { (1u64 << width) - 1 };
    let field = field & mask;
    // Transitions are the set bits of field XOR (field >> 1) within the
    // low width-1 bits.
    let transitions = (field ^ (field >> 1)) & (mask >> 1);
    transitions.count_ones() <= 1
}

/// One hazardous net found by [`scan`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Hazard {
    /// The affected net.
    pub net: NetId,
    /// Static or dynamic.
    pub activity: Activity,
    /// The offending history.
    pub history: Vec<bool>,
}

/// Scans every net after a vector and returns all hazards, in net-id
/// order. Nets whose engine does not expose a history are skipped.
pub fn scan(netlist: &Netlist, simulator: &dyn UnitDelaySimulator) -> Vec<Hazard> {
    let mut hazards = Vec::new();
    for net in netlist.net_ids() {
        let Some(history) = simulator.history(net) else {
            continue;
        };
        let activity = classify(&history);
        if matches!(activity, Activity::StaticHazard | Activity::DynamicHazard) {
            hazards.push(Hazard {
                net,
                activity,
                history,
            });
        }
    }
    hazards
}

#[cfg(test)]
mod tests {
    use super::*;
    use uds_netlist::{GateKind, NetlistBuilder};
    use uds_parallel::{Optimization, ParallelSimulator};

    #[test]
    fn classification_table() {
        assert_eq!(classify(&[false, false, false]), Activity::Stable);
        assert_eq!(classify(&[false, true, true]), Activity::CleanEdge);
        assert_eq!(classify(&[false, true, false]), Activity::StaticHazard);
        assert_eq!(
            classify(&[false, true, false, true]),
            Activity::DynamicHazard
        );
        assert_eq!(classify(&[true]), Activity::Stable);
    }

    #[test]
    fn monotone_step_matches_classification() {
        for width in 1u32..=10 {
            for pattern in 0u64..(1 << width) {
                let history: Vec<bool> = (0..width).map(|i| pattern >> i & 1 != 0).collect();
                let hazard_free =
                    matches!(classify(&history), Activity::Stable | Activity::CleanEdge);
                assert_eq!(
                    is_monotone_step(pattern, width),
                    hazard_free,
                    "width {width} pattern {pattern:b}"
                );
            }
        }
    }

    #[test]
    fn toggle_count_classification_matches_history_classification() {
        for width in 1u32..=10 {
            for pattern in 0u64..(1 << width) {
                let history: Vec<bool> = (0..width).map(|i| pattern >> i & 1 != 0).collect();
                let toggles = history.windows(2).filter(|p| p[0] != p[1]).count() as u32;
                assert_eq!(
                    classify_toggle_count(toggles),
                    classify(&history),
                    "width {width} pattern {pattern:b}"
                );
            }
        }
    }

    #[test]
    fn monotone_step_full_width() {
        assert!(is_monotone_step(!0u64, 64));
        assert!(is_monotone_step(0, 64));
        assert!(is_monotone_step(!0u64 << 20, 64));
        assert!(!is_monotone_step(0b101, 64));
    }

    #[test]
    fn scan_finds_the_classic_static_hazard() {
        // y = AND(a, NOT a) pulses on a rising a.
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let na = b.gate(GateKind::Not, &[a], "na").unwrap();
        let y = b.gate(GateKind::And, &[a, na], "y").unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        let mut sim = ParallelSimulator::compile(&nl, Optimization::None).unwrap();
        sim.simulate_vector(&[false]);
        assert!(scan(&nl, &sim).is_empty());
        sim.simulate_vector(&[true]);
        let hazards = scan(&nl, &sim);
        assert_eq!(hazards.len(), 1);
        assert_eq!(hazards[0].net, y);
        assert_eq!(hazards[0].activity, Activity::StaticHazard);
        assert_eq!(hazards[0].history, vec![false, true, false]);
    }
}
