//! The engine-agnostic simulator trait and constructors.

use std::fmt;

use uds_eventsim::EventDrivenUnitDelay;
use uds_netlist::{levelize, LevelProfile, LevelTimer, LevelizeError, NetId, Netlist};
use uds_parallel::{Optimization, ParallelSim, Word};
use uds_pcset::PcSetSimulator;

/// A unit-delay simulator: feed vectors, read back settled values and
/// (where supported) complete time histories.
///
/// Implemented by the PC-set simulator, every optimization level of the
/// parallel technique, and the traced event-driven baseline, so
/// comparison harnesses and examples can be written once.
///
/// Engines are `Send` and cloneable (via [`Self::clone_box`]) so the
/// batch runner can hand each worker thread its own copy of a compiled
/// engine without recompiling per shard.
pub trait UnitDelaySimulator: Send {
    /// Short engine name for reports (e.g. `"pc-set"`).
    fn engine_name(&self) -> &'static str;

    /// Simulates one input vector (parallel to the primary inputs).
    ///
    /// # Panics
    ///
    /// Implementations panic if the vector length does not match the
    /// primary-input count.
    fn simulate_vector(&mut self, inputs: &[bool]);

    /// The settled value of any net for the last vector.
    fn final_value(&self, net: NetId) -> bool;

    /// The complete history of `net` at times `0..=depth()` for the
    /// last vector, or `None` when the engine did not track it for this
    /// net.
    fn history(&self, net: NetId) -> Option<Vec<bool>>;

    /// Circuit depth (histories have `depth() + 1` entries).
    fn depth(&self) -> u32;

    /// Restores the consistent power-up state (circuit settled under
    /// all-zero inputs).
    fn reset(&mut self);

    /// Replaces the engine's state with an arbitrary stable state
    /// (`stable` is parallel to the netlist's nets), as if every vector
    /// leading to that state had already been simulated. The batch
    /// runner uses this to seed each shard with the zero-delay settled
    /// state of the vector preceding it.
    ///
    /// # Panics
    ///
    /// Implementations panic if `stable.len()` differs from the net
    /// count.
    fn seed_stable(&mut self, stable: &[bool]);

    /// Clones the engine behind the trait object, preserving its
    /// compiled program and current state.
    fn clone_box(&self) -> Box<dyn UnitDelaySimulator>;

    /// Engine-specific runtime counters accumulated since construction
    /// (e.g. events processed by the event-driven baseline), as
    /// `(name, value)` pairs ready for a telemetry registry. Compiled
    /// engines do no bookkeeping during simulation — their loop *is*
    /// straight-line code — so the default is empty.
    fn run_counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Simulates one input vector while attributing wall time and work
    /// counts to netlist levels in `profile` (level 0 is per-vector
    /// setup, levels `1..=depth()` are gate levels). The default times
    /// the whole vector into level 0, so every engine satisfies the
    /// attribution contract — all time spent inside the call lands in
    /// *some* level — even without fine-grained hooks. Engines with a
    /// level-segmented execution stream override this with chunked
    /// per-level timing (see `uds_netlist::LevelTimer`).
    ///
    /// This is a separate entry point, not a flag on
    /// [`Self::simulate_vector`]: with profiling off the hot loop is
    /// byte-for-byte the code it was before profiling existed.
    ///
    /// # Panics
    ///
    /// Implementations panic if the vector length does not match the
    /// primary-input count.
    fn simulate_vector_leveled(&mut self, inputs: &[bool], profile: &mut LevelProfile) {
        let mut timer = LevelTimer::new(profile);
        self.simulate_vector(inputs);
        timer.segment(0, 0, 0, 0);
    }

    /// The engine's *static* per-level cost model — instruction/word-op
    /// counts fixed at compile time — or `None` for engines without
    /// one (the hotspot report uses it to correlate measured time with
    /// predicted cost). `vectors` is 0 in the returned profile.
    fn level_static_profile(&self) -> Option<LevelProfile> {
        None
    }

    /// Visits every toggle of `net` for the last vector — each time `t`
    /// in `1..=depth()` where the net's value differs from its value at
    /// `t - 1` — and returns the toggle count, or `None` exactly when
    /// [`UnitDelaySimulator::history`] returns `None`. The default
    /// derives toggles from the history; the parallel engine overrides
    /// it with a word-parallel popcount over its bit-fields. Visit
    /// order is unspecified: shift-eliminated fields do not map bit
    /// positions to times monotonically.
    fn for_each_toggle(&self, net: NetId, visit: &mut dyn FnMut(u32)) -> Option<u32> {
        let history = self.history(net)?;
        let mut count = 0u32;
        for (t, pair) in history.windows(2).enumerate() {
            if pair[0] != pair[1] {
                count += 1;
                visit(t as u32 + 1);
            }
        }
        Some(count)
    }
}

impl UnitDelaySimulator for PcSetSimulator {
    fn engine_name(&self) -> &'static str {
        "pc-set"
    }

    fn simulate_vector(&mut self, inputs: &[bool]) {
        PcSetSimulator::simulate_vector(self, inputs);
    }

    fn final_value(&self, net: NetId) -> bool {
        PcSetSimulator::final_value(self, net)
    }

    fn history(&self, net: NetId) -> Option<Vec<bool>> {
        PcSetSimulator::history(self, net)
    }

    fn depth(&self) -> u32 {
        PcSetSimulator::depth(self)
    }

    fn reset(&mut self) {
        PcSetSimulator::reset(self);
    }

    fn seed_stable(&mut self, stable: &[bool]) {
        PcSetSimulator::seed_stable(self, stable);
    }

    fn clone_box(&self) -> Box<dyn UnitDelaySimulator> {
        Box::new(self.clone())
    }

    fn simulate_vector_leveled(&mut self, inputs: &[bool], profile: &mut LevelProfile) {
        PcSetSimulator::simulate_vector_leveled(self, inputs, profile);
    }

    fn level_static_profile(&self) -> Option<LevelProfile> {
        Some(PcSetSimulator::level_static_profile(self))
    }
}

impl<W: Word> UnitDelaySimulator for ParallelSim<W> {
    fn engine_name(&self) -> &'static str {
        match self.optimization() {
            Optimization::None => "parallel",
            Optimization::Trimming => "parallel+trim",
            Optimization::PathTracing => "parallel+pt",
            Optimization::PathTracingTrimming => "parallel+pt+trim",
            Optimization::CycleBreaking => "parallel+cb",
            Optimization::CycleBreakingTrimming => "parallel+cb+trim",
        }
    }

    fn simulate_vector(&mut self, inputs: &[bool]) {
        ParallelSim::simulate_vector(self, inputs);
    }

    fn final_value(&self, net: NetId) -> bool {
        ParallelSim::final_value(self, net)
    }

    fn history(&self, net: NetId) -> Option<Vec<bool>> {
        ParallelSim::history(self, net)
    }

    fn depth(&self) -> u32 {
        ParallelSim::depth(self)
    }

    fn reset(&mut self) {
        ParallelSim::reset(self);
    }

    fn seed_stable(&mut self, stable: &[bool]) {
        ParallelSim::seed_stable(self, stable);
    }

    fn clone_box(&self) -> Box<dyn UnitDelaySimulator> {
        Box::new(self.clone())
    }

    fn for_each_toggle(&self, net: NetId, visit: &mut dyn FnMut(u32)) -> Option<u32> {
        ParallelSim::for_each_toggle_in_field(self, net, visit)
    }

    fn simulate_vector_leveled(&mut self, inputs: &[bool], profile: &mut LevelProfile) {
        ParallelSim::simulate_vector_leveled(self, inputs, profile);
    }

    fn level_static_profile(&self) -> Option<LevelProfile> {
        Some(ParallelSim::level_static_profile(self))
    }
}

/// The interpreted event-driven baseline wrapped to record complete
/// waveforms, so it satisfies [`UnitDelaySimulator`] and can serve as
/// the reference in cross-checks.
#[derive(Clone, Debug)]
pub struct TracedEventSim {
    inner: EventDrivenUnitDelay<bool>,
    waveform: Vec<Vec<bool>>,
    depth: u32,
    total_events: u64,
    total_toggles: u64,
    total_gate_evaluations: u64,
}

impl TracedEventSim {
    /// Builds the traced baseline.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] for cyclic or sequential netlists.
    pub fn new(netlist: &Netlist) -> Result<Self, LevelizeError> {
        let depth = levelize(netlist)?.depth;
        let inner = EventDrivenUnitDelay::new(netlist)?;
        let waveform = inner
            .values()
            .iter()
            .map(|&v| vec![v; depth as usize + 1])
            .collect();
        Ok(TracedEventSim {
            inner,
            waveform,
            depth,
            total_events: 0,
            total_toggles: 0,
            total_gate_evaluations: 0,
        })
    }

    /// Event statistics of the most recent vector are available through
    /// the wrapped simulator.
    pub fn inner(&self) -> &EventDrivenUnitDelay<bool> {
        &self.inner
    }
}

impl UnitDelaySimulator for TracedEventSim {
    fn engine_name(&self) -> &'static str {
        "event-driven"
    }

    fn simulate_vector(&mut self, inputs: &[bool]) {
        for (net, row) in self.waveform.iter_mut().enumerate() {
            let last = *row.last().expect("rows are depth + 1 long");
            row.fill(last);
            let _ = net;
        }
        let waveform = &mut self.waveform;
        let stats = self.inner.simulate_vector_traced(inputs, |t, net, v| {
            for slot in &mut waveform[net.index()][t as usize..] {
                *slot = v;
            }
        });
        self.total_events += stats.events as u64;
        self.total_toggles += stats.toggles as u64;
        self.total_gate_evaluations += stats.gate_evaluations as u64;
    }

    fn final_value(&self, net: NetId) -> bool {
        *self.waveform[net.index()]
            .last()
            .expect("rows are depth + 1 long")
    }

    fn history(&self, net: NetId) -> Option<Vec<bool>> {
        Some(self.waveform[net.index()].clone())
    }

    fn depth(&self) -> u32 {
        self.depth
    }

    fn reset(&mut self) {
        self.inner.reset();
        for (net, row) in self.waveform.iter_mut().enumerate() {
            row.fill(self.inner.value(NetId::from_index(net)));
        }
    }

    fn seed_stable(&mut self, stable: &[bool]) {
        self.inner.seed_values(stable);
        for (row, &value) in self.waveform.iter_mut().zip(stable) {
            row.fill(value);
        }
    }

    fn clone_box(&self) -> Box<dyn UnitDelaySimulator> {
        Box::new(self.clone())
    }

    fn run_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("eventsim.events", self.total_events),
            ("eventsim.toggles", self.total_toggles),
            ("eventsim.gate_evaluations", self.total_gate_evaluations),
        ]
    }

    fn simulate_vector_leveled(&mut self, inputs: &[bool], profile: &mut LevelProfile) {
        // The waveform rewind is per-vector setup: level-0 work.
        let rewind = std::time::Instant::now();
        for row in self.waveform.iter_mut() {
            let last = *row.last().expect("rows are depth + 1 long");
            row.fill(last);
        }
        let rewind_ns = u64::try_from(rewind.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let waveform = &mut self.waveform;
        let stats = self
            .inner
            .simulate_vector_traced_leveled(inputs, profile, |t, net, v| {
                for slot in &mut waveform[net.index()][t as usize..] {
                    *slot = v;
                }
            });
        profile.ensure_level(0);
        profile.levels[0].self_ns += rewind_ns;
        self.total_events += stats.events as u64;
        self.total_toggles += stats.toggles as u64;
        self.total_gate_evaluations += stats.gate_evaluations as u64;
    }
}

/// Every engine the workspace provides, constructible by name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Engine {
    /// Interpreted event-driven unit-delay (two-valued), traced.
    EventDriven,
    /// The PC-set method (§2).
    PcSet,
    /// The parallel technique, unoptimized (§3).
    Parallel,
    /// Parallel with bit-field trimming.
    ParallelTrimming,
    /// Parallel with path-tracing shift elimination.
    ParallelPathTracing,
    /// Parallel with path tracing and trimming.
    ParallelPathTracingTrimming,
    /// Parallel with cycle-breaking shift elimination.
    ParallelCycleBreaking,
    /// The emitted C, actually compiled: `cc` + `dlopen` at runtime,
    /// driving the parallel pt+trim program as machine code. Requires a
    /// C toolchain; build through the guarded chain
    /// ([`crate::guard::build_engine_with_limits`]) so a missing
    /// compiler degrades to an interpreted engine instead of failing.
    Native,
}

impl Engine {
    /// All *interpreted* engines in comparison order. [`Engine::Native`]
    /// is deliberately absent: it needs a host C toolchain, so
    /// toolchain-free comparisons, property suites, and fallback chains
    /// iterate this list and opt into native explicitly.
    pub const ALL: [Engine; 7] = [
        Engine::EventDriven,
        Engine::PcSet,
        Engine::Parallel,
        Engine::ParallelTrimming,
        Engine::ParallelPathTracing,
        Engine::ParallelPathTracingTrimming,
        Engine::ParallelCycleBreaking,
    ];

    /// Parses an engine from its display name (`"pc-set"`, `"native"`,
    /// ...). The inverse of [`Engine`]'s `Display`, covering
    /// [`Engine::ALL`] plus [`Engine::Native`] — the single name table
    /// the CLI and the daemon both use.
    pub fn parse(name: &str) -> Option<Engine> {
        if name == "native" {
            return Some(Engine::Native);
        }
        Engine::ALL.into_iter().find(|e| e.to_string() == name)
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Engine::EventDriven => "event-driven",
            Engine::PcSet => "pc-set",
            Engine::Parallel => "parallel",
            Engine::ParallelTrimming => "parallel+trim",
            Engine::ParallelPathTracing => "parallel+pt",
            Engine::ParallelPathTracingTrimming => "parallel+pt+trim",
            Engine::ParallelCycleBreaking => "parallel+cb",
            Engine::Native => "native",
        })
    }
}

/// Arena word width for the parallel technique. The paper's machine
/// model packs time steps into 32-bit words; 64-bit words halve the
/// word-op count of every multi-word field on deep circuits. Other
/// engines ignore the width.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum WordWidth {
    /// 32-bit arena words (the default, matching the paper).
    #[default]
    W32,
    /// 64-bit arena words.
    W64,
}

impl WordWidth {
    /// Bits per arena word.
    pub fn bits(self) -> u32 {
        match self {
            WordWidth::W32 => 32,
            WordWidth::W64 => 64,
        }
    }

    /// Parses `"32"` / `"64"`.
    pub fn parse(s: &str) -> Option<WordWidth> {
        match s {
            "32" => Some(WordWidth::W32),
            "64" => Some(WordWidth::W64),
            _ => None,
        }
    }
}

impl fmt::Display for WordWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits())
    }
}

/// Error from [`build_simulator`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BuildSimulatorError {
    /// The engine that failed to build.
    pub engine: Engine,
    /// Why.
    pub reason: String,
}

impl fmt::Display for BuildSimulatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot build {} simulator: {}", self.engine, self.reason)
    }
}

impl std::error::Error for BuildSimulatorError {}

/// Builds any engine as a boxed [`UnitDelaySimulator`] with the default
/// 32-bit arena words.
///
/// # Errors
///
/// Returns [`BuildSimulatorError`] for cyclic or sequential netlists.
pub fn build_simulator(
    netlist: &Netlist,
    engine: Engine,
) -> Result<Box<dyn UnitDelaySimulator>, BuildSimulatorError> {
    build_simulator_with_word(netlist, engine, WordWidth::default())
}

/// Builds any engine as a boxed [`UnitDelaySimulator`]. Parallel-family
/// engines pack their bit-fields into words of the requested width;
/// other engines ignore it.
///
/// # Errors
///
/// Returns [`BuildSimulatorError`] for cyclic or sequential netlists.
pub fn build_simulator_with_word(
    netlist: &Netlist,
    engine: Engine,
    word: WordWidth,
) -> Result<Box<dyn UnitDelaySimulator>, BuildSimulatorError> {
    fn parallel<W: Word>(
        netlist: &Netlist,
        optimization: Optimization,
        engine: Engine,
    ) -> Result<Box<dyn UnitDelaySimulator>, BuildSimulatorError> {
        Ok(Box::new(
            ParallelSim::<W>::compile(netlist, optimization).map_err(|e| BuildSimulatorError {
                engine,
                reason: e.to_string(),
            })?,
        ))
    }

    let err = |reason: String| BuildSimulatorError { engine, reason };
    let optimization = match engine {
        Engine::EventDriven => {
            return Ok(Box::new(
                TracedEventSim::new(netlist).map_err(|e| err(e.to_string()))?,
            ))
        }
        Engine::PcSet => {
            return Ok(Box::new(
                PcSetSimulator::compile(netlist).map_err(|e| err(e.to_string()))?,
            ))
        }
        Engine::Parallel => Optimization::None,
        Engine::ParallelTrimming => Optimization::Trimming,
        Engine::ParallelPathTracing => Optimization::PathTracing,
        Engine::ParallelPathTracingTrimming => Optimization::PathTracingTrimming,
        Engine::ParallelCycleBreaking => Optimization::CycleBreaking,
        Engine::Native => {
            return crate::native::build_native(
                netlist,
                Engine::ParallelPathTracingTrimming,
                word,
                &uds_netlist::ResourceLimits::unlimited(),
                &uds_netlist::NoopProbe,
            )
            .map_err(|e| err(e.to_string()))
        }
    };
    match word {
        WordWidth::W32 => parallel::<u32>(netlist, optimization, engine),
        WordWidth::W64 => parallel::<u64>(netlist, optimization, engine),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uds_netlist::generators::iscas::c17;
    use uds_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn every_engine_builds_and_agrees_on_finals() {
        let nl = c17();
        let mut sims: Vec<Box<dyn UnitDelaySimulator>> = Engine::ALL
            .iter()
            .map(|&e| build_simulator(&nl, e).unwrap())
            .collect();
        for pattern in 0u32..32 {
            let inputs: Vec<bool> = (0..5).map(|i| pattern >> i & 1 != 0).collect();
            for sim in &mut sims {
                sim.simulate_vector(&inputs);
            }
            for &po in nl.primary_outputs() {
                let reference = sims[0].final_value(po);
                for sim in &sims[1..] {
                    assert_eq!(
                        sim.final_value(po),
                        reference,
                        "{} diverged on {pattern:05b}",
                        sim.engine_name()
                    );
                }
            }
        }
    }

    #[test]
    fn traced_event_sim_histories_reset_between_vectors() {
        // A buffer chain: history must show the *current* vector's edge,
        // not remnants of older ones.
        let mut b = NetlistBuilder::new();
        let a = b.input("a");
        let x = b.gate(GateKind::Buf, &[a], "x").unwrap();
        let y = b.gate(GateKind::Buf, &[x], "y").unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        let mut sim = TracedEventSim::new(&nl).unwrap();
        sim.simulate_vector(&[true]);
        assert_eq!(sim.history(y).unwrap(), vec![false, false, true]);
        sim.simulate_vector(&[true]);
        assert_eq!(
            sim.history(y).unwrap(),
            vec![true, true, true],
            "stable vector: flat history at the held value"
        );
        sim.simulate_vector(&[false]);
        assert_eq!(sim.history(y).unwrap(), vec![true, true, false]);
    }

    #[test]
    fn engines_report_consistent_depth() {
        let nl = c17();
        for engine in Engine::ALL {
            let sim = build_simulator(&nl, engine).unwrap();
            assert_eq!(sim.depth(), 3, "{engine}");
        }
    }

    #[test]
    fn reset_via_trait() {
        let nl = c17();
        for engine in Engine::ALL {
            let mut sim = build_simulator(&nl, engine).unwrap();
            let po = nl.primary_outputs()[0];
            let before = sim.final_value(po);
            sim.simulate_vector(&[true; 5]);
            sim.reset();
            assert_eq!(sim.final_value(po), before, "{engine}");
        }
    }

    #[test]
    fn cyclic_netlist_fails_to_build() {
        let mut b = NetlistBuilder::new();
        let a = b.input("A");
        let x = b.fresh_net();
        let y = b.fresh_net();
        b.gate_onto(GateKind::And, &[a, y], x).unwrap();
        b.gate_onto(GateKind::Not, &[x], y).unwrap();
        b.output(y);
        let nl = b.finish().unwrap();
        for engine in Engine::ALL {
            let result = build_simulator(&nl, engine);
            assert!(result.is_err(), "{engine}");
        }
    }

    #[test]
    fn engine_display_round_trips_names() {
        for engine in Engine::ALL {
            let sim = build_simulator(&c17(), engine).unwrap();
            assert_eq!(sim.engine_name(), engine.to_string());
        }
    }
}
