//! Live observation hooks for the batch runner.
//!
//! [`run_batch_observed`](crate::batch::run_batch_observed) threads a
//! [`BatchProbe`] through its workers. The probe is opt-in at two
//! granularities, each gated by a cheap capability check so the default
//! ([`NoopBatchProbe`]) costs nothing in the hot loop:
//!
//! * **heartbeats** — periodic per-shard progress records (vectors
//!   done, throughput, fallback state), throttled to
//!   [`BatchProbe::heartbeat_interval`] plus one final record per
//!   shard;
//! * **per-vector observation** — a borrow of the shard's engine after
//!   every vector, which is how the activity profiler folds toggle
//!   counts out of state the engine already holds.
//!
//! [`NdjsonProgress`] is the CLI's heartbeat sink: one JSON object per
//! line (`uds-progress-v1`), flushed per record so `--progress -` can
//! be tailed live.

use std::io::Write;
use std::sync::Mutex;
use std::time::Duration;

use crate::telemetry::json::Json;
use crate::{Engine, UnitDelaySimulator};

/// Schema tag of [`NdjsonProgress`] records.
pub const PROGRESS_SCHEMA: &str = "uds-progress-v1";

/// One progress record from one shard.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Heartbeat {
    /// The reporting shard.
    pub shard: usize,
    /// Vectors the shard has finished.
    pub done: usize,
    /// Vectors the shard owns in total.
    pub total: usize,
    /// Wall-clock time since the shard started.
    pub wall_ns: u64,
    /// The engine currently running the shard (may change as the
    /// fallback chain degrades).
    pub engine: Engine,
    /// Fallbacks fired inside the shard so far.
    pub fallbacks: usize,
    /// `true` on the shard's final record.
    pub finished: bool,
}

impl Heartbeat {
    /// Throughput so far, in vectors per second (0 before any time has
    /// passed).
    pub fn vectors_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.done as f64 * 1e9 / self.wall_ns as f64
        }
    }
}

/// What a batch observer wants to see. All methods default to "nothing"
/// so implementors opt into exactly the hooks they need.
///
/// Probes are shared by every worker thread concurrently, hence
/// `Sync`; implementations own their interior synchronization (see
/// [`BatchActivityObserver`](crate::activity::BatchActivityObserver)
/// for the per-shard-lock pattern that avoids contention).
pub trait BatchProbe: Sync {
    /// Opt into [`BatchProbe::heartbeat`] calls.
    fn wants_heartbeats(&self) -> bool {
        false
    }

    /// Minimum spacing between a shard's heartbeats (the final record
    /// always fires).
    fn heartbeat_interval(&self) -> Duration {
        Duration::from_millis(100)
    }

    /// A shard progress record. Called from worker threads.
    fn heartbeat(&self, beat: &Heartbeat) {
        let _ = beat;
    }

    /// Opt into [`BatchProbe::vector_done`] calls.
    fn wants_vectors(&self) -> bool {
        false
    }

    /// The shard's engine, right after it simulated a vector. Called
    /// from worker threads; the borrow ends before the next vector
    /// starts.
    fn vector_done(&self, shard: usize, sim: &dyn UnitDelaySimulator) {
        let _ = (shard, sim);
    }
}

/// The probe that observes nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopBatchProbe;

impl BatchProbe for NoopBatchProbe {}

/// Streams heartbeats as newline-delimited JSON (`uds-progress-v1`),
/// one object per line, flushed per record.
pub struct NdjsonProgress {
    out: Mutex<Box<dyn Write + Send>>,
    interval: Duration,
}

impl NdjsonProgress {
    /// Streams to `out` at the default ~100 ms cadence.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        Self::with_interval(out, Duration::from_millis(100))
    }

    /// Streams to `out`, spacing each shard's records at least
    /// `interval` apart.
    pub fn with_interval(out: Box<dyn Write + Send>, interval: Duration) -> Self {
        NdjsonProgress {
            out: Mutex::new(out),
            interval,
        }
    }

    /// Renders one heartbeat as its NDJSON line (no trailing newline).
    pub fn render(beat: &Heartbeat) -> String {
        Json::obj([
            ("schema", Json::Str(PROGRESS_SCHEMA.to_owned())),
            ("shard", Json::UInt(beat.shard as u64)),
            ("done", Json::UInt(beat.done as u64)),
            ("total", Json::UInt(beat.total as u64)),
            ("wall_ns", Json::UInt(beat.wall_ns)),
            ("vectors_per_sec", Json::Float(beat.vectors_per_sec())),
            ("engine", Json::Str(beat.engine.to_string())),
            ("fallbacks", Json::UInt(beat.fallbacks as u64)),
            ("finished", Json::Bool(beat.finished)),
        ])
        .render()
    }
}

impl BatchProbe for NdjsonProgress {
    fn wants_heartbeats(&self) -> bool {
        true
    }

    fn heartbeat_interval(&self) -> Duration {
        self.interval
    }

    fn heartbeat(&self, beat: &Heartbeat) {
        let line = Self::render(beat);
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        // A dead sink (closed pipe) must not kill the batch; progress
        // is best-effort by design.
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

/// Fans one batch run out to several probes (e.g. an activity observer
/// *and* a progress stream). Capability checks take the union; the
/// heartbeat cadence is the fastest requested.
pub struct FanoutProbe<'a> {
    probes: Vec<&'a dyn BatchProbe>,
}

impl<'a> FanoutProbe<'a> {
    /// Combines the given probes.
    pub fn new(probes: Vec<&'a dyn BatchProbe>) -> Self {
        FanoutProbe { probes }
    }
}

impl BatchProbe for FanoutProbe<'_> {
    fn wants_heartbeats(&self) -> bool {
        self.probes.iter().any(|p| p.wants_heartbeats())
    }

    fn heartbeat_interval(&self) -> Duration {
        self.probes
            .iter()
            .filter(|p| p.wants_heartbeats())
            .map(|p| p.heartbeat_interval())
            .min()
            .unwrap_or(Duration::from_millis(100))
    }

    fn heartbeat(&self, beat: &Heartbeat) {
        for probe in &self.probes {
            if probe.wants_heartbeats() {
                probe.heartbeat(beat);
            }
        }
    }

    fn wants_vectors(&self) -> bool {
        self.probes.iter().any(|p| p.wants_vectors())
    }

    fn vector_done(&self, shard: usize, sim: &dyn UnitDelaySimulator) {
        for probe in &self.probes {
            if probe.wants_vectors() {
                probe.vector_done(shard, sim);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_lines_are_parseable_and_schema_tagged() {
        let beat = Heartbeat {
            shard: 2,
            done: 50,
            total: 100,
            wall_ns: 1_000_000_000,
            engine: Engine::EventDriven,
            fallbacks: 1,
            finished: false,
        };
        let line = NdjsonProgress::render(&beat);
        let json = Json::parse(&line).expect("NDJSON lines are valid JSON");
        let obj = json.as_obj().unwrap();
        let field = |k: &str| obj.iter().find(|(key, _)| key == k).unwrap().1.clone();
        assert_eq!(field("schema").as_str(), Some(PROGRESS_SCHEMA));
        assert_eq!(field("shard").as_u64(), Some(2));
        assert_eq!(field("done").as_u64(), Some(50));
        assert_eq!(field("vectors_per_sec").as_f64(), Some(50.0));
        assert!(!line.contains('\n'), "one record per line");
    }

    #[test]
    fn throughput_handles_zero_time() {
        let beat = Heartbeat {
            shard: 0,
            done: 0,
            total: 10,
            wall_ns: 0,
            engine: Engine::Parallel,
            fallbacks: 0,
            finished: false,
        };
        assert_eq!(beat.vectors_per_sec(), 0.0);
    }

    #[test]
    fn sink_collects_flushed_lines() {
        use std::sync::Arc;

        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let sink = Shared::default();
        let progress = NdjsonProgress::new(Box::new(sink.clone()));
        assert!(progress.wants_heartbeats());
        assert!(!progress.wants_vectors());
        for shard in 0..3 {
            progress.heartbeat(&Heartbeat {
                shard,
                done: shard + 1,
                total: 4,
                wall_ns: 1000,
                engine: Engine::PcSet,
                fallbacks: 0,
                finished: shard == 2,
            });
        }
        let bytes = sink.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            Json::parse(line).expect("every line parses standalone");
        }
    }
}
