//! A small load generator for the simulation daemon (`udsim loadgen`).
//!
//! Robustness claims about the serve path — "sheds deterministically
//! under overload", "never melts down at concurrency above the worker
//! pool" — are only claims until something actually applies the load.
//! This module is that something: a hand-rolled, dependency-free HTTP
//! client fleet that hammers one endpoint and reports per-status
//! counts plus latency percentiles as a schema-stable JSON document
//! (`uds-loadgen-v1`), machine-checkable in CI.
//!
//! Two pacing modes:
//!
//! * **closed loop** (`rate_per_s == 0`): each of the `concurrency`
//!   workers fires its next request the moment the previous answer
//!   lands. Offered load adapts to the server — the classic saturation
//!   probe.
//! * **open loop** (`rate_per_s > 0`): arrivals are scheduled on a
//!   fixed global cadence that does *not* slow down when the server
//!   does, which is what exposes queueing collapse. Arrivals are still
//!   executed by the worker fleet, so a stalled server caps in-flight
//!   requests at `concurrency` (a fully unbounded open loop would need
//!   unbounded sockets).
//!
//! Every request rides its own connection and asks `Connection:
//! close` — deliberately the worst case for the daemon's accept path,
//! and immune to keep-alive accounting skew.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::telemetry::json::Json;

/// Schema tag on the loadgen JSON report.
pub const LOADGEN_SCHEMA: &str = "uds-loadgen-v1";

/// One load-generation campaign.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Target `host:port`.
    pub addr: String,
    /// Request path, e.g. `/simulate`.
    pub path: String,
    /// `GET`, `POST`, …
    pub method: String,
    /// Request body (`POST` only; empty for `GET`).
    pub body: String,
    /// Worker fleet size (max in-flight requests).
    pub concurrency: usize,
    /// Open-loop arrival rate in requests per second; 0 = closed loop.
    pub rate_per_s: u32,
    /// Campaign length, measured from the first arrival.
    pub duration: Duration,
    /// Per-request socket timeout (connect, read, write).
    pub timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:1990".to_owned(),
            path: "/healthz".to_owned(),
            method: "GET".to_owned(),
            body: String::new(),
            concurrency: 4,
            rate_per_s: 0,
            duration: Duration::from_secs(2),
            timeout: Duration::from_secs(30),
        }
    }
}

/// What one finished campaign measured.
#[derive(Debug)]
pub struct LoadgenReport {
    /// `"closed"` or `"open"`.
    pub mode: &'static str,
    /// Requests that produced a parseable HTTP status.
    pub requests: u64,
    /// Requests that died in transport (connect/read/write failure).
    pub errors: u64,
    /// Completed requests per HTTP status code.
    pub status_counts: BTreeMap<u16, u64>,
    /// End-to-end latency percentiles in nanoseconds, keyed by
    /// `"p50"`, `"p90"`, `"p99"`, plus `"min"`/`"max"`/`"mean"`.
    pub latency_ns: BTreeMap<&'static str, u64>,
    /// Wall clock of the whole campaign.
    pub elapsed: Duration,
    /// The server's own post-campaign view, scraped from `/metrics`
    /// after the fleet drained (`None` if the scrape failed — the
    /// client-side numbers stand on their own).
    pub server: Option<ServerSample>,
}

/// A point-in-time scrape of the target daemon's `/metrics`, pairing
/// the client-side latency picture with the server's perf class and
/// live rolling throughput — one document answers both "how fast did
/// requests complete" and "how fast did the server think it was".
#[derive(Debug, Default, PartialEq)]
pub struct ServerSample {
    /// The `uds_perf_class` gauge (calibrated machine-class ordinal).
    pub perf_class: Option<u64>,
    /// The `perf_class` label of `uds_build_info` (`"fast"`, …).
    pub perf_class_name: Option<String>,
    /// Every live `uds_engine_vectors_per_s{engine,word}` sample — the
    /// rolling-window rate fed by real traffic, absent until the
    /// server has simulated something.
    pub engine_vectors_per_s: Vec<EngineThroughput>,
}

/// One `uds_engine_vectors_per_s` sample.
#[derive(Debug, PartialEq)]
pub struct EngineThroughput {
    /// The `engine` label.
    pub engine: String,
    /// The `word` label (32 or 64).
    pub word_bits: u64,
    /// The windowed vectors-per-second rate.
    pub vectors_per_s: f64,
}

impl ServerSample {
    /// The `server` member of the `uds-loadgen-v1` document.
    pub fn to_json(&self) -> Json {
        let mut members = Vec::new();
        if let Some(class) = self.perf_class {
            members.push(("perf_class".to_owned(), Json::UInt(class)));
        }
        if let Some(name) = &self.perf_class_name {
            members.push(("perf_class_name".to_owned(), Json::Str(name.clone())));
        }
        members.push((
            "engine_vectors_per_s".to_owned(),
            Json::Arr(
                self.engine_vectors_per_s
                    .iter()
                    .map(|sample| {
                        Json::obj([
                            ("engine", Json::Str(sample.engine.clone())),
                            ("word_bits", Json::UInt(sample.word_bits)),
                            ("vectors_per_s", Json::Float(sample.vectors_per_s)),
                        ])
                    })
                    .collect(),
            ),
        ));
        Json::Obj(members)
    }
}

/// The value of `key="…"` inside a Prometheus label block.
fn label_value(labels: &str, key: &str) -> Option<String> {
    let marker = format!("{key}=\"");
    let start = labels.find(&marker)? + marker.len();
    let rest = &labels[start..];
    Some(rest[..rest.find('"')?].to_owned())
}

/// Extracts the fields [`ServerSample`] cares about from a Prometheus
/// text exposition. Unknown lines are skipped — the scrape must work
/// against both older and newer daemons.
pub fn parse_metrics_sample(metrics: &str) -> ServerSample {
    let mut sample = ServerSample::default();
    for line in metrics.lines() {
        if let Some(value) = line.strip_prefix("uds_perf_class ") {
            sample.perf_class = value.trim().parse::<f64>().ok().map(|v| v as u64);
        } else if let Some(rest) = line.strip_prefix("uds_build_info{") {
            if let Some(name) = label_value(rest, "perf_class") {
                sample.perf_class_name = Some(name);
            }
        } else if let Some(rest) = line.strip_prefix("uds_engine_vectors_per_s{") {
            let Some((labels, value)) = rest.split_once('}') else {
                continue;
            };
            let (Some(engine), Some(word), Ok(rate)) = (
                label_value(labels, "engine"),
                label_value(labels, "word"),
                value.trim().parse::<f64>(),
            ) else {
                continue;
            };
            sample.engine_vectors_per_s.push(EngineThroughput {
                engine,
                word_bits: word.parse().unwrap_or(0),
                vectors_per_s: rate,
            });
        }
    }
    sample
}

/// One `GET` on a fresh connection, returning the response body.
fn http_get_body(addr: &str, path: &str, timeout: Duration) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply)?;
    let text = String::from_utf8_lossy(&reply);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_owned())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "unframed HTTP response")
        })?;
    Ok(body)
}

impl LoadgenReport {
    /// Completed requests per second over the campaign.
    pub fn throughput_per_s(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.requests as f64 / secs
        } else {
            0.0
        }
    }

    /// Total responses in the given status class (e.g. `5` for 5xx).
    pub fn class_count(&self, class: u16) -> u64 {
        self.status_counts
            .iter()
            .filter(|(status, _)| *status / 100 == class)
            .map(|(_, n)| n)
            .sum()
    }

    /// The `uds-loadgen-v1` document.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj([
            ("schema", Json::Str(LOADGEN_SCHEMA.to_owned())),
            ("mode", Json::Str(self.mode.to_owned())),
            ("requests", Json::UInt(self.requests)),
            ("errors", Json::UInt(self.errors)),
            ("elapsed_ns", {
                Json::UInt(u64::try_from(self.elapsed.as_nanos()).unwrap_or(u64::MAX))
            }),
            ("throughput_per_s", Json::Float(self.throughput_per_s())),
            (
                "status_counts",
                Json::Obj(
                    self.status_counts
                        .iter()
                        .map(|(status, n)| (status.to_string(), Json::UInt(*n)))
                        .collect(),
                ),
            ),
            (
                "latency_ns",
                Json::Obj(
                    self.latency_ns
                        .iter()
                        .map(|(key, value)| ((*key).to_owned(), Json::UInt(*value)))
                        .collect(),
                ),
            ),
        ]);
        if let (Json::Obj(members), Some(server)) = (&mut doc, &self.server) {
            members.push(("server".to_owned(), server.to_json()));
        }
        doc
    }
}

/// Per-worker tally, merged after the fleet joins.
#[derive(Default)]
struct WorkerTally {
    statuses: BTreeMap<u16, u64>,
    latencies_ns: Vec<u64>,
    errors: u64,
}

/// Issues one request on a fresh connection; returns the status code.
fn one_request(config: &LoadgenConfig) -> std::io::Result<u16> {
    let stream = TcpStream::connect(&config.addr)?;
    stream.set_read_timeout(Some(config.timeout))?;
    stream.set_write_timeout(Some(config.timeout))?;
    let mut stream = stream;
    let head = if config.body.is_empty() {
        format!(
            "{} {} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n",
            config.method, config.path
        )
    } else {
        format!(
            "{} {} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\
             Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
            config.method,
            config.path,
            config.body.len(),
            config.body
        )
    };
    stream.write_all(head.as_bytes())?;
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply)?;
    let status = reply
        .split(|&b| b == b' ')
        .nth(1)
        .and_then(|token| std::str::from_utf8(token).ok())
        .and_then(|token| token.parse::<u16>().ok());
    status.ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "unparseable status line")
    })
}

/// Percentile by nearest-rank over a sorted sample set.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Runs the campaign and blocks until the fleet drains.
pub fn run_loadgen(config: &LoadgenConfig) -> LoadgenReport {
    let start = Instant::now();
    let deadline = start + config.duration;
    // Open-loop arrivals draw monotone ticket numbers; ticket `n`
    // fires at `start + n / rate`. Closed loop ignores tickets.
    let tickets = AtomicU64::new(0);
    let tallies: Mutex<Vec<WorkerTally>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..config.concurrency.max(1) {
            scope.spawn(|| {
                let mut tally = WorkerTally::default();
                loop {
                    if config.rate_per_s > 0 {
                        let ticket = tickets.fetch_add(1, Ordering::Relaxed);
                        let due = start
                            + Duration::from_secs_f64(ticket as f64 / f64::from(config.rate_per_s));
                        if due >= deadline {
                            break;
                        }
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                    } else if Instant::now() >= deadline {
                        break;
                    }
                    let clock = Instant::now();
                    match one_request(config) {
                        Ok(status) => {
                            let wall =
                                u64::try_from(clock.elapsed().as_nanos()).unwrap_or(u64::MAX);
                            tally.latencies_ns.push(wall);
                            *tally.statuses.entry(status).or_insert(0) += 1;
                        }
                        Err(_) => tally.errors += 1,
                    }
                }
                tallies
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(tally);
            });
        }
    });

    let elapsed = start.elapsed();
    let merged = tallies.into_inner().unwrap_or_else(|e| e.into_inner());
    let mut status_counts: BTreeMap<u16, u64> = BTreeMap::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    for tally in merged {
        for (status, n) in tally.statuses {
            *status_counts.entry(status).or_insert(0) += n;
        }
        latencies.extend(tally.latencies_ns);
        errors += tally.errors;
    }
    latencies.sort_unstable();
    let requests = latencies.len() as u64;
    let mean = latencies
        .iter()
        .sum::<u64>()
        .checked_div(requests)
        .unwrap_or(0);
    let latency_ns = BTreeMap::from([
        ("min", latencies.first().copied().unwrap_or(0)),
        ("p50", percentile(&latencies, 0.50)),
        ("p90", percentile(&latencies, 0.90)),
        ("p99", percentile(&latencies, 0.99)),
        ("max", latencies.last().copied().unwrap_or(0)),
        ("mean", mean),
    ]);
    // The fleet is drained; one last scrape captures the server's own
    // rolling view of the traffic it just absorbed. Best-effort — a
    // dead or pre-metrics server degrades to `server: None`.
    let server = http_get_body(&config.addr, "/metrics", config.timeout)
        .ok()
        .map(|metrics| parse_metrics_sample(&metrics));
    LoadgenReport {
        mode: if config.rate_per_s > 0 {
            "open"
        } else {
            "closed"
        },
        requests,
        errors,
        status_counts,
        latency_ns,
        elapsed,
        server,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{ServeConfig, SimServer};
    use crate::telemetry::Telemetry;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&sorted, 0.5), 51); // rank round(99*.5)=50
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn closed_loop_campaign_counts_every_response() {
        let server = SimServer::bind(
            "127.0.0.1:0",
            ServeConfig::default(),
            Telemetry::new(),
            None,
        )
        .expect("bind");
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.shutdown_handle();
        std::thread::scope(|scope| {
            let runner = scope.spawn(|| server.run().expect("serve"));
            let report = run_loadgen(&LoadgenConfig {
                addr,
                concurrency: 2,
                duration: Duration::from_millis(200),
                ..LoadgenConfig::default()
            });
            handle.request();
            runner.join().expect("server thread");

            assert_eq!(report.mode, "closed");
            assert!(report.requests > 0, "{report:?}");
            assert_eq!(report.errors, 0, "{report:?}");
            assert_eq!(report.class_count(2), report.requests, "{report:?}");
            assert!(report.latency_ns["max"] >= report.latency_ns["p50"]);
            let doc = report.to_json();
            assert_eq!(doc.get("schema").unwrap().as_str(), Some(LOADGEN_SCHEMA));
            assert!(doc.get("status_counts").unwrap().get("200").is_some());
            // The end-of-run scrape reached the live server.
            assert!(report.server.is_some(), "{report:?}");
            assert!(doc.get("server").is_some());
        });
    }

    #[test]
    fn metrics_scrape_extracts_perf_class_and_rolling_throughput() {
        let metrics = "# TYPE uds_perf_class gauge\n\
                       uds_perf_class 2\n\
                       uds_perf_class_warmup_vectors_per_s 123456\n\
                       uds_build_info{version=\"0.1.0\",perf_class=\"fast\"} 1\n\
                       # TYPE uds_engine_vectors_per_s gauge\n\
                       uds_engine_vectors_per_s{engine=\"native\",word=\"64\"} 1250000.5\n\
                       uds_engine_vectors_per_s{engine=\"parallel\",word=\"32\"} 300.25\n\
                       uds_engine_vectors_per_s_ewma{engine=\"native\",word=\"64\"} 99\n";
        let sample = parse_metrics_sample(metrics);
        assert_eq!(sample.perf_class, Some(2));
        assert_eq!(sample.perf_class_name.as_deref(), Some("fast"));
        assert_eq!(sample.engine_vectors_per_s.len(), 2, "{sample:?}");
        assert_eq!(sample.engine_vectors_per_s[0].engine, "native");
        assert_eq!(sample.engine_vectors_per_s[0].word_bits, 64);
        assert!((sample.engine_vectors_per_s[0].vectors_per_s - 1_250_000.5).abs() < 1e-9);
        let json = sample.to_json().render();
        assert!(json.contains("\"perf_class_name\":\"fast\""), "{json}");
        assert!(json.contains("\"engine\":\"native\""), "{json}");
    }

    #[test]
    fn open_loop_paces_arrivals() {
        let server = SimServer::bind(
            "127.0.0.1:0",
            ServeConfig::default(),
            Telemetry::new(),
            None,
        )
        .expect("bind");
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.shutdown_handle();
        std::thread::scope(|scope| {
            let runner = scope.spawn(|| server.run().expect("serve"));
            let report = run_loadgen(&LoadgenConfig {
                addr,
                concurrency: 2,
                rate_per_s: 50,
                duration: Duration::from_millis(300),
                ..LoadgenConfig::default()
            });
            handle.request();
            runner.join().expect("server thread");

            assert_eq!(report.mode, "open");
            // 50/s over 300ms schedules ~15 arrivals; the pacer must
            // not blast them all instantly nor drop below the floor a
            // healthy local server trivially sustains.
            assert!(report.requests >= 5, "{report:?}");
            assert!(report.requests <= 20, "{report:?}");
        });
    }
}
