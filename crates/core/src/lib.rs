//! Common abstractions over the unit-delay simulators.
//!
//! The technique crates ([`uds_pcset`], [`uds_parallel`], the
//! [`uds_eventsim`] baselines) each expose their own compile/run API;
//! this crate ties them together for users who want to mix, compare or
//! validate them:
//!
//! * [`UnitDelaySimulator`] — one trait over every engine, plus
//!   [`build_simulator`] to construct any [`Engine`] by name;
//! * [`vectors`] — deterministic stimulus generators (random streams,
//!   walking ones, exhaustive);
//! * [`waveform`] — dense per-net time histories with edge/transition
//!   queries;
//! * [`hazard`] — static/dynamic hazard detection over unit-delay
//!   histories (the analysis §3 of the paper sketches for the parallel
//!   technique's bit-fields);
//! * [`crosscheck`] — the workspace's strongest invariant as a library
//!   function: run N engines in lockstep and demand identical waveforms;
//! * [`error`], [`guard`], [`chaos`] — the guarded execution layer: a
//!   unified failure taxonomy ([`SimError`]), budget-enforced and
//!   panic-contained engine construction with graceful degradation
//!   ([`GuardedSimulator`]), and deterministic fault injection for
//!   proving no failure is ever silent;
//! * [`telemetry`] — the observability layer: hierarchical spans,
//!   counters/gauges holding the paper's static compile metrics, and a
//!   schema-stable JSON report (`--stats` in the CLI), with a Chrome
//!   `trace_event` timeline exporter ([`telemetry::trace`]);
//! * [`activity`], [`progress`], [`stream`] — runtime observability:
//!   word-parallel toggle profiling (`udsim profile`), live batch
//!   heartbeats (`--progress`), and the shared stdout contract every
//!   `-` stream flag obeys;
//! * [`http`], [`cache`], [`serve`], [`loadgen`] — the service layer:
//!   a dependency-free HTTP/1.1 core with keep-alive, an observable
//!   LRU of compiled engine prototypes, the `udsim serve` daemon (a
//!   bounded worker pool with admission control, per-request
//!   deadlines via [`cancel`], and an async job API) exposing
//!   simulation over `POST /simulate` with Prometheus `/metrics`
//!   (rendered by [`telemetry::prom`]), health probes, and structured
//!   request logs — plus the `udsim loadgen` client fleet that proves
//!   the overload behavior;
//! * [`perf`] — machine calibration: the ALU/memory microbenchmark
//!   fingerprint stamped into `BENCH_*.json` baselines (normalizing
//!   `tables compare` across hosts) and the `uds_perf_class` gauge
//!   family the daemon self-reports at startup.
//!
//! # Example
//!
//! ```
//! use uds_core::{build_simulator, Engine, UnitDelaySimulator};
//! use uds_core::vectors::RandomVectors;
//! use uds_netlist::generators::iscas::c17;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nl = c17();
//! let mut sim = build_simulator(&nl, Engine::ParallelPathTracingTrimming)?;
//! for vector in RandomVectors::new(nl.primary_inputs().len(), 42).take(100) {
//!     sim.simulate_vector(&vector);
//! }
//! let out = nl.primary_outputs()[0];
//! println!("{}", sim.final_value(out));
//! # Ok(())
//! # }
//! ```

pub mod activity;
pub mod batch;
pub mod cache;
pub mod cancel;
pub mod chaos;
pub mod crosscheck;
pub mod error;
pub mod guard;
pub mod hazard;
pub mod hotspot;
pub mod http;
pub mod loadgen;
pub mod native;
pub mod perf;
pub mod progress;
pub mod sequential;
pub mod serve;
mod simulator;
pub mod stream;
pub mod telemetry;
pub mod vcd;
pub mod vectors;
pub mod waveform;

pub use activity::{ActivityProfiler, ActivityReport, BatchActivityObserver, ACTIVITY_SCHEMA};
pub use batch::{
    run_batch, run_batch_cancellable, run_batch_observed, shard_bounds, BatchOutput, ShardReport,
};
pub use cache::{netlist_hash, CacheKey, EngineCache};
pub use cancel::{CancelCause, CancelToken};
pub use error::{FailureClass, SimError, SimErrorKind, SimPhase};
pub use guard::{
    build_engine_with_limits, build_engine_with_limits_probed,
    build_engine_with_limits_probed_word, build_engine_with_limits_word, chain_preferring,
    DefaultEngineFactory, GuardedSimulator, MonitoringEngineFactory,
};
pub use hotspot::{HotspotReport, HotspotRing, HotspotSample, HotspotWindow, HOTSPOT_SCHEMA};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport, LOADGEN_SCHEMA};
pub use native::{build_native, build_native_monitoring, compiler_available};
pub use perf::{calibrate, measure_perf, record_perf_class, Calibration, PerfClass, PerfReport};
pub use progress::{
    BatchProbe, FanoutProbe, Heartbeat, NdjsonProgress, NoopBatchProbe, PROGRESS_SCHEMA,
};
pub use serve::{
    install_signal_handlers, ServeConfig, ShutdownHandle, SimServer, JOB_SCHEMA, REQLOG_SCHEMA,
    SERVE_SCHEMA,
};
pub use simulator::{
    build_simulator, build_simulator_with_word, BuildSimulatorError, Engine, TracedEventSim,
    UnitDelaySimulator, WordWidth,
};
pub use stream::{open_sink, write_text, HumanOut, StreamContract};
pub use telemetry::trace::{chrome_trace, render_chrome_trace};
pub use telemetry::{
    record_build_info, Histogram, SpanNode, Telemetry, TelemetryReport, BUILD_INFO_GAUGE,
};
